//! The boolean control abstraction of a kernel process.
//!
//! A *control state* is a valuation of the boolean delay registers of the
//! process (non-boolean registers carry data that does not influence
//! presence and are abstracted away).  In a given state, the set of possible
//! reactions is the set of assignments of presence (and boolean control
//! values) satisfying the relation `R` of the clock calculus, strengthened
//! with the facts "a present delayed signal carries its register value".
//! Each satisfying assignment yields a [`ReactionLabel`] — the set of
//! present signals with the values of the boolean ones — and a successor
//! state obtained by updating the registers whose source signal is present.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use clocks::bdd::Var;
use clocks::{ClockAlgebra, TimingRelations};
use signal_lang::{KernelProcess, Name, Value};

/// The label of an abstract reaction: which signals are present, and the
/// value carried by the boolean ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReactionLabel {
    present: BTreeSet<Name>,
    values: BTreeMap<Name, bool>,
}

impl ReactionLabel {
    /// Creates a label from its present signals and boolean values.
    pub fn new(present: BTreeSet<Name>, values: BTreeMap<Name, bool>) -> Self {
        ReactionLabel { present, values }
    }

    /// The signals present in the reaction.
    pub fn present(&self) -> &BTreeSet<Name> {
        &self.present
    }

    /// Returns `true` when `signal` is present.
    pub fn is_present(&self, signal: &str) -> bool {
        self.present.contains(signal)
    }

    /// The boolean value carried by `signal`, when present and boolean.
    pub fn value(&self, signal: &str) -> Option<bool> {
        self.values.get(signal).copied()
    }

    /// Returns `true` when no signal is present (the silent reaction).
    pub fn is_silent(&self) -> bool {
        self.present.is_empty()
    }

    /// Returns `true` when the two labels have disjoint present sets — the
    /// independence side condition of Definition 2.
    pub fn independent(&self, other: &ReactionLabel) -> bool {
        self.present.is_disjoint(&other.present)
    }

    /// The union `r ⊔ s` of two independent labels.
    ///
    /// Returns `None` when the labels are not independent.
    pub fn union(&self, other: &ReactionLabel) -> Option<ReactionLabel> {
        if !self.independent(other) {
            return None;
        }
        let mut out = self.clone();
        out.present.extend(other.present.iter().cloned());
        out.values
            .extend(other.values.iter().map(|(k, v)| (k.clone(), *v)));
        Some(out)
    }

    /// The restriction of the label to a set of signals.
    pub fn restrict(&self, signals: &BTreeSet<Name>) -> ReactionLabel {
        ReactionLabel {
            present: self.present.intersection(signals).cloned().collect(),
            values: self
                .values
                .iter()
                .filter(|(k, _)| signals.contains(*k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Enumerates every decomposition of this label into two independent,
    /// non-empty sub-labels `(r, s)` with `r ⊔ s = self`.
    pub fn decompositions(&self) -> Vec<(ReactionLabel, ReactionLabel)> {
        let names: Vec<Name> = self.present.iter().cloned().collect();
        let n = names.len();
        let mut out = Vec::new();
        if !(2..=12).contains(&n) {
            return out;
        }
        for mask in 1..((1u32 << n) - 1) {
            let mut left = BTreeSet::new();
            let mut right = BTreeSet::new();
            for (i, name) in names.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    left.insert(name.clone());
                } else {
                    right.insert(name.clone());
                }
            }
            out.push((self.restrict(&left), self.restrict(&right)));
        }
        out
    }
}

impl fmt::Display for ReactionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.present.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        let mut first = true;
        for n in &self.present {
            if !first {
                write!(f, ", ")?;
            }
            match self.values.get(n) {
                Some(v) => write!(f, "{n}={v}")?,
                None => write!(f, "{n}")?,
            }
            first = false;
        }
        write!(f, "}}")
    }
}

/// A control state: the valuation of the boolean delay registers.
pub type ControlState = BTreeMap<Name, bool>;

/// The presence abstraction of a kernel process.
pub struct PresenceAbstraction {
    algebra: ClockAlgebra,
    /// The relation restricted to the control variables (data values are
    /// existentially quantified away).
    control_relation: clocks::bdd::NodeRef,
    /// Boolean registers: `(register output signal, source signal, initial value)`.
    registers: Vec<(Name, Name, bool)>,
    /// The support of the satisfying-assignment enumeration.
    support: Vec<Var>,
    /// Signals whose presence variable is in the support, in support order.
    presence_signals: Vec<Name>,
    /// Boolean control signals whose value variable is in the support.
    value_signals: Vec<Name>,
    /// The signals whose presence is reported in reaction labels.
    alphabet: BTreeSet<Name>,
}

impl PresenceAbstraction {
    /// Builds the abstraction of a process.  Labels report the presence of
    /// the process interface (inputs and outputs).
    pub fn new(process: &KernelProcess) -> Self {
        Self::with_alphabet(process, process.interface())
    }

    /// Builds the abstraction, reporting only the signals of `alphabet` in
    /// reaction labels.
    pub fn with_alphabet(process: &KernelProcess, alphabet: BTreeSet<Name>) -> Self {
        let relations: TimingRelations = clocks::inference::infer(process);
        let mut algebra = ClockAlgebra::new(process, &relations);
        let booleans = process.boolean_signals();
        let registers: Vec<(Name, Name, bool)> = process
            .registers()
            .into_iter()
            .filter_map(|(out, arg, init)| match init {
                Value::Bool(b) if booleans.contains(&out) => Some((out, arg, b)),
                _ => None,
            })
            .collect();

        // Control signals: their boolean value influences presence (they are
        // sampled somewhere) or the next control state (they feed or are a
        // register).  The values of the remaining (data) booleans are
        // irrelevant to the abstraction and are quantified away, which keeps
        // the enumeration of reactions tractable.
        let mut control: BTreeSet<Name> = BTreeSet::new();
        for (out, arg, _) in &registers {
            control.insert(out.clone());
            control.insert(arg.clone());
        }
        let mut atoms = Vec::new();
        for (l, r) in relations
            .equalities
            .iter()
            .chain(relations.inclusions.iter())
        {
            l.atoms(&mut atoms);
            r.atoms(&mut atoms);
        }
        for edge in &relations.scheduling {
            edge.guard.atoms(&mut atoms);
        }
        for atom in atoms {
            if atom.is_sampling() {
                control.insert(atom.signal().clone());
            }
        }
        // Close the control set under instantaneous boolean data flow: the
        // value of any boolean signal that can reach a control signal within
        // the instant also determines the next control state (e.g. the input
        // read by the buffer flows into its memory register), so it must be
        // tracked too.
        let mut changed = true;
        while changed {
            changed = false;
            for eq in process.equations() {
                if control.contains(eq.defined()) && !eq.is_delay() {
                    for read in eq.reads() {
                        if booleans.contains(&read) && control.insert(read) {
                            changed = true;
                        }
                    }
                }
            }
        }
        let control: BTreeSet<Name> = control
            .into_iter()
            .filter(|n| booleans.contains(n))
            .collect();

        let presence_signals: Vec<Name> = process.signal_set().into_iter().collect();
        let value_signals: Vec<Name> = control.iter().cloned().collect();
        let data_values: Vec<Var> = booleans
            .iter()
            .filter(|n| !control.contains(*n))
            .map(|n| algebra.value_var(n.as_str()))
            .collect();
        let control_relation = {
            let relation = algebra.relation();
            let mut reduced = algebra.bdd_mut().exists_all(relation, &data_values);
            // Normalize the value of absent control signals to false: the
            // value of an absent signal is never observed, and leaving it
            // unconstrained would multiply the enumerated assignments by two
            // per absent signal.
            for n in &control {
                let p = algebra.presence_var(n.as_str());
                let v = algebra.value_var(n.as_str());
                let bdd = algebra.bdd_mut();
                let pv = bdd.var(p);
                let nv = bdd.nvar(v);
                let norm = bdd.or(pv, nv);
                reduced = bdd.and(reduced, norm);
            }
            reduced
        };

        let mut support: Vec<Var> = Vec::new();
        for n in &presence_signals {
            support.push(algebra.presence_var(n.as_str()));
        }
        for n in &value_signals {
            support.push(algebra.value_var(n.as_str()));
        }
        support.sort();
        PresenceAbstraction {
            algebra,
            control_relation,
            registers,
            support,
            presence_signals,
            value_signals,
            alphabet,
        }
    }

    /// The initial control state (registers at their declared initial
    /// values).
    pub fn initial_state(&self) -> ControlState {
        self.registers
            .iter()
            .map(|(out, _, init)| (out.clone(), *init))
            .collect()
    }

    /// The signals reported in reaction labels.
    pub fn alphabet(&self) -> &BTreeSet<Name> {
        &self.alphabet
    }

    /// Enumerates the reactions possible in `state`, together with the
    /// successor state of each.
    ///
    /// The silent reaction (nothing present, state unchanged) is always
    /// possible and always included.
    pub fn reactions(&mut self, state: &ControlState) -> Vec<(ReactionLabel, ControlState)> {
        // Constrain the relation with the current register values: a present
        // register output carries its stored value.
        let mut constrained = self.control_relation;
        for (out, _, _) in &self.registers {
            let value = state.get(out).copied().unwrap_or(false);
            let p = self.algebra.presence_var(out.as_str());
            let v = self.algebra.value_var(out.as_str());
            let bdd = self.algebra.bdd_mut();
            let pv = bdd.var(p);
            let vv = if value { bdd.var(v) } else { bdd.nvar(v) };
            let fact = bdd.implies(pv, vv);
            constrained = bdd.and(constrained, fact);
        }
        let assignments = {
            let bdd = self.algebra.bdd_mut();
            bdd.all_sat(constrained, &self.support)
        };

        let mut seen: BTreeSet<(ReactionLabel, Vec<(Name, bool)>)> = BTreeSet::new();
        let mut out = Vec::new();
        for assignment in assignments {
            let lookup: BTreeMap<Var, bool> = assignment.into_iter().collect();
            let mut present: BTreeSet<Name> = BTreeSet::new();
            for n in &self.presence_signals {
                if lookup[&self.algebra.presence_var(n.as_str())] {
                    present.insert(n.clone());
                }
            }
            let mut values: BTreeMap<Name, bool> = BTreeMap::new();
            for n in &self.value_signals {
                if present.contains(n) {
                    values.insert(n.clone(), lookup[&self.algebra.value_var(n.as_str())]);
                }
            }
            // Successor state: registers whose source is present take its
            // value.
            let mut next = state.clone();
            for (outn, arg, _) in &self.registers {
                if present.contains(arg) {
                    if let Some(v) = values.get(arg) {
                        next.insert(outn.clone(), *v);
                    }
                }
            }
            let label = ReactionLabel::new(
                present.intersection(&self.alphabet).cloned().collect(),
                values
                    .iter()
                    .filter(|(k, _)| self.alphabet.contains(*k))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
            );
            let key = (
                label.clone(),
                next.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            );
            if seen.insert(key) {
                out.push((label, next));
            }
        }
        out
    }
}

impl fmt::Debug for PresenceAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PresenceAbstraction")
            .field("registers", &self.registers)
            .field("alphabet", &self.alphabet)
            .field("support_size", &self.support.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    #[test]
    fn label_independence_and_union() {
        let a = ReactionLabel::new(
            [Name::from("x")].into_iter().collect(),
            [(Name::from("x"), true)].into_iter().collect(),
        );
        let b = ReactionLabel::new([Name::from("y")].into_iter().collect(), BTreeMap::new());
        assert!(a.independent(&b));
        let u = a.union(&b).unwrap();
        assert!(u.is_present("x") && u.is_present("y"));
        assert_eq!(u.value("x"), Some(true));
        assert!(a.union(&a).is_none());
    }

    #[test]
    fn label_decompositions_cover_all_splits() {
        let label = ReactionLabel::new(
            ["x", "y", "z"].into_iter().map(Name::from).collect(),
            BTreeMap::new(),
        );
        let d = label.decompositions();
        // 2^3 - 2 = 6 ordered splits.
        assert_eq!(d.len(), 6);
        for (l, r) in &d {
            assert!(l.independent(r));
            assert_eq!(l.union(r).unwrap().present(), label.present());
        }
    }

    #[test]
    fn buffer_abstraction_alternates_between_x_and_y() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let mut abs = PresenceAbstraction::new(&kernel);
        let s0 = abs.initial_state();
        let reactions = abs.reactions(&s0);
        // Besides silence, in the initial state (s=true, so t=false) the
        // buffer can only read y.
        let non_silent: Vec<_> = reactions.iter().filter(|(l, _)| !l.is_silent()).collect();
        assert!(!non_silent.is_empty());
        assert!(non_silent
            .iter()
            .all(|(l, _)| l.is_present("y") && !l.is_present("x")));
        // After reading, the successor state allows emitting x.
        let (_, next) = non_silent[0];
        let mut abs2 = PresenceAbstraction::new(&kernel);
        let reactions2 = abs2.reactions(next);
        assert!(reactions2
            .iter()
            .any(|(l, _)| l.is_present("x") && !l.is_present("y")));
    }

    #[test]
    fn producer_consumer_can_fire_a_and_b_independently_or_together() {
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let mut abs = PresenceAbstraction::new(&kernel);
        let s0 = abs.initial_state();
        let reactions = abs.reactions(&s0);
        let has = |pred: &dyn Fn(&ReactionLabel) -> bool| reactions.iter().any(|(l, _)| pred(l));
        // a alone (a=true keeps x absent so no rendez-vous with b is needed).
        assert!(has(&|l| l.is_present("a")
            && !l.is_present("b")
            && l.value("a") == Some(true)));
        // b alone (b=false).
        assert!(has(&|l| l.is_present("b")
            && !l.is_present("a")
            && l.value("b") == Some(false)));
        // Both together (the rendez-vous on the shared x: a=false, b=true).
        assert!(has(&|l| l.is_present("a")
            && l.is_present("b")
            && l.value("a") == Some(false)
            && l.value("b") == Some(true)));
        // But never a=false without b (x would be produced and not consumed).
        assert!(!has(&|l| l.value("a") == Some(false) && !l.is_present("b")));
    }

    #[test]
    fn silence_is_always_enumerated() {
        for def in [stdlib::filter(), stdlib::buffer(), stdlib::producer()] {
            let kernel = def.normalize().unwrap();
            let mut abs = PresenceAbstraction::new(&kernel);
            let s0 = abs.initial_state();
            let reactions = abs.reactions(&s0);
            assert!(
                reactions.iter().any(|(l, _)| l.is_silent()),
                "{} has no silent reaction",
                def.name
            );
        }
    }
}
