//! The `StateIndependent`, `OrderIndependent` and `FlowIndependent`
//! invariants of Section 4.1.
//!
//! The paper expresses properties (2a)–(2c) of weak endochrony as Signal
//! invariants over pairs of *root clocks* `(x, y)` (and a third signal `z`
//! for flow independence) and model checks them with Sigali.  Here the
//! invariants are checked directly on the explicit LTS of the presence
//! abstraction, with the following reading:
//!
//! * **OrderIndependent(x, y)** — whenever `x` can occur without `y` and
//!   `y` can occur without `x` from the same state, both can also occur
//!   together (the union diamond at the roots);
//! * **StateIndependent(x, y)** — whenever `x` occurs alone and `y` occurs
//!   alone in the *next* reaction, the two could have occurred together in
//!   the first one (committing `x` first did not consume `y`'s instant);
//! * **FlowIndependent(x, y, z)** — committing the `x`-side of a reaction
//!   that also carries `z` does not lose the pending `y`-side: `y` remains
//!   possible in the successor state.

use std::collections::BTreeSet;
use std::fmt;

use clocks::ClockAnalysis;
use signal_lang::{KernelProcess, Name};

use crate::lts::Lts;

/// One invariant verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// The invariant name (`StateIndependent`, ...).
    pub name: &'static str,
    /// The pair (or triple) of signals the invariant talks about.
    pub signals: Vec<Name>,
    /// Counter-example descriptions; empty when the invariant holds.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Returns `true` when the invariant holds.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let signals: Vec<&str> = self.signals.iter().map(Name::as_str).collect();
        write!(
            f,
            "{}({}) : {}",
            self.name,
            signals.join(", "),
            if self.holds() { "holds" } else { "violated" }
        )
    }
}

/// The invariants of Section 4.1 checked over every pair of hierarchy roots.
#[derive(Debug, Clone)]
pub struct RootInvariants {
    roots: Vec<Name>,
    reports: Vec<InvariantReport>,
}

impl RootInvariants {
    /// Picks one representative signal per root of the clock hierarchy of
    /// `process`, explores its abstraction (up to `max_states` states) and
    /// checks the three invariants for every pair of roots.
    pub fn check(process: &KernelProcess, max_states: usize) -> Self {
        let analysis = ClockAnalysis::analyze(process);
        let interface: BTreeSet<Name> = process.interface();
        let mut roots: Vec<Name> = Vec::new();
        for (root, signals) in analysis.root_partitions() {
            // Prefer an interface signal of the root class itself as the
            // representative; fall back to any signal of the tree.
            let members: Vec<Name> = analysis
                .hierarchy()
                .class_members(root)
                .iter()
                .map(|c| c.signal().clone())
                .collect();
            let representative = members
                .iter()
                .find(|n| interface.contains(*n))
                .cloned()
                .or_else(|| signals.iter().find(|n| interface.contains(*n)).cloned())
                .or_else(|| members.first().cloned());
            if let Some(r) = representative {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        }
        let lts = Lts::explore(process, max_states);
        let mut reports = Vec::new();
        for (i, x) in roots.iter().enumerate() {
            for y in roots.iter().skip(i + 1) {
                reports.push(order_independent(&lts, x, y));
                reports.push(state_independent(&lts, x, y));
                for z in process.outputs() {
                    if z != x && z != y {
                        reports.push(flow_independent(&lts, x, y, z));
                    }
                }
            }
        }
        RootInvariants { roots, reports }
    }

    /// The representative signal of each root.
    pub fn roots(&self) -> &[Name] {
        &self.roots
    }

    /// Every individual invariant report.
    pub fn reports(&self) -> &[InvariantReport] {
        &self.reports
    }

    /// Returns `true` when every invariant holds (Property 3: the process is
    /// then weakly endochronous).
    pub fn all_hold(&self) -> bool {
        self.reports.iter().all(InvariantReport::holds)
    }
}

impl fmt::Display for RootInvariants {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let roots: Vec<&str> = self.roots.iter().map(Name::as_str).collect();
        writeln!(f, "roots: {}", roots.join(", "))?;
        for r in &self.reports {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// `OrderIndependent(x, y)`: `x` without `y` and `y` without `x` enabled in
/// the same state imply `x` and `y` together enabled in that state.
pub fn order_independent(lts: &Lts, x: &Name, y: &Name) -> InvariantReport {
    let mut violations = Vec::new();
    for state in lts.states() {
        let x_alone = lts.has_transition(state, |l| {
            l.is_present(x.as_str()) && !l.is_present(y.as_str())
        });
        let y_alone = lts.has_transition(state, |l| {
            l.is_present(y.as_str()) && !l.is_present(x.as_str())
        });
        let both = lts.has_transition(state, |l| {
            l.is_present(x.as_str()) && l.is_present(y.as_str())
        });
        if x_alone && y_alone && !both {
            violations.push(format!(
                "state {state}: {x} and {y} can each occur alone but never together"
            ));
        }
    }
    InvariantReport {
        name: "OrderIndependent",
        signals: vec![x.clone(), y.clone()],
        violations,
    }
}

/// `StateIndependent(x, y)`: if `x` occurs without `y` and, in the successor
/// state, `y` occurs without `x`, then `x` and `y` could have occurred
/// together in the first reaction.
pub fn state_independent(lts: &Lts, x: &Name, y: &Name) -> InvariantReport {
    let mut violations = Vec::new();
    for state in lts.states() {
        for (label, next) in lts.transitions_from(state) {
            if !label.is_present(x.as_str()) || label.is_present(y.as_str()) {
                continue;
            }
            let y_next = lts.has_transition(*next, |l| {
                l.is_present(y.as_str()) && !l.is_present(x.as_str())
            });
            if !y_next {
                continue;
            }
            let both_now = lts.has_transition(state, |l| {
                l.is_present(x.as_str()) && l.is_present(y.as_str())
            });
            if !both_now {
                violations.push(format!(
                    "state {state}: {x} then {y} is possible but never {x} and {y} together"
                ));
            }
        }
    }
    InvariantReport {
        name: "StateIndependent",
        signals: vec![x.clone(), y.clone()],
        violations,
    }
}

/// `FlowIndependent(x, y, z)`: committing a reaction that carries `z`
/// together with `x` (and without `y`), while `y` alone was also possible,
/// must leave `y` available in the successor state — the flow towards `z`'s
/// consumers does not depend on the order in which `x` and `y` arrive.
pub fn flow_independent(lts: &Lts, x: &Name, y: &Name, z: &Name) -> InvariantReport {
    let mut violations = Vec::new();
    for state in lts.states() {
        let y_alone_possible = lts.has_transition(state, |l| {
            l.is_present(y.as_str()) && !l.is_present(x.as_str())
        });
        if !y_alone_possible {
            continue;
        }
        for (label, next) in lts.transitions_from(state) {
            let carries = label.is_present(z.as_str())
                && label.is_present(x.as_str())
                && !label.is_present(y.as_str());
            if !carries {
                continue;
            }
            if !lts.has_transition(*next, |l| l.is_present(y.as_str())) {
                violations.push(format!(
                    "state {state}: taking {x} with {z} loses the pending {y}"
                ));
            }
        }
    }
    InvariantReport {
        name: "FlowIndependent",
        signals: vec![x.clone(), y.clone(), z.clone()],
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    #[test]
    fn producer_consumer_roots_satisfy_every_invariant() {
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let invariants = RootInvariants::check(&kernel, 10_000);
        assert_eq!(invariants.roots().len(), 2);
        assert!(invariants.all_hold(), "{invariants}");
        assert!(!invariants.reports().is_empty());
    }

    #[test]
    fn filter_merge_roots_satisfy_every_invariant() {
        let kernel = stdlib::filter_merge().normalize().unwrap();
        let invariants = RootInvariants::check(&kernel, 10_000);
        assert_eq!(invariants.roots().len(), 2);
        assert!(invariants.all_hold(), "{invariants}");
    }

    #[test]
    fn an_exclusive_choice_violates_order_independence() {
        use signal_lang::{ClockAst, Expr, ProcessBuilder};
        let def = ProcessBuilder::new("exclusive")
            .define("u", Expr::var("y").add(Expr::cst(1)))
            .define("v", Expr::var("z").add(Expr::cst(1)))
            .constraint(ClockAst::of("y").and(ClockAst::of("z")), ClockAst::Zero)
            .build()
            .unwrap();
        let kernel = def.normalize().unwrap();
        let lts = Lts::explore(&kernel, 100);
        let report = order_independent(&lts, &Name::from("y"), &Name::from("z"));
        assert!(!report.holds());
        assert!(report.to_string().contains("violated"));
    }

    #[test]
    fn endochronous_processes_have_a_single_root_and_hold_vacuously() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let invariants = RootInvariants::check(&kernel, 1_000);
        assert_eq!(invariants.roots().len(), 1);
        assert!(invariants.all_hold());
        assert!(invariants.reports().is_empty());
    }
}
