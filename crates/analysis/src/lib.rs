//! Weak-endochrony analysis by explicit state-space exploration.
//!
//! The paper (Section 4.1) verifies weak endochrony (Definition 2) by model
//! checking: the process is abstracted to its *presence* behaviour — which
//! signals can be present together, and how the boolean control state
//! evolves — and the diamond properties of weakly endochronous systems are
//! checked on the resulting finite labelled transition system.  This crate
//! implements that machinery from scratch:
//!
//! * [`abstraction`] — the boolean control abstraction of a kernel process,
//!   built on the BDD relation of the clock calculus;
//! * [`lts`] — explicit-state reachability, producing a finite LTS;
//! * [`weak_endochrony`] — determinism and the diamond properties (2a)–(2c)
//!   of Definition 2, plus the non-blocking check of Definition 4;
//! * [`invariants`] — the `StateIndependent`, `OrderIndependent` and
//!   `FlowIndependent` invariants of Section 4.1, stated over pairs of root
//!   clocks and checked on the LTS.
//!
//! The cost of this exploration — compared to the static weak-hierarchy
//! criterion of the `isochron` crate — is exactly the trade-off the paper
//! sets out to balance (benchmark E10).
//!
//! # Example
//!
//! ```
//! use analysis::WeakEndochronyReport;
//! use signal_lang::stdlib;
//!
//! let main = stdlib::producer_consumer().normalize()?;
//! let report = WeakEndochronyReport::check(&main, 10_000);
//! assert!(report.is_weakly_endochronous(), "{report}");
//! assert!(report.is_non_blocking());
//! # Ok::<(), signal_lang::SignalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod invariants;
pub mod lts;
pub mod weak_endochrony;

pub use abstraction::{PresenceAbstraction, ReactionLabel};
pub use invariants::{InvariantReport, RootInvariants};
pub use lts::{Lts, StateId};
pub use weak_endochrony::WeakEndochronyReport;
