//! Explicit-state labelled transition systems.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use signal_lang::KernelProcess;

use crate::abstraction::{ControlState, PresenceAbstraction, ReactionLabel};

/// Identifier of a state of an [`Lts`].
pub type StateId = usize;

/// A finite labelled transition system obtained by exploring the presence
/// abstraction of a process.
#[derive(Debug, Clone)]
pub struct Lts {
    states: Vec<ControlState>,
    transitions: Vec<Vec<(ReactionLabel, StateId)>>,
    truncated: bool,
}

impl Lts {
    /// Explores the abstraction of `process` breadth-first from its initial
    /// state, visiting at most `max_states` control states.
    pub fn explore(process: &KernelProcess, max_states: usize) -> Self {
        let mut abstraction = PresenceAbstraction::new(process);
        Self::explore_abstraction(&mut abstraction, max_states)
    }

    /// Explores an already-built abstraction.
    pub fn explore_abstraction(abstraction: &mut PresenceAbstraction, max_states: usize) -> Self {
        let mut states: Vec<ControlState> = Vec::new();
        let mut index: BTreeMap<ControlState, StateId> = BTreeMap::new();
        let mut transitions: Vec<Vec<(ReactionLabel, StateId)>> = Vec::new();
        let mut truncated = false;

        let initial = abstraction.initial_state();
        states.push(initial.clone());
        index.insert(initial.clone(), 0);
        transitions.push(Vec::new());

        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);
        while let Some(id) = queue.pop_front() {
            let state = states[id].clone();
            for (label, next_state) in abstraction.reactions(&state) {
                let next_id = match index.get(&next_state) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        let i = states.len();
                        states.push(next_state.clone());
                        index.insert(next_state, i);
                        transitions.push(Vec::new());
                        queue.push_back(i);
                        i
                    }
                };
                transitions[id].push((label, next_id));
            }
        }
        Lts {
            states,
            transitions,
            truncated,
        }
    }

    /// The number of explored states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Returns `true` when the exploration hit the state cap.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The control state of `id`.
    pub fn state(&self, id: StateId) -> &ControlState {
        &self.states[id]
    }

    /// The outgoing transitions of `id`.
    pub fn transitions_from(&self, id: StateId) -> &[(ReactionLabel, StateId)] {
        &self.transitions[id]
    }

    /// Iterates over every state identifier.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        0..self.states.len()
    }

    /// Returns `true` when `id` has an outgoing transition whose label
    /// matches the predicate.
    pub fn has_transition(&self, id: StateId, predicate: impl Fn(&ReactionLabel) -> bool) -> bool {
        self.transitions[id].iter().any(|(l, _)| predicate(l))
    }

    /// The successors of `id` reached by a label matching the predicate.
    pub fn successors_by(
        &self,
        id: StateId,
        predicate: impl Fn(&ReactionLabel) -> bool,
    ) -> Vec<StateId> {
        self.transitions[id]
            .iter()
            .filter(|(l, _)| predicate(l))
            .map(|(_, s)| *s)
            .collect()
    }
}

impl fmt::Display for Lts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LTS with {} states and {} transitions{}",
            self.state_count(),
            self.transition_count(),
            if self.truncated { " (truncated)" } else { "" }
        )?;
        for id in self.states() {
            for (label, next) in self.transitions_from(id) {
                writeln!(f, "  s{id} --{label}--> s{next}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    #[test]
    fn buffer_lts_has_two_control_states() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let lts = Lts::explore(&kernel, 1000);
        // The only boolean state that matters alternates: reading phase and
        // writing phase (the memory register also flips with the read
        // value, giving at most a few more states).
        assert!(lts.state_count() >= 2);
        assert!(lts.state_count() <= 8);
        assert!(!lts.is_truncated());
        // Every state can either read or write, never both.
        for id in lts.states() {
            assert!(!lts.has_transition(id, |l| l.is_present("x") && l.is_present("y")));
        }
    }

    #[test]
    fn producer_consumer_lts_is_small_and_complete() {
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let lts = Lts::explore(&kernel, 1000);
        assert!(!lts.is_truncated());
        assert!(lts.state_count() >= 1);
        assert!(lts.transition_count() > lts.state_count());
    }

    #[test]
    fn truncation_is_reported() {
        let kernel = stdlib::ltta().normalize().unwrap();
        let lts = Lts::explore(&kernel, 2);
        assert!(lts.is_truncated());
        assert_eq!(lts.state_count(), 2);
    }

    #[test]
    fn display_mentions_the_size() {
        let kernel = stdlib::filter().normalize().unwrap();
        let lts = Lts::explore(&kernel, 100);
        let text = lts.to_string();
        assert!(text.contains("states"));
    }
}
