//! Weak endochrony (Definition 2) and non-blocking (Definition 4) checks.

use std::collections::BTreeSet;
use std::fmt;

use signal_lang::{KernelProcess, Name};

use crate::lts::{Lts, StateId};

/// The result of model checking weak endochrony on the presence abstraction
/// of a process.
#[derive(Debug, Clone)]
pub struct WeakEndochronyReport {
    state_count: usize,
    transition_count: usize,
    truncated: bool,
    determinism_violations: Vec<String>,
    commutation_violations: Vec<String>,
    union_violations: Vec<String>,
    decomposition_violations: Vec<String>,
    blocking_states: Vec<StateId>,
}

impl WeakEndochronyReport {
    /// Explores the abstraction of `process` (visiting at most `max_states`
    /// control states) and checks the conditions of Definition 2 on the
    /// resulting LTS, together with the non-blocking condition of
    /// Definition 4.
    pub fn check(process: &KernelProcess, max_states: usize) -> Self {
        let inputs: BTreeSet<Name> = process.inputs().cloned().collect();
        let lts = Lts::explore(process, max_states);
        Self::check_lts(&lts, &inputs)
    }

    /// Checks the conditions on an already-explored LTS.
    pub fn check_lts(lts: &Lts, inputs: &BTreeSet<Name>) -> Self {
        let mut report = WeakEndochronyReport {
            state_count: lts.state_count(),
            transition_count: lts.transition_count(),
            truncated: lts.is_truncated(),
            determinism_violations: Vec::new(),
            commutation_violations: Vec::new(),
            union_violations: Vec::new(),
            decomposition_violations: Vec::new(),
            blocking_states: Vec::new(),
        };
        for state in lts.states() {
            report.check_determinism(lts, state, inputs);
            report.check_commutation(lts, state);
            report.check_union(lts, state);
            report.check_decomposition(lts, state);
            report.check_blocking(lts, state);
        }
        report
    }

    /// Condition 1 of Definition 2: the process is deterministic — two
    /// reactions that agree on the inputs agree on everything and lead to
    /// the same control state.
    fn check_determinism(&mut self, lts: &Lts, state: StateId, inputs: &BTreeSet<Name>) {
        let transitions = lts.transitions_from(state);
        for (i, (l1, s1)) in transitions.iter().enumerate() {
            for (l2, s2) in transitions.iter().skip(i + 1) {
                if l1.restrict(inputs) == l2.restrict(inputs) && (l1 != l2 || s1 != s2) {
                    // Reactions with *no* input at all are internal choices
                    // of the activation pacing (e.g. the silent reaction vs.
                    // a root tick) and are not a determinism violation: the
                    // paper's determinism is relative to the inputs I once
                    // the reaction is actually triggered.
                    if l1.restrict(inputs).is_silent() && (l1.is_silent() || l2.is_silent()) {
                        continue;
                    }
                    self.determinism_violations.push(format!(
                        "state {state}: reactions {l1} and {l2} agree on the inputs but differ"
                    ));
                }
            }
        }
    }

    /// Condition 2a, in its state-based diamond reading: two *independent*
    /// reactions enabled in the same state can be performed in any order —
    /// performing one does not disable the other.
    ///
    /// The research-report phrasing (`b·r·s ∈ p ⇒ b·s ∈ p`) taken literally
    /// would reject even endochronous processes such as the one-place
    /// buffer (whose read alters the state and enables the write), so we
    /// check the diamond form used by Potop-Butucaru, Caillaud and
    /// Benveniste, which is the property Theorem 1 actually relies on:
    /// independent reactions may be committed in any order without altering
    /// the outcome.
    fn check_commutation(&mut self, lts: &Lts, state: StateId) {
        let transitions = lts.transitions_from(state);
        for (i, (r, _)) in transitions.iter().enumerate() {
            if r.is_silent() {
                continue;
            }
            for (s, _) in transitions.iter().skip(i + 1) {
                if s.is_silent() || !r.independent(s) || r == s {
                    continue;
                }
                for (first, second) in [(r, s), (s, r)] {
                    let mids = lts.successors_by(state, |l| l == first);
                    let preserved = mids
                        .iter()
                        .any(|mid| lts.has_transition(*mid, |l| l == second));
                    if !preserved {
                        self.commutation_violations.push(format!(
                            "state {state}: {second} is enabled but lost after {first}"
                        ));
                    }
                }
            }
        }
    }

    /// Condition 2b: independent reactions enabled in the same state can be
    /// merged into a single reaction (`b·r, b·s ∈ p ⇒ b·(r ⊔ s) ∈ p`).
    fn check_union(&mut self, lts: &Lts, state: StateId) {
        let transitions = lts.transitions_from(state);
        for (i, (r, _)) in transitions.iter().enumerate() {
            if r.is_silent() {
                continue;
            }
            for (s, _) in transitions.iter().skip(i + 1) {
                if s.is_silent() || !r.independent(s) {
                    continue;
                }
                let Some(union) = r.union(s) else { continue };
                if !lts.has_transition(state, |l| *l == union) {
                    self.union_violations.push(format!(
                        "state {state}: {r} and {s} are both enabled but not their union {union}"
                    ));
                }
            }
        }
    }

    /// Condition 2c: if two reactions enabled in the same state share a
    /// common independent part `r` (`b·(r ⊔ s), b·(r ⊔ t) ∈ p`), then the
    /// shared part can be committed first and each remainder stays
    /// available (`b·r·s, b·r·t ∈ p`).
    ///
    /// Signals present in both reactions whose values the boolean
    /// abstraction does not track (data signals) make the comparison
    /// inconclusive; such pairs are skipped, which keeps the check sound
    /// for the control behaviour it models.
    fn check_decomposition(&mut self, lts: &Lts, state: StateId) {
        let transitions = lts.transitions_from(state);
        for (i, (u1, _)) in transitions.iter().enumerate() {
            for (u2, _) in transitions.iter().skip(i + 1) {
                if u1.is_silent() || u2.is_silent() || u1 == u2 {
                    continue;
                }
                let common: BTreeSet<Name> =
                    u1.present().intersection(u2.present()).cloned().collect();
                if common.is_empty() {
                    continue;
                }
                // Values must be known on the whole common part to identify
                // the shared reaction r.
                if common
                    .iter()
                    .any(|n| u1.value(n.as_str()).is_none() || u2.value(n.as_str()).is_none())
                {
                    continue;
                }
                if common
                    .iter()
                    .any(|n| u1.value(n.as_str()) != u2.value(n.as_str()))
                {
                    continue;
                }
                let r = u1.restrict(&common);
                let rest1: BTreeSet<Name> = u1.present().difference(&common).cloned().collect();
                let rest2: BTreeSet<Name> = u2.present().difference(&common).cloned().collect();
                let s = u1.restrict(&rest1);
                let t = u2.restrict(&rest2);
                let mids = lts.successors_by(state, |l| *l == r);
                if mids.is_empty() {
                    self.decomposition_violations.push(format!(
                        "state {state}: {u1} and {u2} share {r}, which is not enabled alone"
                    ));
                    continue;
                }
                for remainder in [&s, &t] {
                    if remainder.is_silent() {
                        continue;
                    }
                    if !mids
                        .iter()
                        .any(|mid| lts.has_transition(*mid, |l| l == remainder))
                    {
                        self.decomposition_violations.push(format!(
                            "state {state}: after the shared part {r}, {remainder} is lost"
                        ));
                    }
                }
            }
        }
    }

    /// Definition 4: every reachable state must offer some productive (non
    /// silent) reaction.
    fn check_blocking(&mut self, lts: &Lts, state: StateId) {
        if !lts.has_transition(state, |l| !l.is_silent()) {
            self.blocking_states.push(state);
        }
    }

    /// The number of control states explored.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The number of transitions explored.
    pub fn transition_count(&self) -> usize {
        self.transition_count
    }

    /// Returns `true` when the exploration was truncated by the state cap —
    /// verdicts are then only valid for the explored prefix.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` when the process is deterministic (condition 1).
    pub fn is_deterministic(&self) -> bool {
        self.determinism_violations.is_empty()
    }

    /// Returns `true` when every diamond condition (2a)–(2c) holds.
    pub fn diamonds_hold(&self) -> bool {
        self.commutation_violations.is_empty()
            && self.union_violations.is_empty()
            && self.decomposition_violations.is_empty()
    }

    /// Returns `true` when the process is weakly endochronous (Definition 2).
    pub fn is_weakly_endochronous(&self) -> bool {
        self.is_deterministic() && self.diamonds_hold()
    }

    /// Returns `true` when every reachable state can perform a productive
    /// reaction (Definition 4).
    pub fn is_non_blocking(&self) -> bool {
        self.blocking_states.is_empty()
    }

    /// Theorem of \[18\] as used by the paper: weakly endochronous,
    /// non-blocking processes are isochronous.
    pub fn implies_isochrony(&self) -> bool {
        self.is_weakly_endochronous() && self.is_non_blocking()
    }

    /// Every violation message.
    pub fn violations(&self) -> Vec<&str> {
        self.determinism_violations
            .iter()
            .chain(&self.commutation_violations)
            .chain(&self.union_violations)
            .chain(&self.decomposition_violations)
            .map(String::as_str)
            .collect()
    }
}

impl fmt::Display for WeakEndochronyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "weak endochrony over {} states / {} transitions{}:",
            self.state_count,
            self.transition_count,
            if self.truncated { " (truncated)" } else { "" }
        )?;
        writeln!(f, "  deterministic: {}", self.is_deterministic())?;
        writeln!(f, "  diamonds:      {}", self.diamonds_hold())?;
        writeln!(f, "  non-blocking:  {}", self.is_non_blocking())?;
        for v in self.violations() {
            writeln!(f, "  violation: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::{stdlib, Expr, ProcessBuilder};

    #[test]
    fn endochronous_components_are_weakly_endochronous() {
        for def in [
            stdlib::filter(),
            stdlib::merge(),
            stdlib::buffer(),
            stdlib::producer(),
            stdlib::consumer(),
        ] {
            let kernel = def.normalize().unwrap();
            let report = WeakEndochronyReport::check(&kernel, 10_000);
            assert!(
                report.is_weakly_endochronous(),
                "{} should be weakly endochronous:\n{report}",
                def.name
            );
        }
    }

    #[test]
    fn producer_consumer_composition_is_weakly_endochronous_and_non_blocking() {
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let report = WeakEndochronyReport::check(&kernel, 10_000);
        assert!(report.is_weakly_endochronous(), "{report}");
        assert!(report.is_non_blocking());
        assert!(report.implies_isochrony());
        assert!(!report.is_truncated());
    }

    #[test]
    fn filter_merge_composition_is_weakly_endochronous() {
        let kernel = stdlib::filter_merge().normalize().unwrap();
        let report = WeakEndochronyReport::check(&kernel, 10_000);
        assert!(report.is_weakly_endochronous(), "{report}");
    }

    #[test]
    fn a_mutual_exclusion_choice_is_rejected() {
        use signal_lang::ClockAst;
        // Two independent inputs that may each fire alone but are never
        // allowed together: the union diamond (2b) fails, which is the
        // textbook non-weakly-endochronous process (an exclusive choice
        // visible to the asynchronous environment).
        let def = ProcessBuilder::new("exclusive")
            .define("u", Expr::var("y").add(Expr::cst(1)))
            .define("v", Expr::var("z").add(Expr::cst(1)))
            .constraint(ClockAst::of("y").and(ClockAst::of("z")), ClockAst::Zero)
            .build()
            .unwrap();
        let kernel = def.normalize().unwrap();
        let report = WeakEndochronyReport::check(&kernel, 10_000);
        assert!(report.is_deterministic());
        assert!(!report.is_weakly_endochronous(), "{report}");
        assert!(!report.violations().is_empty());
    }

    #[test]
    fn report_counts_and_display() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let report = WeakEndochronyReport::check(&kernel, 10_000);
        assert!(report.state_count() >= 2);
        assert!(report.transition_count() >= report.state_count());
        let text = report.to_string();
        assert!(text.contains("deterministic: true"));
    }
}
