//! E10 — the motivating trade-off: the cost of the static weak-hierarchy
//! criterion versus model checking weak endochrony, as the composition
//! grows (chains of producer/consumer pairs).
//!
//! The paper's claim is qualitative: the static criterion scales with the
//! number of components while exhaustive exploration scales with the product
//! of their state spaces.  The series below regenerates that shape.

use analysis::WeakEndochronyReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isochron::design::{chain_as_single_process, chain_of_pairs};
use isochron::Design;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_static_vs_mc");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("static_weak_hierarchy", n),
            &n,
            |bencher, &n| {
                let components = chain_of_pairs(n);
                bencher.iter(|| {
                    let design = Design::compose(format!("chain{n}"), components.clone())
                        .expect("chain builds");
                    assert!(design.is_weakly_hierarchic());
                    design.verdict().roots
                })
            },
        );
    }
    // The explicit exploration is only affordable for the small instances:
    // its cost grows with the product of the component state spaces, which
    // is precisely the paper's argument for the static criterion.
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("model_checking", n), &n, |bencher, &n| {
            let process = chain_as_single_process(n)
                .expect("chain builds")
                .normalize()
                .expect("normalizes");
            bencher.iter(|| {
                let report = WeakEndochronyReport::check(&process, 100_000);
                assert!(report.is_weakly_endochronous());
                report.state_count() + report.transition_count()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
