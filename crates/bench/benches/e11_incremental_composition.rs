//! E11 — compositionality of the methodology (the paper's `main2`):
//! extending an already-checked design with one more endochronous component
//! only requires re-checking the new composition, and the cost of the check
//! grows smoothly with the number of components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isochron::design::chain_of_pairs;
use isochron::Design;
use signal_lang::stdlib;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_incremental_composition");
    group.sample_size(10);

    // Extend the producer/consumer design with an extra consumer, as in
    // Section 5.2.
    group.bench_function("extend_main_with_consumer2", |b| {
        let base =
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("base design");
        let extra =
            stdlib::consumer().instantiate("consumer2", &[("b", "c"), ("x", "v"), ("v", "w")]);
        b.iter(|| {
            let extended = base.extend(extra.clone()).expect("extends");
            assert!(extended.verdict().weakly_hierarchic);
            extended.components().len()
        })
    });

    // Cost of checking a design as a function of its size.
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("check_chain", n), &n, |b, &n| {
            let components = chain_of_pairs(n);
            b.iter(|| {
                Design::compose(format!("chain{n}"), components.clone())
                    .expect("builds")
                    .verdict()
                    .weakly_hierarchic
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
