//! E12 (ablation) — the BDD variable ordering behind the clock algebra.
//!
//! The static criterion is only cheap because the relation BDD of a
//! composition of independent components stays small.  That hinges on the
//! variable ordering: grouping the variables of each component contiguously
//! keeps the conjunction of their relations linear, while the naive
//! lexicographic order interleaves components and exhibits the classic
//! exponential blow-up.  This ablation quantifies the design choice called
//! out in DESIGN.md.

use clocks::{inference, ClockAlgebra, VariableOrder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isochron::design::chain_as_single_process;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_bdd_ordering");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let kernel = chain_as_single_process(n)
            .expect("chain builds")
            .normalize()
            .expect("normalizes");
        let relations = inference::infer(&kernel);
        group.bench_with_input(BenchmarkId::new("grouped", n), &n, |bencher, _| {
            bencher.iter(|| {
                let algebra = ClockAlgebra::with_order(&kernel, &relations, VariableOrder::Grouped);
                algebra.bdd_node_count()
            })
        });
        // The naive ordering is only affordable for the smallest chains —
        // which is exactly the point of the ablation.
        if n <= 4 {
            group.bench_with_input(BenchmarkId::new("name_order", n), &n, |bencher, _| {
                bencher.iter(|| {
                    let algebra =
                        ClockAlgebra::with_order(&kernel, &relations, VariableOrder::NameOrder);
                    algebra.bdd_node_count()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
