//! E13 — GALS deployment throughput, two experiments:
//!
//! 1. **Backend/capacity** (verified designs): reactions/sec of a deployed
//!    buffer pipeline at 1, 2, 4 and 8 components, channel capacities 1,
//!    16 and 256, and both channel backends (bounded mpsc vs lock-free
//!    SPSC ring).  Deeper pipelines add threads, wider channels trade
//!    memory for fewer blocking hand-offs, and the ring removes the
//!    per-token lock from the hand-off itself — most visible at capacity
//!    1, where every token crosses a full rendez-vous.
//!
//! 2. **Scheduler** (hand-rolled relay machines): thread-per-component vs
//!    the work-stealing batched pool at 8, 64 and 256 components, on a
//!    pipeline shape and a fan-out/fan-in shape.  Thread mode spawns one
//!    OS thread per component — 256 threads on a handful of cores is pure
//!    oversubscription; the pool completes the same run on
//!    `available_parallelism` workers, stepping each ready component a
//!    quantum of reactions per dispatch.
//!
//! 3. **Derived vs hand-tuned capacities** (verified designs): the same
//!    buffer pipeline with its channel capacities derived from the clock
//!    calculus (`ChannelSizing::Derived` — the paper's one-place bound on
//!    every edge) against hand-tuned capacities 1 and 16.  Derived sizing
//!    must match capacity 1 (it *is* 1 on these edges, now proven instead
//!    of guessed); capacity 16 shows what the extra slack buys — memory
//!    traded against blocking hand-offs, no conformance difference.
//!
//! 4. **Machine kind** (interpreter vs compiled step machines): the same
//!    generated step program executed by the tree-walking
//!    `SequentialRuntime` and by the slot-indexed `CompiledRuntime`, both
//!    as a bare step loop (pure machine cost, no threads or channels — the
//!    chain-of-pairs program at 1, 4 and 8 pairs) and as a full deployed
//!    pipeline (`Design::deploy_with`), where hand-off costs dilute the
//!    difference.
//!
//! The machine-readable report additionally measures the cross-process
//! media from `gals-net`: the same derived-sized pipeline with every edge
//! riding the shared-file ring (`shm`) or a Unix domain socket speaking
//! the credit-windowed wire protocol (`uds`), plus a genuinely
//! partitioned run (`pipe4/partitioned/uds`) whose two halves exchange
//! the cut signal over a real socket via the partition runner.

use std::collections::BTreeMap;
use std::sync::Arc;

use bench::boolean_flow;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gals_net::runner::run_partition;
use gals_net::{plan, MergedStats, NetTransport, ShmTransport, UdsLinks};
use gals_rt::{Backend, Deployment, ExecutionMode, MachineKind, StepFault, StepMachine};
use isochron::design::chain_as_single_process;
use isochron::{library, Component};
use signal_lang::{Name, Value};

const STREAM_LEN: usize = 256;

/// A machine that forwards one token per reaction from its single input to
/// its single output — the cheapest possible component, so the benchmark
/// measures scheduling and hand-off cost, not compute.
struct Relay {
    name: String,
    input: Name,
    output: Name,
    queue: std::collections::VecDeque<Value>,
    produced: Vec<Value>,
}

impl Relay {
    fn new(name: String, input: &str, output: &str) -> Box<Self> {
        Box::new(Relay {
            name,
            input: Name::from(input),
            output: Name::from(output),
            queue: std::collections::VecDeque::new(),
            produced: Vec::new(),
        })
    }
}

impl StepMachine for Relay {
    fn machine_name(&self) -> &str {
        &self.name
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![self.input.clone()]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![self.output.clone()]
    }
    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push_back(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        match self.queue.pop_front() {
            Some(value) => {
                self.produced.push(value);
                Ok(())
            }
            None => Err(StepFault::NeedInput(self.input.clone())),
        }
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// A machine that merges every fan branch: one reaction consumes one token
/// from each input and emits their conjunction.
struct Collect {
    inputs: Vec<Name>,
    queues: Vec<std::collections::VecDeque<Value>>,
    produced: Vec<Value>,
}

impl StepMachine for Collect {
    fn machine_name(&self) -> &str {
        "collect"
    }
    fn input_signals(&self) -> Vec<Name> {
        self.inputs.clone()
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![Name::from("out")]
    }
    fn feed_value(&mut self, signal: &str, value: Value) {
        let slot = self
            .inputs
            .iter()
            .position(|i| i.as_str() == signal)
            .expect("declared input");
        self.queues[slot].push_back(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        for (i, queue) in self.queues.iter().enumerate() {
            if queue.is_empty() {
                return Err(StepFault::NeedInput(self.inputs[i].clone()));
            }
        }
        let mut all = true;
        for queue in self.queues.iter_mut() {
            all &= queue.pop_front().expect("checked nonempty") == Value::Bool(true);
        }
        self.produced.push(Value::Bool(all));
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// `components` relays in a line: env `s0` -> relay -> ... -> `s{n}`.
fn pipeline_shape(components: usize) -> Deployment {
    let mut deployment = Deployment::new();
    for i in 0..components {
        deployment.add_machine(Relay::new(
            format!("stage{i}"),
            &format!("s{i}"),
            &format!("s{}", i + 1),
        ));
    }
    deployment
}

/// A source broadcasting to `components - 2` parallel relays, recollected
/// by one sink: the widest topology the derivation produces.
fn fan_shape(components: usize) -> Deployment {
    assert!(components >= 3, "a fan needs source, branch and sink");
    let branches = components - 2;
    let mut deployment = Deployment::new();
    deployment.add_machine(Relay::new("source".into(), "in", "x"));
    let mut inputs = Vec::with_capacity(branches);
    for b in 0..branches {
        let output = format!("t{b}");
        deployment.add_machine(Relay::new(format!("branch{b}"), "x", &output));
        inputs.push(Name::from(output.as_str()));
    }
    let queues = inputs
        .iter()
        .map(|_| std::collections::VecDeque::new())
        .collect();
    deployment.add_machine(Box::new(Collect {
        inputs,
        queues,
        produced: Vec::new(),
    }));
    deployment
}

fn bench_backends(c: &mut Criterion) {
    let stream: Vec<Value> = boolean_flow(STREAM_LEN, 0xE13)
        .into_iter()
        .map(Value::Bool)
        .collect();
    let mut group = c.benchmark_group("e13_gals_throughput");
    group.sample_size(10);
    for components in [1usize, 2, 4, 8] {
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
        for (label, backend) in [("mpsc", Backend::Mpsc), ("ring", Backend::SpscRing)] {
            for capacity in [1usize, 16, 256] {
                group.bench_with_input(
                    BenchmarkId::new(format!("n{components}/{label}"), capacity),
                    &capacity,
                    |bencher, &capacity| {
                        bencher.iter(|| {
                            let mut deployment = design.deploy().expect("the pipeline is verified");
                            deployment.set_backend(backend);
                            deployment.set_capacity(capacity).expect("nonzero");
                            deployment.feed("p0", stream.iter().copied());
                            let outcome = deployment.run().expect("the deployment runs");
                            outcome.stats().total_reactions()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let stream: Vec<Value> = boolean_flow(STREAM_LEN, 0x5C4ED)
        .into_iter()
        .map(Value::Bool)
        .collect();
    let pool = ExecutionMode::pool_per_core();
    let mut group = c.benchmark_group("e13_pool_vs_thread");
    group.sample_size(10);
    for components in [8usize, 64, 256] {
        for (shape, build, env) in [
            ("pipeline", pipeline_shape as fn(usize) -> Deployment, "s0"),
            ("fan", fan_shape as fn(usize) -> Deployment, "in"),
        ] {
            for (label, mode) in [
                ("thread", ExecutionMode::ThreadPerComponent),
                ("pool", pool),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("n{components}/{shape}"), label),
                    &mode,
                    |bencher, &mode| {
                        bencher.iter(|| {
                            let mut deployment = build(components);
                            deployment.set_execution_mode(mode).expect("valid mode");
                            deployment.set_capacity(16).expect("nonzero");
                            deployment.feed(env, stream.iter().copied());
                            let outcome = deployment.run().expect("the deployment runs");
                            // Every relay forwarded the full stream: the
                            // two modes do identical work.
                            assert_eq!(
                                outcome.stats().total_reactions(),
                                (components * STREAM_LEN) as u64
                            );
                            outcome.stats().total_reactions()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_derived_sizing(c: &mut Criterion) {
    let stream: Vec<Value> = boolean_flow(STREAM_LEN, 0xD1F)
        .into_iter()
        .map(Value::Bool)
        .collect();
    let mut group = c.benchmark_group("e13_derived_vs_tuned");
    group.sample_size(10);
    for components in [2usize, 4, 8] {
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        // Derive once, outside the measurement: the BDD work is a
        // per-design compile-time cost, not a per-run one.
        let analysis = design.capacity_analysis().expect("verified design");
        assert!(analysis.is_fully_bounded(), "{analysis}");
        type Sizing = Box<dyn Fn(&mut gals_rt::Deployment)>;
        let sizings: [(&str, Sizing); 3] = [
            ("derived", {
                let analysis = analysis.clone();
                Box::new(move |d: &mut gals_rt::Deployment| {
                    d.set_capacity_analysis(&analysis);
                })
            }),
            (
                "tuned1",
                Box::new(|d: &mut gals_rt::Deployment| {
                    d.set_capacity(1).expect("nonzero");
                }),
            ),
            (
                "tuned16",
                Box::new(|d: &mut gals_rt::Deployment| {
                    d.set_capacity(16).expect("nonzero");
                }),
            ),
        ];
        for (label, sizing) in &sizings {
            group.bench_with_input(
                BenchmarkId::new(format!("n{components}"), label),
                label,
                |bencher, _| {
                    bencher.iter(|| {
                        let mut deployment = design.deploy().expect("the pipeline is verified");
                        sizing(&mut deployment);
                        deployment.feed("p0", stream.iter().copied());
                        let outcome = deployment.run().expect("the deployment runs");
                        outcome.stats().total_reactions()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The bare step-loop workload for the machine-kind comparison: the
/// chain-of-pairs composition generated as **one** step program, plus the
/// environment feeds satisfying its `[not a] = [b]` couplings.
fn chain_machine_workload(
    pairs: usize,
    tokens: usize,
) -> (codegen::ir::StepProgram, Vec<(Name, Vec<Value>)>) {
    let component = Component::new(chain_as_single_process(pairs).expect("the chain composes"))
        .expect("the chain analyzes");
    let program = component.step_program();
    let pattern = boolean_flow(tokens, 0xC4A1 + pairs as u64);
    let a: Vec<Value> = pattern.iter().map(|&b| Value::Bool(b)).collect();
    let b: Vec<Value> = pattern.iter().map(|&b| Value::Bool(!b)).collect();
    let mut feeds = Vec::new();
    for pair in 0..pairs {
        feeds.push((Name::from(format!("a{pair}").as_str()), a.clone()));
        feeds.push((Name::from(format!("b{pair}").as_str()), b.clone()));
    }
    (program, feeds)
}

/// Drives one machine of the given kind over the whole feed and returns
/// the number of reactions it completed.
fn step_loop(
    kind: MachineKind,
    program: &codegen::ir::StepProgram,
    feeds: &[(Name, Vec<Value>)],
) -> u64 {
    let mut machine = codegen::machine_of(kind, program.clone());
    for (signal, values) in feeds {
        for value in values {
            machine.feed_value(signal.as_str(), *value);
        }
    }
    let mut steps = 0u64;
    while machine.try_step().is_ok() {
        steps += 1;
    }
    steps
}

fn bench_machine_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_machine_kind");
    group.sample_size(10);
    for pairs in [1usize, 4, 8] {
        let (program, feeds) = chain_machine_workload(pairs, STREAM_LEN);
        for (label, kind) in [
            ("interpreted", MachineKind::Interpreted),
            ("compiled", MachineKind::Compiled),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("chain{pairs}"), label),
                &kind,
                |bencher, &kind| {
                    bencher.iter(|| {
                        let steps = step_loop(kind, &program, &feeds);
                        assert!(steps > 0);
                        steps
                    })
                },
            );
        }
    }
    group.finish();
}

/// One row of the machine-readable report: a named configuration, its
/// topology, and the measured (plus, for verified designs, predicted)
/// throughput.
struct ReportRow {
    name: String,
    topology: String,
    components: usize,
    backend: &'static str,
    mode: &'static str,
    reactions_per_second: f64,
    predicted_reactions_per_input: Option<f64>,
    /// Blocked reads per reaction over the measured (untraced) runs — the
    /// fraction of steps that parked on an empty upstream channel.
    blocked_read_ratio: f64,
    /// Highest instantaneous channel occupancy across all edges, witnessed
    /// by a separate traced run on the ring transport (`null` when no
    /// transport in the row's configuration reports occupancy).
    max_edge_occupancy: Option<usize>,
}

/// Runs one traced probe of the configuration and returns the maximum
/// per-edge occupancy high-water mark, if any transport reported one.
/// Kept separate from the measured runs so the throughput numbers stay
/// untraced.
fn probe_max_occupancy(mut deployment: Deployment, env: &str, stream: &[Value]) -> Option<usize> {
    deployment.set_tracing(true);
    deployment.feed(env, stream.iter().copied());
    let outcome = deployment.run().expect("the deployment runs");
    let trace = outcome.trace().expect("tracing was enabled");
    trace
        .summary()
        .edges
        .iter()
        .filter_map(|edge| edge.high_water)
        .max()
}

/// Measures representative E13 configurations and writes `BENCH_e13.json`
/// at the workspace root — the same numbers the criterion groups print,
/// but in a machine-readable shape (name, topology, reactions/sec) so CI
/// and the throughput-prediction tests can diff runs over time.
fn emit_machine_readable_report(_c: &mut Criterion) {
    let stream: Vec<Value> = boolean_flow(STREAM_LEN, 0xE13)
        .into_iter()
        .map(Value::Bool)
        .collect();
    let mut rows: Vec<ReportRow> = Vec::new();

    // Verified buffer pipelines under derived sizing, both backends.
    for components in [1usize, 2, 4, 8] {
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        let predicted = design
            .performance_prediction()
            .ok()
            .map(|p| p.reactions_per_input());
        for (label, backend) in [("mpsc", Backend::Mpsc), ("ring", Backend::SpscRing)] {
            let mut best = 0.0f64;
            let mut blocked = 0u64;
            let mut reactions = 0u64;
            for _ in 0..3 {
                let mut deployment = design.deploy_derived().expect("the pipeline is verified");
                deployment.set_backend(backend);
                deployment.feed("p0", stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                let stats = outcome.stats();
                blocked += stats.total_blocked_reads();
                reactions += stats.total_reactions();
                if let Some(rps) = stats.reactions_per_second() {
                    best = best.max(rps);
                }
            }
            // Occupancy witness from one traced probe of the same config
            // (only the ring transport reports instantaneous occupancy).
            let mut probe = design.deploy_derived().expect("the pipeline is verified");
            probe.set_backend(backend);
            let max_edge_occupancy = probe_max_occupancy(probe, "p0", &stream);
            rows.push(ReportRow {
                name: format!("pipe{components}/{label}/derived"),
                topology: "buffer-pipeline".into(),
                components,
                backend: label,
                mode: "thread",
                reactions_per_second: best,
                predicted_reactions_per_input: predicted,
                blocked_read_ratio: if reactions == 0 {
                    0.0
                } else {
                    blocked as f64 / reactions as f64
                },
                max_edge_occupancy,
            });
        }
    }

    // The same pipeline with every edge on a cross-process medium from
    // gals-net: the shared-file ring and the wire-protocol Unix socket.
    // The channel windows stay the derived capacity bounds — the paper's
    // sizing result is medium-independent, so only the hand-off cost
    // moves.
    {
        let components = 4usize;
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        let predicted = design
            .performance_prediction()
            .ok()
            .map(|p| p.reactions_per_input());
        type Medium = Box<dyn Fn() -> Arc<dyn gals_rt::Transport>>;
        let media: [(&'static str, Medium); 2] = [
            (
                "shm",
                Box::new(|| Arc::new(ShmTransport::new().expect("a temp dir"))),
            ),
            (
                "uds",
                Box::new(|| Arc::new(NetTransport::new().expect("a temp dir"))),
            ),
        ];
        for (label, medium) in &media {
            let mut best = 0.0f64;
            let mut blocked = 0u64;
            let mut reactions = 0u64;
            for _ in 0..3 {
                let mut deployment = design.deploy_derived().expect("the pipeline is verified");
                deployment.set_transport(medium());
                deployment.feed("p0", stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                let stats = outcome.stats();
                blocked += stats.total_blocked_reads();
                reactions += stats.total_reactions();
                if let Some(rps) = stats.reactions_per_second() {
                    best = best.max(rps);
                }
            }
            let mut probe = design.deploy_derived().expect("the pipeline is verified");
            probe.set_transport(medium());
            let max_edge_occupancy = probe_max_occupancy(probe, "p0", &stream);
            rows.push(ReportRow {
                name: format!("pipe{components}/{label}/derived"),
                topology: "buffer-pipeline".into(),
                components,
                backend: label,
                mode: "thread",
                reactions_per_second: best,
                predicted_reactions_per_input: predicted,
                blocked_read_ratio: if reactions == 0 {
                    0.0
                } else {
                    blocked as f64 / reactions as f64
                },
                max_edge_occupancy,
            });
        }

        // A genuinely partitioned run: the same pipeline split
        // `[0,0,1,1]`, its halves running concurrently and exchanging the
        // cut signal over a real socket via the partition runner — the
        // cross-process row.  Throughput is merged reactions over the
        // slowest partition's wall clock.
        let partition_plan = plan(&design, &[0, 0, 1, 1]).expect("the pipeline partitions");
        let mut feeds: BTreeMap<Name, Vec<Value>> = BTreeMap::new();
        feeds.insert(Name::from("p0"), stream.clone());
        let dir = std::env::temp_dir().join(format!("gals-e13-partitioned-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("a temp dir");
        let mut best = 0.0f64;
        for _ in 0..3 {
            let reports: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..partition_plan.processes())
                    .map(|process| {
                        let (design, partition_plan, feeds, dir) =
                            (&design, &partition_plan, &feeds, &dir);
                        scope.spawn(move || {
                            let links = UdsLinks::new(dir);
                            run_partition(design, partition_plan, process, &links, feeds)
                                .expect("the partition runs")
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition thread"))
                    .collect()
            });
            let merged = MergedStats::merge(reports).expect("the cut flows agree");
            let elapsed = merged
                .reports
                .iter()
                .map(|r| r.elapsed_micros)
                .max()
                .unwrap_or(0)
                .max(1);
            best = best.max(merged.total_reactions() as f64 * 1_000_000.0 / elapsed as f64);
        }
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(ReportRow {
            name: format!("pipe{components}/partitioned/uds"),
            topology: "buffer-pipeline/2-partitions".into(),
            components,
            backend: "uds",
            mode: "partitioned",
            reactions_per_second: best,
            predicted_reactions_per_input: predicted,
            // Partition reports carry per-component reaction counts but no
            // blocked-read counters; the ratio is not observable here.
            blocked_read_ratio: 0.0,
            max_edge_occupancy: None,
        });
    }

    // Interpreter vs compiled step machines — the bare step loop first
    // (pure per-reaction machine cost: no threads, no channels), then the
    // deployed pipeline where hand-off costs dilute the difference.  The
    // bare rows are where the compile-don't-interpret payoff shows.
    for pairs in [1usize, 4, 8] {
        let (program, feeds) = chain_machine_workload(pairs, 4 * STREAM_LEN);
        for (label, kind) in [
            ("interpreted", MachineKind::Interpreted),
            ("compiled", MachineKind::Compiled),
        ] {
            let mut best = 0.0f64;
            for _ in 0..3 {
                let start = std::time::Instant::now();
                let steps = step_loop(kind, &program, &feeds);
                let elapsed = start.elapsed().as_secs_f64().max(1e-9);
                assert!(steps > 0);
                best = best.max(steps as f64 / elapsed);
            }
            rows.push(ReportRow {
                name: format!("step/chain{pairs}/{label}"),
                topology: "single-machine".into(),
                components: 1,
                backend: "none",
                mode: label,
                reactions_per_second: best,
                predicted_reactions_per_input: None,
                blocked_read_ratio: 0.0,
                max_edge_occupancy: None,
            });
        }
    }
    {
        let components = 4usize;
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        let predicted = design
            .performance_prediction()
            .ok()
            .map(|p| p.reactions_per_input());
        for (label, kind) in [
            ("interpreted", MachineKind::Interpreted),
            ("compiled", MachineKind::Compiled),
        ] {
            let mut best = 0.0f64;
            let mut blocked = 0u64;
            let mut reactions = 0u64;
            for _ in 0..3 {
                let mut deployment = design
                    .deploy_derived_with(kind)
                    .expect("the pipeline is verified");
                deployment.set_backend(Backend::SpscRing);
                deployment.feed("p0", stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                let stats = outcome.stats();
                blocked += stats.total_blocked_reads();
                reactions += stats.total_reactions();
                if let Some(rps) = stats.reactions_per_second() {
                    best = best.max(rps);
                }
            }
            rows.push(ReportRow {
                name: format!("pipe{components}/ring/derived/{label}"),
                topology: "buffer-pipeline".into(),
                components,
                backend: "ring",
                mode: label,
                reactions_per_second: best,
                predicted_reactions_per_input: predicted,
                blocked_read_ratio: if reactions == 0 {
                    0.0
                } else {
                    blocked as f64 / reactions as f64
                },
                max_edge_occupancy: None,
            });
        }
    }

    // Multi-tenant serving: many copies of the verified 2-stage pipeline
    // admitted to one shared `gals-serve` pool, each with its own
    // streams, stats and conformance — the aggregate throughput of the
    // serving layer.  Contrast with the `pipeN/...` rows above, where a
    // dedicated deployment owns all its threads: here 64 tenants share
    // `available_parallelism` workers and admission has priced every one
    // of them from the clock calculus beforehand.
    {
        use gals_serve::{Server, ServerOptions};
        let components = 2usize;
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        let predicted = design
            .performance_prediction()
            .ok()
            .map(|p| p.reactions_per_input());
        for tenants in [8usize, 64] {
            let mut best = 0.0f64;
            let mut blocked = 0u64;
            let mut reactions_sum = 0u64;
            for _ in 0..3 {
                let server = Server::start(ServerOptions::per_core()).expect("the pool starts");
                let start = std::time::Instant::now();
                let mut handles: Vec<_> = (0..tenants)
                    .map(|t| server.admit(format!("t{t}"), &design).expect("fits"))
                    .collect();
                // Round-robin chunked ingress with interleaved egress
                // polling — the serving usage pattern.  Feeding a whole
                // stream per tenant without consuming outputs would wedge
                // once a stream outgrows ingress + in-flight + egress
                // capacity: the client side of the backpressure loop is
                // part of the protocol, not an optimization.
                const CHUNK: usize = 32;
                for chunk in stream.chunks(CHUNK) {
                    for handle in handles.iter_mut() {
                        handle
                            .feed("p0", chunk.iter().copied())
                            .expect("p0 is an environment input");
                        let _ = handle.poll_outputs();
                    }
                }
                let mut reactions = 0u64;
                for handle in handles {
                    let outcome = handle
                        .finish(std::time::Duration::from_secs(60))
                        .expect("every tenant drains");
                    let stats = outcome.stats();
                    blocked += stats.total_blocked_reads();
                    reactions += stats.total_reactions();
                }
                let elapsed = start.elapsed().as_secs_f64().max(1e-9);
                reactions_sum += reactions;
                best = best.max(reactions as f64 / elapsed);
            }
            rows.push(ReportRow {
                name: format!("serve{tenants}x/pipe{components}/shared-pool"),
                topology: "buffer-pipeline/multi-tenant".into(),
                components: tenants * components,
                backend: "auto",
                mode: "serve",
                // Per environment token *per tenant*: each admitted
                // pipeline keeps its own prediction, which is what the
                // server's admission priced.
                predicted_reactions_per_input: predicted,
                reactions_per_second: best,
                blocked_read_ratio: if reactions_sum == 0 {
                    0.0
                } else {
                    blocked as f64 / reactions_sum as f64
                },
                max_edge_occupancy: None,
            });
        }
    }

    // Relay shapes under the work-stealing pool.
    for (shape, build, env) in [
        ("pipeline", pipeline_shape as fn(usize) -> Deployment, "s0"),
        ("fan", fan_shape as fn(usize) -> Deployment, "in"),
    ] {
        for components in [8usize, 64] {
            let mut best = 0.0f64;
            let mut blocked = 0u64;
            let mut reactions = 0u64;
            for _ in 0..3 {
                let mut deployment = build(components);
                deployment
                    .set_execution_mode(ExecutionMode::pool_per_core())
                    .expect("valid mode");
                deployment.set_capacity(16).expect("nonzero");
                deployment.feed(env, stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                let stats = outcome.stats();
                blocked += stats.total_blocked_reads();
                reactions += stats.total_reactions();
                if let Some(rps) = stats.reactions_per_second() {
                    best = best.max(rps);
                }
            }
            // The occupancy probe pins the ring transport: the default
            // mpsc channel cannot witness instantaneous occupancy.
            let mut probe = build(components);
            probe
                .set_execution_mode(ExecutionMode::pool_per_core())
                .expect("valid mode");
            probe.set_capacity(16).expect("nonzero");
            probe.set_backend(Backend::SpscRing);
            let max_edge_occupancy = probe_max_occupancy(probe, env, &stream);
            rows.push(ReportRow {
                name: format!("{shape}{components}/pool"),
                topology: format!("relay-{shape}"),
                components,
                backend: "auto",
                mode: "pool",
                reactions_per_second: best,
                // Relay machines sit outside the clock calculus, but their
                // rate is analytic all the same: every relay (and the fan's
                // collector) performs exactly one reaction per environment
                // token — `bench_schedulers` asserts exactly that total.
                predicted_reactions_per_input: Some(components as f64),
                blocked_read_ratio: if reactions == 0 {
                    0.0
                } else {
                    blocked as f64 / reactions as f64
                },
                max_edge_occupancy,
            });
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"e13_gals_throughput\",\n");
    json.push_str(&format!("  \"stream_len\": {STREAM_LEN},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let predicted = row
            .predicted_reactions_per_input
            .map_or("null".into(), |p| format!("{p:.2}"));
        let occupancy = row
            .max_edge_occupancy
            .map_or("null".into(), |o| o.to_string());
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"topology\": \"{}\", \"components\": {}, \
             \"backend\": \"{}\", \"mode\": \"{}\", \"reactions_per_second\": {:.0}, \
             \"predicted_reactions_per_input\": {}, \"blocked_read_ratio\": {:.4}, \
             \"max_edge_occupancy\": {}}}{}\n",
            row.name,
            row.topology,
            row.components,
            row.backend,
            row.mode,
            row.reactions_per_second,
            predicted,
            row.blocked_read_ratio,
            occupancy,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e13.json");
    std::fs::write(path, &json).expect("writable workspace root");
    println!("wrote {} ({} rows)", path, rows.len());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_backends, bench_schedulers, bench_derived_sizing,
        bench_machine_kinds, emit_machine_readable_report
}
criterion_main!(benches);
