//! E13 — GALS deployment throughput: reactions/sec of a deployed buffer
//! pipeline at 1, 2, 4 and 8 components, channel capacities 1, 16 and 256,
//! and both channel backends (bounded mpsc vs lock-free SPSC ring).  The
//! scaling story of the multi-threaded runtime: deeper pipelines add
//! threads, wider channels trade memory for fewer blocking hand-offs, and
//! the ring removes the per-token lock from the hand-off itself — most
//! visible at capacity 1, where every token crosses a full rendez-vous.

use bench::boolean_flow;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gals_rt::Backend;
use isochron::library;
use signal_lang::Value;

const STREAM_LEN: usize = 256;

fn bench(c: &mut Criterion) {
    let stream: Vec<Value> = boolean_flow(STREAM_LEN, 0xE13)
        .into_iter()
        .map(Value::Bool)
        .collect();
    let mut group = c.benchmark_group("e13_gals_throughput");
    group.sample_size(10);
    for components in [1usize, 2, 4, 8] {
        let design = library::buffer_pipeline_design(components).expect("the pipeline composes");
        assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
        for (label, backend) in [("mpsc", Backend::Mpsc), ("ring", Backend::SpscRing)] {
            for capacity in [1usize, 16, 256] {
                group.bench_with_input(
                    BenchmarkId::new(format!("n{components}/{label}"), capacity),
                    &capacity,
                    |bencher, &capacity| {
                        bencher.iter(|| {
                            let mut deployment = design.deploy().expect("the pipeline is verified");
                            deployment.set_backend(backend);
                            deployment.set_capacity(capacity).expect("nonzero");
                            deployment.feed("p0", stream.iter().copied());
                            let outcome = deployment.run().expect("the deployment runs");
                            outcome.stats().total_reactions()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
