//! E1 — Section 1 example: the filter is endochronous.
//!
//! Measures (a) the static endochrony check (clock calculus) and (b) the
//! execution of the filter on random boolean flows, both through the
//! reference interpreter and through the generated code.

use bench::boolean_flow;
use clocks::ClockAnalysis;
use codegen::{seq, SequentialRuntime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use signal_lang::stdlib;
use sim::{Drive, Simulator};

fn bench(c: &mut Criterion) {
    let kernel = stdlib::filter().normalize().unwrap();
    let mut group = c.benchmark_group("e1_filter_endochrony");
    group.sample_size(20);

    group.bench_function("static_check", |b| {
        b.iter(|| {
            let analysis = ClockAnalysis::analyze(&kernel);
            assert!(analysis.is_endochronous());
            analysis.roots().len()
        })
    });

    for len in [64usize, 512] {
        let flow = boolean_flow(len, 1);
        group.bench_with_input(BenchmarkId::new("interpreter", len), &flow, |b, flow| {
            b.iter(|| {
                let mut sim = Simulator::new(&kernel);
                let mut changes = 0usize;
                for v in flow {
                    let r = sim
                        .step(&[("y", Drive::Present((*v).into()))])
                        .expect("steps");
                    if r.is_present("x") {
                        changes += 1;
                    }
                }
                changes
            })
        });
        let program = seq::generate(&ClockAnalysis::analyze(&kernel));
        group.bench_with_input(BenchmarkId::new("generated_code", len), &flow, |b, flow| {
            b.iter(|| {
                let mut rt = SequentialRuntime::new(program.clone());
                rt.feed("y", flow.iter().copied());
                rt.run(flow.len());
                rt.output("x").len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
