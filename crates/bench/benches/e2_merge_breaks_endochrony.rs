//! E2 — Section 1 example: composing the filter with the merge breaks
//! endochrony while remaining compilable.  Measures the full clock analysis
//! of each component and of the composition.

use clocks::ClockAnalysis;
use criterion::{criterion_group, criterion_main, Criterion};
use signal_lang::stdlib;

fn bench(c: &mut Criterion) {
    let filter = stdlib::filter().normalize().unwrap();
    let merge = stdlib::merge().normalize().unwrap();
    let composed = stdlib::filter_merge().normalize().unwrap();
    let mut group = c.benchmark_group("e2_merge_breaks_endochrony");
    group.sample_size(20);

    group.bench_function("analyze_filter", |b| {
        b.iter(|| ClockAnalysis::analyze(&filter).is_endochronous())
    });
    group.bench_function("analyze_merge", |b| {
        b.iter(|| ClockAnalysis::analyze(&merge).is_endochronous())
    });
    group.bench_function("analyze_composition", |b| {
        b.iter(|| {
            let a = ClockAnalysis::analyze(&composed);
            assert!(a.is_compilable());
            assert!(!a.is_endochronous());
            a.roots().len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
