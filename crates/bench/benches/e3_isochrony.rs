//! E3 — Section 1 example: the asynchronous composition of the filter and
//! the merge is isochronous.  Measures the asynchronous network execution
//! under different interleavings and checks the flows stay identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moc::Name;
use signal_lang::stdlib;
use sim::AsyncNetwork;

fn run(seed: u64, len: usize) -> Vec<moc::Value> {
    let filter = stdlib::filter().normalize().unwrap();
    let merge = stdlib::merge()
        .instantiate("m", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")])
        .normalize()
        .unwrap();
    let mut net = AsyncNetwork::new();
    net.add_component("filter", &filter, Vec::<Name>::new());
    net.add_component("merge", &merge, Vec::<Name>::new());
    let y: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
    let c: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
    let z: Vec<bool> = (0..len / 2).map(|i| i % 2 == 0).collect();
    net.feed_paced("y", y);
    net.feed_paced("c", c);
    net.feed("z", z);
    net.run_random(len * 8, seed);
    net.flow("d")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_isochrony");
    group.sample_size(15);
    for len in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("async_execution", len), &len, |b, &len| {
            b.iter(|| run(7, len).len())
        });
        // The observable flow is independent of the interleaving.
        let reference = run(1, len);
        for seed in [13u64, 77] {
            assert_eq!(reference, run(seed, len), "seed {seed} changed the flows");
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
