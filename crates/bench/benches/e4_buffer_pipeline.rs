//! E4 — Section 3: the buffer example through the whole tool chain —
//! inference, hierarchy, disjunctive forms, scheduling, code generation and
//! execution of the generated transition function.

use bench::boolean_flow;
use clocks::ClockAnalysis;
use codegen::{emit, seq, SequentialRuntime};
use criterion::{criterion_group, criterion_main, Criterion};
use signal_lang::stdlib;

fn bench(c: &mut Criterion) {
    let kernel = stdlib::buffer().normalize().unwrap();
    let mut group = c.benchmark_group("e4_buffer_pipeline");
    group.sample_size(20);

    group.bench_function("clock_analysis", |b| {
        b.iter(|| {
            let a = ClockAnalysis::analyze(&kernel);
            assert!(a.is_endochronous());
            a.hierarchy().class_count()
        })
    });
    group.bench_function("code_generation", |b| {
        let analysis = ClockAnalysis::analyze(&kernel);
        b.iter(|| {
            let program = seq::generate(&analysis);
            emit::emit_c(&program).len()
        })
    });
    group.bench_function("generated_execution_1k", |b| {
        let program = seq::generate(&ClockAnalysis::analyze(&kernel));
        let flow = boolean_flow(512, 4);
        b.iter(|| {
            let mut rt = SequentialRuntime::new(program.clone());
            rt.feed("y", flow.iter().copied());
            rt.run(1024);
            rt.output("x").len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
