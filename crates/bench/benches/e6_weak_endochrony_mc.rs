//! E6 — Section 4.1: model checking weak endochrony (the diamond
//! properties and the root invariants) by explicit state-space exploration.
//! This is the *expensive* side of the trade-off the paper sets out to
//! balance.

use analysis::{RootInvariants, WeakEndochronyReport};
use criterion::{criterion_group, criterion_main, Criterion};
use signal_lang::stdlib;

fn bench(c: &mut Criterion) {
    let main = stdlib::producer_consumer().normalize().unwrap();
    let filter_merge = stdlib::filter_merge().normalize().unwrap();
    let mut group = c.benchmark_group("e6_weak_endochrony_mc");
    group.sample_size(10);

    group.bench_function("producer_consumer_diamonds", |b| {
        b.iter(|| {
            let report = WeakEndochronyReport::check(&main, 50_000);
            assert!(report.is_weakly_endochronous());
            report.state_count()
        })
    });
    group.bench_function("producer_consumer_invariants", |b| {
        b.iter(|| {
            let invariants = RootInvariants::check(&main, 50_000);
            assert!(invariants.all_hold());
            invariants.reports().len()
        })
    });
    group.bench_function("filter_merge_diamonds", |b| {
        b.iter(|| {
            let report = WeakEndochronyReport::check(&filter_merge, 50_000);
            assert!(report.is_weakly_endochronous());
            report.transition_count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
