//! E7 — Section 4.2: the loosely time-triggered architecture.  Measures the
//! static analysis of the four-component design and the asynchronous
//! simulation of the architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use isochron::library;
use moc::Name;
use sim::AsyncNetwork;

fn simulate(rounds: usize) -> usize {
    let design = library::ltta_design().expect("ltta design");
    let mut net = AsyncNetwork::new();
    for component in design.components() {
        let activation: Vec<Name> = component
            .kernel()
            .locals()
            .filter(|n| n.as_str().ends_with("_t"))
            .cloned()
            .collect();
        net.add_component(component.name(), component.kernel(), activation);
    }
    let values: Vec<i64> = (1..=rounds as i64).collect();
    net.feed("xw", values);
    net.feed_paced("cw", vec![true; rounds * 4]);
    net.feed_paced("cr", vec![true; rounds * 4]);
    net.run_round_robin(rounds * 16);
    net.flow("xr").len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ltta");
    group.sample_size(10);
    group.bench_function("static_analysis", |b| {
        b.iter(|| {
            let design = library::ltta_design().expect("ltta design");
            let v = design.verdict();
            assert!(v.weakly_hierarchic);
            assert_eq!(v.roots, 4);
            v.roots
        })
    });
    group.bench_function("async_simulation_32", |b| b.iter(|| simulate(32)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
