//! E8 — Section 5: the two code-generation schemes for the producer/consumer
//! pair.  The "current" Polychrony scheme adds master clocks to the
//! interface and runs the monolithic composition (modelled here by the
//! reference interpreter of the composition), whereas the contributed
//! scheme compiles the components separately and schedules them with a
//! synthesized controller.

use bench::paired_streams;
use clocks::ClockAnalysis;
use codegen::controller::{ControlledPair, SharedLink};
use codegen::seq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moc::Value;
use signal_lang::stdlib;
use sim::{Drive, Simulator};

fn bench(c: &mut Criterion) {
    let producer = stdlib::producer().normalize().unwrap();
    let consumer = stdlib::consumer().normalize().unwrap();
    let composition = stdlib::producer_consumer().normalize().unwrap();
    let producer_program = seq::generate(&ClockAnalysis::analyze(&producer));
    let consumer_program = seq::generate(&ClockAnalysis::analyze(&consumer));

    let mut group = c.benchmark_group("e8_codegen_schemes");
    group.sample_size(15);
    for len in [64usize, 256] {
        let (a, b) = paired_streams(len);
        group.bench_with_input(
            BenchmarkId::new("monolithic_master_clocks", len),
            &len,
            |bencher, _| {
                bencher.iter(|| {
                    let mut sim = Simulator::new(&composition);
                    let mut count = 0usize;
                    for i in 0..len {
                        let drives = [
                            ("a", Drive::Present(Value::Bool(a[i]))),
                            ("b", Drive::Present(Value::Bool(b[i]))),
                        ];
                        if sim.step(&drives).is_ok() {
                            count += 1;
                        }
                    }
                    count
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("separate_compilation_controller", len),
            &len,
            |bencher, _| {
                bencher.iter(|| {
                    let mut pair = ControlledPair::new(
                        producer_program.clone(),
                        consumer_program.clone(),
                        SharedLink::producer_consumer(),
                    );
                    pair.feed_left(a.iter().copied());
                    pair.feed_right(b.iter().copied());
                    pair.run(4 * len);
                    pair.rendezvous()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
