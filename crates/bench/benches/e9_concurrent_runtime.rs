//! E9 — Section 5: concurrent code generation.  The producer and the
//! consumer run on separate threads and exchange the shared variable
//! through a one-place rendez-vous; the benchmark compares this against the
//! sequential controlled execution on the same streams.

use bench::paired_streams;
use clocks::ClockAnalysis;
use codegen::controller::{ControlledPair, SharedLink};
use codegen::{concurrent, seq};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use signal_lang::stdlib;

fn bench(c: &mut Criterion) {
    let producer = seq::generate(&ClockAnalysis::analyze(
        &stdlib::producer().normalize().unwrap(),
    ));
    let consumer = seq::generate(&ClockAnalysis::analyze(
        &stdlib::consumer().normalize().unwrap(),
    ));
    let mut group = c.benchmark_group("e9_concurrent_runtime");
    group.sample_size(10);
    for len in [64usize, 256] {
        let (a, b) = paired_streams(len);
        group.bench_with_input(BenchmarkId::new("sequential", len), &len, |bencher, _| {
            bencher.iter(|| {
                let mut pair = ControlledPair::new(
                    producer.clone(),
                    consumer.clone(),
                    SharedLink::producer_consumer(),
                );
                pair.feed_left(a.iter().copied());
                pair.feed_right(b.iter().copied());
                pair.run(4 * len);
                pair.right_output("v").len()
            })
        });
        group.bench_with_input(BenchmarkId::new("two_threads", len), &len, |bencher, _| {
            bencher.iter(|| {
                let outcome =
                    concurrent::run_producer_consumer(producer.clone(), consumer.clone(), &a, &b);
                outcome.v.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
