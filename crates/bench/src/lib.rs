//! Shared workload helpers for the benchmark harness.

use signal_lang::ProcessDef;

/// The boolean activation streams used by the producer/consumer benchmarks:
/// every false of `a` is paired with a true of `b`.
pub fn paired_streams(len: usize) -> (Vec<bool>, Vec<bool>) {
    let a: Vec<bool> = (0..len).map(|i| i % 3 != 1).collect();
    let b: Vec<bool> = a.iter().map(|v| !v).collect();
    (a, b)
}

/// A pseudo-random boolean flow (deterministic, seedable without rand).
pub fn boolean_flow(len: usize, seed: u64) -> Vec<bool> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        })
        .collect()
}

/// All the paper processes, re-exported for convenience.
pub fn paper_processes() -> Vec<ProcessDef> {
    signal_lang::stdlib::all_paper_processes()
}
