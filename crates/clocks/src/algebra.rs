//! The Boolean algebra in which timing relations are interpreted.
//!
//! Every signal `x` of a process contributes two propositional variables:
//! `p(x)` — "x is present at the instant under consideration" — and `v(x)` —
//! "x is present and carries the value true" (only meaningful for boolean
//! signals).  Clocks are encoded as:
//!
//! * `^x  ↦  p(x)`
//! * `[x]  ↦  p(x) ∧ v(x)`
//! * `[not x]  ↦  p(x) ∧ ¬v(x)`
//!
//! so the axioms `^x = [x] ∨ [not x]` and `[x] ∧ [not x] = 0` of the paper
//! hold by construction.  The relation `R` of a process is the conjunction
//! of the encodings of its clock equalities and inclusions, together with
//! instantaneous boolean value facts extracted from the kernel equations
//! (e.g. `t := not s` contributes `p(t) ⇒ (v(t) ⇔ ¬v(s))`), which gives the
//! algebra enough precision to derive equivalences such as
//! `^r = ^x ∨ ^y = [t] ∨ [not t] = ^t` in the buffer example.
//!
//! `R ⊨ S` (Section 3.2) is then BDD entailment.

use std::collections::BTreeMap;

use signal_lang::{Atom, KernelEq, KernelProcess, Name, PrimOp, Value};

use crate::bdd::{Bdd, NodeRef, Var};
use crate::clock::{Clock, ClockExpr};
use crate::relation::TimingRelations;

/// The strategy used to order BDD variables.
///
/// The default, [`VariableOrder::Grouped`], keeps the variables of
/// independent sub-processes contiguous so that their relations conjoin
/// without blowing up the BDD.  [`VariableOrder::NameOrder`] is the naive
/// lexicographic ordering; it is kept for the ordering ablation (benchmark
/// E12), where it exhibits the classic exponential interleaving pathology on
/// compositions of independent components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VariableOrder {
    /// Signals grouped by connected component of the co-occurrence relation,
    /// components ordered by first occurrence (the default).
    #[default]
    Grouped,
    /// Plain lexicographic signal-name order.
    NameOrder,
}

/// The BDD-backed interpretation of a process' timing relations.
#[derive(Debug)]
pub struct ClockAlgebra {
    bdd: Bdd,
    presence: BTreeMap<Name, Var>,
    value: BTreeMap<Name, Var>,
    relation: NodeRef,
}

impl ClockAlgebra {
    /// Builds the algebra of a kernel process from its inferred relations,
    /// using the default ([`VariableOrder::Grouped`]) variable ordering.
    pub fn new(process: &KernelProcess, relations: &TimingRelations) -> Self {
        ClockAlgebra::with_order(process, relations, VariableOrder::Grouped)
    }

    /// Builds the algebra with an explicit BDD variable ordering strategy.
    pub fn with_order(
        process: &KernelProcess,
        relations: &TimingRelations,
        order: VariableOrder,
    ) -> Self {
        let bdd = Bdd::new();
        let mut presence = BTreeMap::new();
        let mut value = BTreeMap::new();
        // Interleave presence and value variables signal by signal.  With
        // the grouped ordering, signals are grouped by the connected
        // component of the "appears in the same equation or constraint"
        // relation, components ordered by first occurrence: signals of
        // independent sub-processes then occupy contiguous variable ranges,
        // so their relations conjoin without blowing up the BDD — which is
        // what keeps the static criterion cheap on large compositions.
        let ordered = match order {
            VariableOrder::Grouped => variable_order(process),
            VariableOrder::NameOrder => process.signal_set().into_iter().collect(),
        };
        for (i, name) in ordered.into_iter().enumerate() {
            presence.insert(name.clone(), Var((2 * i) as u32));
            value.insert(name, Var((2 * i + 1) as u32));
        }
        let mut algebra = ClockAlgebra {
            bdd,
            presence,
            value,
            relation: NodeRef::TRUE,
        };
        let mut relation = algebra.bdd.one();

        // Clock equalities and inclusions.
        for (l, r) in &relations.equalities {
            let el = algebra.encode_expr(l);
            let er = algebra.encode_expr(r);
            let eq = algebra.bdd.iff(el, er);
            relation = algebra.bdd.and(relation, eq);
        }
        for (small, large) in &relations.inclusions {
            let es = algebra.encode_expr(small);
            let el = algebra.encode_expr(large);
            let imp = algebra.bdd.implies(es, el);
            relation = algebra.bdd.and(relation, imp);
        }

        // Instantaneous boolean value facts from the kernel equations.
        let booleans = process.boolean_signals();
        for eq in process.equations() {
            if let Some(fact) = algebra.value_fact(eq, &booleans) {
                relation = algebra.bdd.and(relation, fact);
            }
        }

        algebra.relation = relation;
        algebra
    }

    /// The relation `R` of the process as a BDD.
    pub fn relation(&self) -> NodeRef {
        self.relation
    }

    /// The number of BDD nodes allocated while building and querying the
    /// relation — the size metric compared by the variable-ordering ablation.
    pub fn bdd_node_count(&self) -> usize {
        self.bdd.node_count()
    }

    /// Grants access to the underlying BDD manager (used by the analyses to
    /// build additional constraints on top of `R`).
    pub fn bdd_mut(&mut self) -> &mut Bdd {
        &mut self.bdd
    }

    /// The presence variable `p(x)` of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal does not belong to the process.
    pub fn presence_var(&self, name: &str) -> Var {
        *self
            .presence
            .get(name)
            .unwrap_or_else(|| panic!("unknown signal {name}"))
    }

    /// The value variable `v(x)` of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal does not belong to the process.
    pub fn value_var(&self, name: &str) -> Var {
        *self
            .value
            .get(name)
            .unwrap_or_else(|| panic!("unknown signal {name}"))
    }

    /// The signals known to the algebra, in variable order.
    pub fn signals(&self) -> impl Iterator<Item = &Name> + '_ {
        self.presence.keys()
    }

    /// Returns `true` when the signal belongs to the process the algebra
    /// was built from (encoding a clock of an unknown signal panics).
    pub fn has_signal(&self, name: &str) -> bool {
        self.presence.contains_key(name)
    }

    /// Encodes an atomic clock.
    pub fn encode_clock(&mut self, clock: &Clock) -> NodeRef {
        match clock {
            Clock::Tick(n) => {
                let p = self.presence_var(n.as_str());
                self.bdd.var(p)
            }
            Clock::True(n) => {
                let p = self.presence_var(n.as_str());
                let v = self.value_var(n.as_str());
                let pv = self.bdd.var(p);
                let vv = self.bdd.var(v);
                self.bdd.and(pv, vv)
            }
            Clock::False(n) => {
                let p = self.presence_var(n.as_str());
                let v = self.value_var(n.as_str());
                let pv = self.bdd.var(p);
                let vv = self.bdd.nvar(v);
                self.bdd.and(pv, vv)
            }
        }
    }

    /// Encodes a clock expression.
    pub fn encode_expr(&mut self, expr: &ClockExpr) -> NodeRef {
        match expr {
            ClockExpr::Zero => self.bdd.zero(),
            ClockExpr::Atom(c) => self.encode_clock(c),
            ClockExpr::And(a, b) => {
                let ea = self.encode_expr(a);
                let eb = self.encode_expr(b);
                self.bdd.and(ea, eb)
            }
            ClockExpr::Or(a, b) => {
                let ea = self.encode_expr(a);
                let eb = self.encode_expr(b);
                self.bdd.or(ea, eb)
            }
            ClockExpr::Diff(a, b) => {
                let ea = self.encode_expr(a);
                let eb = self.encode_expr(b);
                self.bdd.diff(ea, eb)
            }
        }
    }

    /// `R ⊨ f`: does the relation of the process entail the formula `f`?
    pub fn entails(&mut self, f: NodeRef) -> bool {
        let r = self.relation;
        self.bdd.entails(r, f)
    }

    /// Are two clock expressions equal under `R`?
    pub fn clocks_equal(&mut self, a: &ClockExpr, b: &ClockExpr) -> bool {
        let ea = self.encode_expr(a);
        let eb = self.encode_expr(b);
        let eq = self.bdd.iff(ea, eb);
        self.entails(eq)
    }

    /// Is `a ⊆ b` (every instant of `a` is an instant of `b`) under `R`?
    pub fn clock_included(&mut self, a: &ClockExpr, b: &ClockExpr) -> bool {
        let ea = self.encode_expr(a);
        let eb = self.encode_expr(b);
        let imp = self.bdd.implies(ea, eb);
        self.entails(imp)
    }

    /// Is the clock expression empty (never present) under `R`?
    pub fn clock_is_null(&mut self, a: &ClockExpr) -> bool {
        let ea = self.encode_expr(a);
        let na = self.bdd.not(ea);
        self.entails(na)
    }

    /// Is the relation itself satisfiable?  An unsatisfiable relation means
    /// the process admits no reaction at all (not even the silent one), which
    /// reveals contradictory clock constraints.
    pub fn is_consistent(&self) -> bool {
        !self.bdd.is_false(self.relation)
    }

    fn atom_value(&mut self, atom: &Atom) -> Option<NodeRef> {
        match atom {
            Atom::Const(Value::Bool(true)) => Some(self.bdd.one()),
            Atom::Const(Value::Bool(false)) => Some(self.bdd.zero()),
            Atom::Const(Value::Int(_)) => None,
            Atom::Var(n) => {
                let v = self.value_var(n.as_str());
                Some(self.bdd.var(v))
            }
        }
    }

    /// The instantaneous value fact contributed by a kernel equation, when
    /// the defined signal is boolean.
    fn value_fact(
        &mut self,
        eq: &KernelEq,
        booleans: &std::collections::BTreeSet<Name>,
    ) -> Option<NodeRef> {
        let out = eq.defined();
        if !booleans.contains(out) {
            return None;
        }
        // All variable operands must be boolean for the fact to make sense.
        let operands_boolean = eq.reads().iter().all(|n| {
            booleans.contains(n) || matches!(eq, KernelEq::When { cond, .. } if cond == n)
        });
        if !operands_boolean {
            return None;
        }
        let p_out = {
            let p = self.presence_var(out.as_str());
            self.bdd.var(p)
        };
        let v_out = {
            let v = self.value_var(out.as_str());
            self.bdd.var(v)
        };
        let rhs = match eq {
            KernelEq::Func { op, args, .. } => {
                let vals: Option<Vec<NodeRef>> = args.iter().map(|a| self.atom_value(a)).collect();
                let vals = vals?;
                match (op, vals.as_slice()) {
                    (PrimOp::Id, [a]) => Some(*a),
                    (PrimOp::Not, [a]) => Some(self.bdd.not(*a)),
                    (PrimOp::And, [a, b]) => Some(self.bdd.and(*a, *b)),
                    (PrimOp::Or, [a, b]) => Some(self.bdd.or(*a, *b)),
                    (PrimOp::Xor, [a, b]) => Some(self.bdd.xor(*a, *b)),
                    (PrimOp::Eq, [a, b]) => Some(self.bdd.iff(*a, *b)),
                    (PrimOp::Ne, [a, b]) => Some(self.bdd.xor(*a, *b)),
                    _ => None,
                }
            }
            KernelEq::When { arg, .. } => self.atom_value(arg),
            KernelEq::Default { left, right, .. } => {
                let l = self.atom_value(left)?;
                let r = self.atom_value(right)?;
                match left {
                    Atom::Var(n) => {
                        let p_l = {
                            let p = self.presence_var(n.as_str());
                            self.bdd.var(p)
                        };
                        Some(self.bdd.ite(p_l, l, r))
                    }
                    Atom::Const(_) => Some(l),
                }
            }
            // A delay relates the current value of its output to the
            // *previous* value of its input: no instantaneous fact.
            KernelEq::Delay { .. } => None,
        }?;
        let eq_fact = self.bdd.iff(v_out, rhs);
        Some(self.bdd.implies(p_out, eq_fact))
    }
}

/// Collects the signal names occurring in a clock constraint expression.
fn clock_ast_names(clock: &signal_lang::ClockAst, out: &mut Vec<Name>) {
    use signal_lang::ClockAst;
    match clock {
        ClockAst::Zero => {}
        ClockAst::Of(n) | ClockAst::WhenTrue(n) | ClockAst::WhenFalse(n) => out.push(n.clone()),
        ClockAst::And(a, b) | ClockAst::Or(a, b) | ClockAst::Diff(a, b) => {
            clock_ast_names(a, out);
            clock_ast_names(b, out);
        }
    }
}

fn find(parent: &mut Vec<usize>, i: usize) -> usize {
    if parent[i] != i {
        let root = find(parent, parent[i]);
        parent[i] = root;
    }
    parent[i]
}

fn union(parent: &mut Vec<usize>, a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[rb] = ra;
    }
}

/// Computes the BDD variable order of a process: signals grouped by
/// connected component of the co-occurrence relation (same equation or same
/// clock constraint), components and signals ordered by first occurrence.
fn variable_order(process: &KernelProcess) -> Vec<Name> {
    let mut first: Vec<Name> = Vec::new();
    let mut index: BTreeMap<Name, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();
    let touch = |name: &Name,
                 first: &mut Vec<Name>,
                 index: &mut BTreeMap<Name, usize>,
                 parent: &mut Vec<usize>|
     -> usize {
        if let Some(&i) = index.get(name) {
            return i;
        }
        let i = parent.len();
        parent.push(i);
        index.insert(name.clone(), i);
        first.push(name.clone());
        i
    };
    let mut groups: Vec<Vec<Name>> = Vec::new();
    for eq in process.equations() {
        let mut group = vec![eq.defined().clone()];
        group.extend(eq.reads());
        groups.push(group);
    }
    for (left, right) in process.constraints() {
        let mut group = Vec::new();
        clock_ast_names(left, &mut group);
        clock_ast_names(right, &mut group);
        groups.push(group);
    }
    for group in &groups {
        let mut prev: Option<usize> = None;
        for name in group {
            let i = touch(name, &mut first, &mut index, &mut parent);
            if let Some(p) = prev {
                union(&mut parent, p, i);
            }
            prev = Some(i);
        }
    }
    for name in process.signal_set() {
        touch(&name, &mut first, &mut index, &mut parent);
    }
    // Emit components in order of first occurrence; within a component,
    // signals keep their first-occurrence order.
    let mut ordered = Vec::with_capacity(first.len());
    let mut emitted = std::collections::BTreeSet::new();
    for name in &first {
        let root = find(&mut parent, index[name]);
        if emitted.insert(root) {
            for other in &first {
                if find(&mut parent, index[other]) == root {
                    ordered.push(other.clone());
                }
            }
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::stdlib;

    fn algebra_of(def: &signal_lang::ProcessDef) -> ClockAlgebra {
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        ClockAlgebra::new(&kernel, &relations)
    }

    #[test]
    fn buffer_master_clock_equivalences_hold() {
        // The paper: from R_buffer we deduce ^r = ^t (= ^s).
        let mut algebra = algebra_of(&stdlib::buffer());
        assert!(algebra.is_consistent());
        assert!(algebra.clocks_equal(&ClockExpr::tick("r"), &ClockExpr::tick("t")));
        assert!(algebra.clocks_equal(&ClockExpr::tick("s"), &ClockExpr::tick("t")));
        assert!(algebra.clocks_equal(&ClockExpr::tick("x"), &ClockExpr::on_true("t")));
        assert!(algebra.clocks_equal(&ClockExpr::tick("y"), &ClockExpr::on_false("t")));
        // And x and y are never simultaneously present.
        assert!(algebra.clock_is_null(&ClockExpr::tick("x").and(ClockExpr::tick("y"))));
    }

    #[test]
    fn filter_output_is_included_in_its_input_clock() {
        let mut algebra = algebra_of(&stdlib::filter());
        assert!(algebra.clock_included(&ClockExpr::tick("x"), &ClockExpr::tick("y")));
        assert!(!algebra.clocks_equal(&ClockExpr::tick("x"), &ClockExpr::tick("y")));
    }

    #[test]
    fn producer_consumer_couples_the_samplings_of_a_and_b() {
        // Composing the producer and the consumer constrains [not a] = [b]
        // through the shared signal x.
        let mut algebra = algebra_of(&stdlib::producer_consumer());
        assert!(algebra.clocks_equal(&ClockExpr::on_false("a"), &ClockExpr::on_true("b")));
        assert!(!algebra.clocks_equal(&ClockExpr::tick("a"), &ClockExpr::tick("b")));
    }

    #[test]
    fn inconsistent_constraints_are_detected() {
        use signal_lang::{ClockAst, Expr, ProcessBuilder};
        // x is constrained to be both always present with y and never.
        let def = ProcessBuilder::new("broken")
            .define("x", Expr::var("y"))
            .constraint(ClockAst::of("x"), ClockAst::Zero)
            .constraint(ClockAst::of("y"), ClockAst::of("x").or(ClockAst::of("x")))
            .build()
            .unwrap();
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        let algebra = ClockAlgebra::new(&kernel, &relations);
        // ^x = 0 and ^y = ^x force both absent — still satisfiable (silence),
        // so the relation is consistent; but [x] must be null.
        assert!(algebra.is_consistent());
        let mut algebra = algebra;
        assert!(algebra.clock_is_null(&ClockExpr::tick("x")));
    }

    #[test]
    fn both_variable_orderings_agree_on_entailment() {
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let relations = inference::infer(&kernel);
        let mut grouped = ClockAlgebra::with_order(&kernel, &relations, VariableOrder::Grouped);
        let mut by_name = ClockAlgebra::with_order(&kernel, &relations, VariableOrder::NameOrder);
        for (a, b) in [
            (ClockExpr::on_false("a"), ClockExpr::on_true("b")),
            (ClockExpr::tick("a"), ClockExpr::tick("b")),
            (ClockExpr::tick("u"), ClockExpr::on_true("a")),
        ] {
            assert_eq!(
                grouped.clocks_equal(&a, &b),
                by_name.clocks_equal(&a, &b),
                "orderings disagree on {a} = {b}"
            );
        }
    }

    #[test]
    fn grouped_ordering_keeps_independent_components_small() {
        use signal_lang::ProcessBuilder;
        // Four disjoint copies of the producer/consumer pair: the relation
        // factors per pair under the grouped ordering but couples every pair
        // under the interleaved name ordering.
        let mut builder = ProcessBuilder::new("pairs");
        for i in 0..4 {
            let producer = stdlib::producer().instantiate(
                &format!("p{i}"),
                &[
                    ("a", &format!("a{i}") as &str),
                    ("u", &format!("u{i}")),
                    ("x", &format!("x{i}")),
                ],
            );
            let consumer = stdlib::consumer().instantiate(
                &format!("c{i}"),
                &[
                    ("b", &format!("b{i}") as &str),
                    ("x", &format!("x{i}")),
                    ("v", &format!("v{i}")),
                ],
            );
            builder = builder.include(&producer).include(&consumer);
        }
        let kernel = builder.build().unwrap().normalize().unwrap();
        let relations = inference::infer(&kernel);
        let grouped = ClockAlgebra::with_order(&kernel, &relations, VariableOrder::Grouped);
        let by_name = ClockAlgebra::with_order(&kernel, &relations, VariableOrder::NameOrder);
        assert!(
            grouped.bdd_node_count() * 4 < by_name.bdd_node_count(),
            "grouped {} vs name-order {}",
            grouped.bdd_node_count(),
            by_name.bdd_node_count()
        );
    }

    #[test]
    fn entailment_distinguishes_facts_from_non_facts() {
        let mut algebra = algebra_of(&stdlib::producer());
        // ^u = [a] holds, ^u = ^a does not.
        assert!(algebra.clocks_equal(&ClockExpr::tick("u"), &ClockExpr::on_true("a")));
        assert!(!algebra.clocks_equal(&ClockExpr::tick("u"), &ClockExpr::tick("a")));
        // u and x are never present together.
        assert!(algebra.clock_is_null(&ClockExpr::tick("u").and(ClockExpr::tick("x"))));
    }
}
