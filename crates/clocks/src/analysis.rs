//! The complete clock analysis pipeline and the verdicts of Section 4.
//!
//! [`ClockAnalysis::analyze`] runs, in order: clock inference, construction
//! of the Boolean algebra, hierarchization, disjunctive-form analysis and
//! scheduling-graph reinforcement.  On top of the artefacts it exposes the
//! verdicts used by the compositional methodology:
//!
//! * **well-clocked** (Definition 7) — well-formed hierarchy and disjunctive
//!   relations;
//! * **acyclic** (Definition 8) — no instantaneous dependency cycle with a
//!   satisfiable clock;
//! * **compilable** (Definition 10) — acyclic and well-clocked, hence
//!   reactive and deterministic (Property 1);
//! * **hierarchic** (Definition 11) — the hierarchy has a unique root;
//! * **endochronous** (Property 2) — compilable and hierarchic.

use std::fmt;

use signal_lang::{KernelProcess, Name};

use crate::algebra::ClockAlgebra;
use crate::disjunctive::DisjunctiveForm;
use crate::hierarchy::{ClassId, ClockHierarchy};
use crate::inference;
use crate::relation::TimingRelations;
use crate::schedule::{Acyclicity, SchedulingGraph};

/// The result of analyzing one kernel process.
#[derive(Debug)]
pub struct ClockAnalysis {
    kernel: KernelProcess,
    relations: TimingRelations,
    algebra: ClockAlgebra,
    hierarchy: ClockHierarchy,
    disjunctive: DisjunctiveForm,
    graph: SchedulingGraph,
    acyclicity: Acyclicity,
}

impl ClockAnalysis {
    /// Runs the whole clock calculus on a kernel process.
    pub fn analyze(kernel: &KernelProcess) -> Self {
        let relations = inference::infer(kernel);
        let mut algebra = ClockAlgebra::new(kernel, &relations);
        let hierarchy = ClockHierarchy::build(kernel, &relations, &mut algebra);
        let disjunctive = DisjunctiveForm::analyze(kernel, &relations, &hierarchy, &mut algebra);
        let graph = SchedulingGraph::build(kernel, &relations, &hierarchy);
        let acyclicity = graph.acyclicity(&mut algebra);
        ClockAnalysis {
            kernel: kernel.clone(),
            relations,
            algebra,
            hierarchy,
            disjunctive,
            graph,
            acyclicity,
        }
    }

    /// The analyzed kernel process.
    pub fn kernel(&self) -> &KernelProcess {
        &self.kernel
    }

    /// The inferred timing relations.
    pub fn relations(&self) -> &TimingRelations {
        &self.relations
    }

    /// The Boolean algebra interpreting the relations.
    pub fn algebra(&self) -> &ClockAlgebra {
        &self.algebra
    }

    /// Mutable access to the algebra (entailment queries mutate BDD caches).
    pub fn algebra_mut(&mut self) -> &mut ClockAlgebra {
        &mut self.algebra
    }

    /// The clock hierarchy.
    pub fn hierarchy(&self) -> &ClockHierarchy {
        &self.hierarchy
    }

    /// The disjunctive-form report.
    pub fn disjunctive(&self) -> &DisjunctiveForm {
        &self.disjunctive
    }

    /// The reinforced scheduling graph.
    pub fn scheduling_graph(&self) -> &SchedulingGraph {
        &self.graph
    }

    /// The acyclicity verdict.
    pub fn acyclicity(&self) -> &Acyclicity {
        &self.acyclicity
    }

    /// Definition 7: the process is well-clocked.
    pub fn is_well_clocked(&self) -> bool {
        self.hierarchy.is_well_formed() && self.disjunctive.is_disjunctive()
    }

    /// Definition 8: the process is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.acyclicity.is_acyclic()
    }

    /// Definition 10: the process is compilable (acyclic and well-clocked).
    pub fn is_compilable(&self) -> bool {
        self.is_acyclic() && self.is_well_clocked()
    }

    /// Definition 11: the hierarchy has a unique root.
    pub fn is_hierarchic(&self) -> bool {
        self.hierarchy.is_hierarchic()
    }

    /// Property 2: a compilable and hierarchic process is endochronous.
    pub fn is_endochronous(&self) -> bool {
        self.is_compilable() && self.is_hierarchic()
    }

    /// The roots of the hierarchy.
    pub fn roots(&self) -> Vec<ClassId> {
        self.hierarchy.roots()
    }

    /// For each root of the hierarchy, the set of signals its tree covers
    /// (the decomposition used by Definition 12).
    pub fn root_partitions(&self) -> Vec<(ClassId, std::collections::BTreeSet<Name>)> {
        self.hierarchy
            .roots()
            .into_iter()
            .map(|r| (r, self.hierarchy.signals_under(r)))
            .collect()
    }

    /// A one-line summary of every verdict, for reports and examples.
    pub fn summary(&self) -> String {
        format!(
            "{}: well-clocked={} acyclic={} compilable={} hierarchic={} endochronous={} roots={}",
            self.kernel.name(),
            self.is_well_clocked(),
            self.is_acyclic(),
            self.is_compilable(),
            self.is_hierarchic(),
            self.is_endochronous(),
            self.roots().len()
        )
    }
}

impl fmt::Display for ClockAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        writeln!(f, "hierarchy:")?;
        write!(f, "{}", self.hierarchy.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    fn analyze(def: &signal_lang::ProcessDef) -> ClockAnalysis {
        ClockAnalysis::analyze(&def.normalize().unwrap())
    }

    #[test]
    fn paper_processes_verdicts() {
        // Endochronous components of the paper.
        for def in [
            stdlib::filter(),
            stdlib::merge(),
            stdlib::buffer(),
            stdlib::producer(),
            stdlib::consumer(),
            stdlib::ltta_writer(),
            stdlib::ltta_reader(),
            stdlib::buffer_pair(),
        ] {
            let a = analyze(&def);
            assert!(
                a.is_endochronous(),
                "{} should be endochronous: {}",
                def.name,
                a.summary()
            );
        }
        // Compositions that are compilable but not endochronous.
        for def in [
            stdlib::producer_consumer(),
            stdlib::filter_merge(),
            stdlib::ltta(),
        ] {
            let a = analyze(&def);
            assert!(
                a.is_compilable(),
                "{} should be compilable: {}",
                def.name,
                a.summary()
            );
            assert!(
                !a.is_endochronous(),
                "{} should not be endochronous: {}",
                def.name,
                a.summary()
            );
        }
    }

    #[test]
    fn root_partitions_cover_the_interface() {
        let a = analyze(&stdlib::producer_consumer());
        let partitions = a.root_partitions();
        assert_eq!(partitions.len(), 2);
        let all: std::collections::BTreeSet<_> = partitions
            .iter()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect();
        assert!(all.contains("a"));
        assert!(all.contains("b"));
        assert!(all.contains("u"));
        assert!(all.contains("v"));
    }

    #[test]
    fn summary_mentions_the_process_name() {
        let a = analyze(&stdlib::buffer());
        assert!(a.summary().starts_with("buffer:"));
        assert!(a.to_string().contains("hierarchy:"));
    }

    #[test]
    fn a_cyclic_process_is_not_compilable() {
        use signal_lang::{Expr, ProcessBuilder};
        let def = ProcessBuilder::new("loop")
            .define("x", Expr::var("y").add(Expr::cst(1)))
            .define("y", Expr::var("x").add(Expr::cst(1)))
            .build()
            .unwrap();
        let a = analyze(&def);
        assert!(!a.is_acyclic());
        assert!(!a.is_compilable());
        assert!(!a.is_endochronous());
    }
}
