//! A small reduced ordered binary decision diagram (ROBDD) package.
//!
//! The clock calculus manipulates Boolean relations between the *presence*
//! and the *boolean value* of every signal of a process.  Deciding
//! entailment (`R ⊨ S`), equivalence of clocks and nullity of clock
//! expressions reduces to propositional reasoning, for which this module
//! provides a classic hash-consed BDD with memoized `apply`, negation and
//! existential quantification.
//!
//! The implementation is deliberately self-contained (no external crate) and
//! favours clarity over raw speed: processes in this domain have at most a
//! few hundred Boolean variables.

use std::collections::HashMap;
use std::fmt;

/// A Boolean variable, identified by its index in the global ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A reference to a BDD node (or a terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The terminal `false`.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The terminal `true`.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Returns `true` when this reference is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeRef::FALSE => write!(f, "⊥"),
            NodeRef::TRUE => write!(f, "⊤"),
            NodeRef(i) => write!(f, "n{i}"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: Var,
    low: NodeRef,
    high: NodeRef,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// The BDD manager: owns every node and the operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeRef>,
    apply_cache: HashMap<(Op, NodeRef, NodeRef), NodeRef>,
    not_cache: HashMap<NodeRef, NodeRef>,
    exists_cache: HashMap<(NodeRef, u32), NodeRef>,
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Self {
        // Index 0 and 1 are reserved for the terminals; the sentinel nodes
        // stored there are never dereferenced.
        let sentinel = Node {
            var: Var(u32::MAX),
            low: NodeRef::FALSE,
            high: NodeRef::FALSE,
        };
        Bdd {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            exists_cache: HashMap::new(),
        }
    }

    /// The number of live (non-terminal) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }

    /// The constant `false`.
    pub fn zero(&self) -> NodeRef {
        NodeRef::FALSE
    }

    /// The constant `true`.
    pub fn one(&self) -> NodeRef {
        NodeRef::TRUE
    }

    /// The function `var`.
    pub fn var(&mut self, var: Var) -> NodeRef {
        self.mk(var, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// The function `¬var`.
    pub fn nvar(&mut self, var: Var) -> NodeRef {
        self.mk(var, NodeRef::TRUE, NodeRef::FALSE)
    }

    fn mk(&mut self, var: Var, low: NodeRef, high: NodeRef) -> NodeRef {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn node(&self, r: NodeRef) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.node(r).var.0
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(Op::Xor, a, b)
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        match a {
            NodeRef::FALSE => NodeRef::TRUE,
            NodeRef::TRUE => NodeRef::FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&a) {
                    return r;
                }
                let n = self.node(a);
                let low = self.not(n.low);
                let high = self.not(n.high);
                let r = self.mk(n.var, low, high);
                self.not_cache.insert(a, r);
                r
            }
        }
    }

    /// Difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Implication `a ⇒ b`.
    pub fn implies(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Equivalence `a ⇔ b`.
    pub fn iff(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: NodeRef, t: NodeRef, e: NodeRef) -> NodeRef {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    fn apply(&mut self, op: Op, a: NodeRef, b: NodeRef) -> NodeRef {
        match (op, a, b) {
            (Op::And, NodeRef::FALSE, _) | (Op::And, _, NodeRef::FALSE) => return NodeRef::FALSE,
            (Op::And, NodeRef::TRUE, x) | (Op::And, x, NodeRef::TRUE) => return x,
            (Op::Or, NodeRef::TRUE, _) | (Op::Or, _, NodeRef::TRUE) => return NodeRef::TRUE,
            (Op::Or, NodeRef::FALSE, x) | (Op::Or, x, NodeRef::FALSE) => return x,
            (Op::Xor, NodeRef::FALSE, x) | (Op::Xor, x, NodeRef::FALSE) => return x,
            (Op::Xor, NodeRef::TRUE, x) | (Op::Xor, x, NodeRef::TRUE) => return self.not(x),
            _ => {}
        }
        if a == b {
            return match op {
                Op::And | Op::Or => a,
                Op::Xor => NodeRef::FALSE,
            };
        }
        // Normalize the cache key for commutative operators.
        let key = if a.0 <= b.0 { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let top = va.min(vb);
        let (a_low, a_high) = if va == top {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if vb == top {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk(Var(top), low, high);
        self.apply_cache.insert(key, r);
        r
    }

    /// Existential quantification of `var` in `a`.
    pub fn exists(&mut self, a: NodeRef, var: Var) -> NodeRef {
        if a.is_terminal() {
            return a;
        }
        if let Some(&r) = self.exists_cache.get(&(a, var.0)) {
            return r;
        }
        let n = self.node(a);
        let r = if n.var.0 == var.0 {
            self.or(n.low, n.high)
        } else if n.var.0 > var.0 {
            a
        } else {
            let low = self.exists(n.low, var);
            let high = self.exists(n.high, var);
            self.mk(n.var, low, high)
        };
        self.exists_cache.insert((a, var.0), r);
        r
    }

    /// Existentially quantifies every variable in `vars`.
    pub fn exists_all(&mut self, a: NodeRef, vars: &[Var]) -> NodeRef {
        let mut r = a;
        for v in vars {
            r = self.exists(r, *v);
        }
        r
    }

    /// Returns `true` when `a` denotes the constant false function.
    pub fn is_false(&self, a: NodeRef) -> bool {
        a == NodeRef::FALSE
    }

    /// Returns `true` when `a` denotes the constant true function (a
    /// tautology).
    pub fn is_true(&self, a: NodeRef) -> bool {
        a == NodeRef::TRUE
    }

    /// Returns `true` when `a ⇒ b` is a tautology.
    pub fn entails(&mut self, a: NodeRef, b: NodeRef) -> bool {
        let i = self.implies(a, b);
        self.is_true(i)
    }

    /// Returns `true` when `a` and `b` denote the same function.
    pub fn equivalent(&self, a: NodeRef, b: NodeRef) -> bool {
        // Canonicity of ROBDDs makes this a pointer comparison.
        a == b
    }

    /// Returns one satisfying assignment of `a` as `(variable, polarity)`
    /// pairs, or `None` when `a` is unsatisfiable.  Variables not mentioned
    /// may take any value.
    pub fn any_sat(&self, a: NodeRef) -> Option<Vec<(Var, bool)>> {
        if a == NodeRef::FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = a;
        while !cur.is_terminal() {
            let n = self.node(cur);
            if n.high != NodeRef::FALSE {
                out.push((n.var, true));
                cur = n.high;
            } else {
                out.push((n.var, false));
                cur = n.low;
            }
        }
        Some(out)
    }

    /// Enumerates every satisfying assignment of `a` over the variables
    /// `support` (each assignment is total on `support`).
    ///
    /// # Panics
    ///
    /// Panics if `support` omits a variable actually tested by `a`.
    pub fn all_sat(&self, a: NodeRef, support: &[Var]) -> Vec<Vec<(Var, bool)>> {
        let mut out = Vec::new();
        let mut partial = Vec::new();
        self.all_sat_rec(a, support, 0, &mut partial, &mut out);
        out
    }

    fn all_sat_rec(
        &self,
        a: NodeRef,
        support: &[Var],
        index: usize,
        partial: &mut Vec<(Var, bool)>,
        out: &mut Vec<Vec<(Var, bool)>>,
    ) {
        if a == NodeRef::FALSE {
            return;
        }
        if index == support.len() {
            assert!(
                a == NodeRef::TRUE,
                "support does not cover every variable of the BDD"
            );
            out.push(partial.clone());
            return;
        }
        let var = support[index];
        let (low, high) = if !a.is_terminal() && self.node(a).var == var {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        partial.push((var, false));
        self.all_sat_rec(low, support, index + 1, partial, out);
        partial.pop();
        partial.push((var, true));
        self.all_sat_rec(high, support, index + 1, partial, out);
        partial.pop();
    }

    /// Evaluates `a` under a total assignment given as a predicate.
    pub fn eval(&self, a: NodeRef, assignment: impl Fn(Var) -> bool) -> bool {
        let mut cur = a;
        while !cur.is_terminal() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.high } else { n.low };
        }
        cur == NodeRef::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let nx = bdd.nvar(Var(0));
        assert_ne!(x, nx);
        let not_x = bdd.not(x);
        assert_eq!(not_x, nx);
        assert!(bdd.is_true(bdd.one()));
        assert!(bdd.is_false(bdd.zero()));
    }

    #[test]
    fn boolean_algebra_laws() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let z = bdd.var(Var(2));

        // Commutativity and canonicity.
        let xy = bdd.and(x, y);
        let yx = bdd.and(y, x);
        assert!(bdd.equivalent(xy, yx));

        // Distributivity.
        let yz = bdd.or(y, z);
        let left = bdd.and(x, yz);
        let xz = bdd.and(x, z);
        let right = bdd.or(xy, xz);
        assert!(bdd.equivalent(left, right));

        // De Morgan.
        let nxy = bdd.not(xy);
        let nx = bdd.not(x);
        let ny = bdd.not(y);
        let de_morgan = bdd.or(nx, ny);
        assert!(bdd.equivalent(nxy, de_morgan));

        // Excluded middle and contradiction.
        let taut = bdd.or(x, nx);
        assert!(bdd.is_true(taut));
        let contra = bdd.and(x, nx);
        assert!(bdd.is_false(contra));
    }

    #[test]
    fn implication_and_entailment() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let xy = bdd.and(x, y);
        assert!(bdd.entails(xy, x));
        assert!(bdd.entails(xy, y));
        assert!(!bdd.entails(x, xy));
        let x_or_y = bdd.or(x, y);
        assert!(bdd.entails(x, x_or_y));
    }

    #[test]
    fn xor_iff_and_ite() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let x_xor_y = bdd.xor(x, y);
        let x_iff_y = bdd.iff(x, y);
        let n = bdd.not(x_xor_y);
        assert!(bdd.equivalent(x_iff_y, n));
        // ite(x, y, z) with z = y collapses to y.
        let ite = bdd.ite(x, y, y);
        assert!(bdd.equivalent(ite, y));
    }

    #[test]
    fn existential_quantification() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let xy = bdd.and(x, y);
        // ∃x. x∧y  =  y
        let q = bdd.exists(xy, Var(0));
        assert!(bdd.equivalent(q, y));
        // ∃y. x∧y  =  x
        let q = bdd.exists(xy, Var(1));
        assert!(bdd.equivalent(q, x));
        // ∃x,y. x∧y = true
        let q = bdd.exists_all(xy, &[Var(0), Var(1)]);
        assert!(bdd.is_true(q));
    }

    #[test]
    fn sat_enumeration() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let f = bdd.xor(x, y);
        let sats = bdd.all_sat(f, &[Var(0), Var(1)]);
        assert_eq!(sats.len(), 2);
        for sat in &sats {
            let vx = sat.iter().find(|(v, _)| *v == Var(0)).unwrap().1;
            let vy = sat.iter().find(|(v, _)| *v == Var(1)).unwrap().1;
            assert_ne!(vx, vy);
        }
        assert!(bdd.any_sat(f).is_some());
        assert!(bdd.any_sat(bdd.zero()).is_none());
    }

    #[test]
    fn eval_follows_the_assignment() {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let nx = bdd.not(x);
        let f = bdd.or(nx, y); // x ⇒ y
        assert!(bdd.eval(f, |_| false));
        assert!(!bdd.eval(f, |v| v.0 == 0));
        assert!(bdd.eval(f, |_| true));
    }

    #[test]
    fn hash_consing_keeps_the_node_count_small() {
        let mut bdd = Bdd::new();
        let mut f = bdd.one();
        for i in 0..20 {
            let v = bdd.var(Var(i));
            f = bdd.and(f, v);
        }
        // Intermediate prefixes allocate at most a quadratic number of chain
        // nodes; the point of hash-consing is that nothing is duplicated.
        assert!(bdd.node_count() <= 20 * 21 / 2);
        // Re-building the same function allocates nothing new.
        let before = bdd.node_count();
        let mut g = bdd.one();
        for i in 0..20 {
            let v = bdd.var(Var(i));
            g = bdd.and(g, v);
        }
        assert_eq!(bdd.node_count(), before);
        assert!(bdd.equivalent(f, g));
    }
}
