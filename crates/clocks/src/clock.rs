//! Clocks and clock expressions.

use std::fmt;

use signal_lang::{ClockAst, Name};

/// An atomic clock `c` of the calculus of Section 3.1:
///
/// * `^x` — the instants where the signal `x` is present;
/// * `[x]` — the instants where the boolean signal `x` is present and true;
/// * `[not x]` — the instants where it is present and false.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Clock {
    /// The clock `^x` of a signal.
    Tick(Name),
    /// The positive sampling `[x]`.
    True(Name),
    /// The negative sampling `[not x]`.
    False(Name),
}

impl Clock {
    /// The clock `^x`.
    pub fn tick(name: impl Into<Name>) -> Clock {
        Clock::Tick(name.into())
    }

    /// The clock `[x]`.
    pub fn on_true(name: impl Into<Name>) -> Clock {
        Clock::True(name.into())
    }

    /// The clock `[not x]`.
    pub fn on_false(name: impl Into<Name>) -> Clock {
        Clock::False(name.into())
    }

    /// The signal the clock talks about.
    pub fn signal(&self) -> &Name {
        match self {
            Clock::Tick(n) | Clock::True(n) | Clock::False(n) => n,
        }
    }

    /// Returns `true` for `[x]` and `[not x]` clocks.
    pub fn is_sampling(&self) -> bool {
        !matches!(self, Clock::Tick(_))
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clock::Tick(n) => write!(f, "^{n}"),
            Clock::True(n) => write!(f, "[{n}]"),
            Clock::False(n) => write!(f, "[not {n}]"),
        }
    }
}

/// A clock expression `e ::= 0 | c | e ∧ e | e ∨ e | e \ e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClockExpr {
    /// The empty clock.
    Zero,
    /// An atomic clock.
    Atom(Clock),
    /// Intersection of instants.
    And(Box<ClockExpr>, Box<ClockExpr>),
    /// Union of instants.
    Or(Box<ClockExpr>, Box<ClockExpr>),
    /// Difference of instants (the implicit reference to absence that
    /// Section 3.4 eliminates).
    Diff(Box<ClockExpr>, Box<ClockExpr>),
}

impl ClockExpr {
    /// The atomic expression `^x`.
    pub fn tick(name: impl Into<Name>) -> ClockExpr {
        ClockExpr::Atom(Clock::tick(name))
    }

    /// The atomic expression `[x]`.
    pub fn on_true(name: impl Into<Name>) -> ClockExpr {
        ClockExpr::Atom(Clock::on_true(name))
    }

    /// The atomic expression `[not x]`.
    pub fn on_false(name: impl Into<Name>) -> ClockExpr {
        ClockExpr::Atom(Clock::on_false(name))
    }

    /// Intersection.
    pub fn and(self, other: ClockExpr) -> ClockExpr {
        ClockExpr::And(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: ClockExpr) -> ClockExpr {
        ClockExpr::Or(Box::new(self), Box::new(other))
    }

    /// Difference.
    pub fn diff(self, other: ClockExpr) -> ClockExpr {
        ClockExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Returns the atomic clock when the expression is a single atom.
    pub fn as_atom(&self) -> Option<&Clock> {
        match self {
            ClockExpr::Atom(c) => Some(c),
            _ => None,
        }
    }

    /// Collects every atomic clock mentioned by the expression.
    pub fn atoms(&self, acc: &mut Vec<Clock>) {
        match self {
            ClockExpr::Zero => {}
            ClockExpr::Atom(c) => acc.push(c.clone()),
            ClockExpr::And(a, b) | ClockExpr::Or(a, b) | ClockExpr::Diff(a, b) => {
                a.atoms(acc);
                b.atoms(acc);
            }
        }
    }

    /// Collects every `Diff` sub-expression (minuend, subtrahend).
    pub fn diffs(&self, acc: &mut Vec<(ClockExpr, ClockExpr)>) {
        match self {
            ClockExpr::Zero | ClockExpr::Atom(_) => {}
            ClockExpr::And(a, b) | ClockExpr::Or(a, b) => {
                a.diffs(acc);
                b.diffs(acc);
            }
            ClockExpr::Diff(a, b) => {
                acc.push(((**a).clone(), (**b).clone()));
                a.diffs(acc);
                b.diffs(acc);
            }
        }
    }

    /// Converts a front-end clock constraint expression into a calculus
    /// expression.
    pub fn from_ast(ast: &ClockAst) -> ClockExpr {
        match ast {
            ClockAst::Zero => ClockExpr::Zero,
            ClockAst::Of(n) => ClockExpr::tick(n.clone()),
            ClockAst::WhenTrue(n) => ClockExpr::on_true(n.clone()),
            ClockAst::WhenFalse(n) => ClockExpr::on_false(n.clone()),
            ClockAst::And(a, b) => ClockExpr::from_ast(a).and(ClockExpr::from_ast(b)),
            ClockAst::Or(a, b) => ClockExpr::from_ast(a).or(ClockExpr::from_ast(b)),
            ClockAst::Diff(a, b) => ClockExpr::from_ast(a).diff(ClockExpr::from_ast(b)),
        }
    }
}

impl From<Clock> for ClockExpr {
    fn from(c: Clock) -> Self {
        ClockExpr::Atom(c)
    }
}

impl fmt::Display for ClockExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockExpr::Zero => write!(f, "0"),
            ClockExpr::Atom(c) => write!(f, "{c}"),
            ClockExpr::And(a, b) => write!(f, "({a} ^* {b})"),
            ClockExpr::Or(a, b) => write!(f, "({a} ^+ {b})"),
            ClockExpr::Diff(a, b) => write!(f, "({a} ^- {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accessors() {
        let c = Clock::on_true("t");
        assert_eq!(c.signal().as_str(), "t");
        assert!(c.is_sampling());
        assert!(!Clock::tick("x").is_sampling());
    }

    #[test]
    fn display_notation_matches_the_paper() {
        assert_eq!(Clock::tick("x").to_string(), "^x");
        assert_eq!(Clock::on_true("t").to_string(), "[t]");
        assert_eq!(Clock::on_false("t").to_string(), "[not t]");
        let e = ClockExpr::tick("x").or(ClockExpr::tick("y"));
        assert_eq!(e.to_string(), "(^x ^+ ^y)");
    }

    #[test]
    fn atoms_and_diffs_are_collected() {
        let e = ClockExpr::tick("x")
            .diff(ClockExpr::on_true("t"))
            .or(ClockExpr::tick("y"));
        let mut atoms = Vec::new();
        e.atoms(&mut atoms);
        assert_eq!(atoms.len(), 3);
        let mut diffs = Vec::new();
        e.diffs(&mut diffs);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0, ClockExpr::tick("x"));
    }

    #[test]
    fn conversion_from_the_front_end_ast() {
        let ast = ClockAst::of("r").diff(ClockAst::when_false("t"));
        let e = ClockExpr::from_ast(&ast);
        assert_eq!(e, ClockExpr::tick("r").diff(ClockExpr::on_false("t")));
    }
}
