//! Disjunctive forms (Section 3.4).
//!
//! A clock expression `c \ d` implicitly refers to the *absence* of the
//! events of `d`, which cannot be tested at run time.  Polychrony eliminates
//! such symmetric differences by rewriting them in terms of the presence or
//! the value of another signal: `c \ d` has a disjunctive form when `d` is
//! equivalent to a sampling `[w]` (or `[not w]`) of a boolean signal `w`
//! whose clock `^w` dominates, in the hierarchy, a common ancestor of `c`
//! and `d` — then `c \ d` can be computed as `c ∧ [not w]` (resp.
//! `c ∧ [w]`).
//!
//! A timing relation is *in disjunctive form* when every symmetric
//! difference it contains is eliminable; a process is **well-clocked**
//! (Definition 7) when its hierarchy is well-formed and its relations are
//! disjunctive.

use std::fmt;

use signal_lang::KernelProcess;

use crate::algebra::ClockAlgebra;
use crate::clock::{Clock, ClockExpr};
use crate::hierarchy::ClockHierarchy;
use crate::relation::TimingRelations;

/// The outcome of trying to eliminate one symmetric difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffResolution {
    /// The minuend `c` of the difference.
    pub minuend: ClockExpr,
    /// The subtrahend `d` of the difference.
    pub subtrahend: ClockExpr,
    /// The sampling the difference can be rewritten with, when eliminable:
    /// `c \ d = c ∧ rewrite`.
    pub rewrite: Option<Clock>,
}

impl DiffResolution {
    /// Returns `true` when the difference has a disjunctive form.
    pub fn is_eliminable(&self) -> bool {
        self.rewrite.is_some()
    }
}

impl fmt::Display for DiffResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rewrite {
            Some(c) => write!(
                f,
                "({} ^- {}) rewritten as ({} ^* {c})",
                self.minuend, self.subtrahend, self.minuend
            ),
            None => write!(
                f,
                "({} ^- {}) has no disjunctive form",
                self.minuend, self.subtrahend
            ),
        }
    }
}

/// The disjunctive-form report of a process.
#[derive(Debug, Clone, Default)]
pub struct DisjunctiveForm {
    resolutions: Vec<DiffResolution>,
}

impl DisjunctiveForm {
    /// Analyzes every symmetric difference of the relations.
    pub fn analyze(
        process: &KernelProcess,
        relations: &TimingRelations,
        hierarchy: &ClockHierarchy,
        algebra: &mut ClockAlgebra,
    ) -> Self {
        let booleans = process.boolean_signals();
        let mut resolutions = Vec::new();
        for (minuend, subtrahend) in relations.diff_occurrences() {
            // A difference with a provably null subtrahend is trivially
            // disjunctive (`c \ 0 = c`) and needs no rewrite at all.
            if algebra.clock_is_null(&subtrahend) {
                continue;
            }
            let rewrite = booleans.iter().find_map(|w| {
                let on_true = ClockExpr::on_true(w.clone());
                let on_false = ClockExpr::on_false(w.clone());
                let candidate = if algebra.clocks_equal(&subtrahend, &on_true) {
                    Some(Clock::on_false(w.clone()))
                } else if algebra.clocks_equal(&subtrahend, &on_false) {
                    Some(Clock::on_true(w.clone()))
                } else {
                    None
                }?;
                // The witness w must sit above a common ancestor of both
                // operands: both operand classes must be dominated by the
                // class of ^w or share a dominator with it.
                let tick_class = hierarchy.class_of(&Clock::tick(w.clone()))?;
                let dominated = |expr: &ClockExpr| {
                    let mut atoms = Vec::new();
                    expr.atoms(&mut atoms);
                    atoms.iter().all(|a| {
                        hierarchy
                            .class_of(a)
                            .map(|c| {
                                hierarchy.dominates_star(tick_class, c)
                                    || hierarchy
                                        .dominators_of(c)
                                        .intersection(&hierarchy.dominators_of(tick_class))
                                        .next()
                                        .is_some()
                            })
                            .unwrap_or(false)
                    })
                };
                if dominated(&minuend) && dominated(&subtrahend) {
                    Some(candidate)
                } else {
                    None
                }
            });
            resolutions.push(DiffResolution {
                minuend,
                subtrahend,
                rewrite,
            });
        }
        DisjunctiveForm { resolutions }
    }

    /// Every analyzed difference.
    pub fn resolutions(&self) -> &[DiffResolution] {
        &self.resolutions
    }

    /// The differences that could not be eliminated.
    pub fn unresolved(&self) -> impl Iterator<Item = &DiffResolution> + '_ {
        self.resolutions.iter().filter(|r| !r.is_eliminable())
    }

    /// Returns `true` when every symmetric difference has a disjunctive
    /// form.
    pub fn is_disjunctive(&self) -> bool {
        self.resolutions.iter().all(DiffResolution::is_eliminable)
    }
}

impl fmt::Display for DisjunctiveForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.resolutions {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::stdlib;

    fn disjunctive_of(def: &signal_lang::ProcessDef) -> DisjunctiveForm {
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        let mut algebra = ClockAlgebra::new(&kernel, &relations);
        let hierarchy = ClockHierarchy::build(&kernel, &relations, &mut algebra);
        DisjunctiveForm::analyze(&kernel, &relations, &hierarchy, &mut algebra)
    }

    #[test]
    fn buffer_differences_are_eliminated_through_the_alternating_state() {
        // The paper: ^r \ ^y can be interpreted as [t] in the buffer.  The
        // analysis may equivalently pick [not s], since s := t $ init true
        // and t := not s make [t] and [not s] the same clock.
        let d = disjunctive_of(&signal_lang::stdlib::buffer());
        assert!(d.is_disjunctive(), "{d}");
        assert!(d.resolutions().iter().any(|r| matches!(
            &r.rewrite,
            Some(c) if c.signal().as_str() == "t" || c.signal().as_str() == "s"
        )));
    }

    #[test]
    fn merge_differences_are_eliminated_through_c() {
        let d = disjunctive_of(&stdlib::merge());
        assert!(d.is_disjunctive(), "{d}");
    }

    #[test]
    fn unrelated_difference_has_no_disjunctive_form() {
        use signal_lang::{Expr, ProcessBuilder};
        // x = y default z with y and z completely unrelated: the guard
        // ^z \ ^y cannot be computed from any boolean value.
        let def = ProcessBuilder::new("loose")
            .define("x", Expr::var("y").default(Expr::var("z")))
            .build()
            .unwrap();
        let d = disjunctive_of(&def);
        assert!(!d.is_disjunctive());
        assert_eq!(d.unresolved().count(), 1);
    }

    #[test]
    fn processes_without_differences_are_trivially_disjunctive() {
        let d = disjunctive_of(&stdlib::producer());
        assert!(d.is_disjunctive());
    }

    #[test]
    fn consumer_is_disjunctive() {
        let d = disjunctive_of(&stdlib::consumer());
        assert!(d.is_disjunctive(), "{d}");
    }

    #[test]
    fn ltta_is_disjunctive() {
        let d = disjunctive_of(&stdlib::ltta());
        assert!(d.is_disjunctive(), "{d}");
    }
}
