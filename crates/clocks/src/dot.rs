//! Graphviz (DOT) export of the clock hierarchy and the scheduling graph.
//!
//! The paper illustrates its analyses with hierarchy trees (the buffer's
//! three classes, the producer/consumer two-root forest, the four-tree LTTA)
//! and with the reinforced scheduling graph of the buffer.  This module
//! renders the same artefacts as DOT text so the figures can be regenerated
//! with `dot -Tpng`:
//!
//! ```
//! use clocks::{dot, ClockAnalysis};
//! use signal_lang::stdlib;
//!
//! let analysis = ClockAnalysis::analyze(&stdlib::buffer().normalize()?);
//! let figure = dot::hierarchy_dot(analysis.hierarchy(), "buffer");
//! assert!(figure.starts_with("digraph buffer"));
//! # Ok::<(), signal_lang::SignalError>(())
//! ```

use std::fmt::Write as _;

use crate::hierarchy::ClockHierarchy;
use crate::schedule::SchedulingGraph;

/// Escapes a label for inclusion in a DOT attribute string.
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a clock hierarchy as a DOT digraph named `name`.
///
/// One node per clock equivalence class (labelled with its members joined by
/// `~`, as in the paper's figures), one edge per direct domination.  Roots
/// are drawn as double circles so that forests — the non-endochronous
/// compositions of the paper — are immediately visible.
pub fn hierarchy_dot(hierarchy: &ClockHierarchy, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let roots = hierarchy.roots();
    for class in 0..hierarchy.class_count() {
        if hierarchy.class_members(class).is_empty() {
            continue;
        }
        let label = escape(&hierarchy.describe_class(class));
        if roots.contains(&class) {
            let _ = writeln!(out, "  c{class} [label=\"{label}\", peripheries=2];");
        } else {
            let _ = writeln!(out, "  c{class} [label=\"{label}\"];");
        }
    }
    for class in 0..hierarchy.class_count() {
        for child in hierarchy.children(class) {
            if child != class {
                let _ = writeln!(out, "  c{class} -> c{child};");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a scheduling graph as a DOT digraph named `name`.
///
/// Signal nodes are drawn as ellipses, clock nodes as plain text; each edge
/// is labelled with the clock guarding the dependency, as in `y →^y r`.
pub fn scheduling_dot(graph: &SchedulingGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, node) in graph.nodes().iter().enumerate() {
        let shape = match node {
            crate::relation::SchedNode::Signal(_) => "ellipse",
            crate::relation::SchedNode::Clock(_) => "plaintext",
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\", shape={shape}];",
            escape(&node.to_string())
        );
    }
    let index_of = |node: &crate::relation::SchedNode| -> Option<usize> {
        graph.nodes().iter().position(|n| n == node)
    };
    for (from, to, guard) in graph.iter_edges() {
        if let (Some(f), Some(t)) = (index_of(from), index_of(to)) {
            let _ = writeln!(
                out,
                "  n{f} -> n{t} [label=\"{}\"];",
                escape(&guard.to_string())
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Turns an arbitrary process name into a valid DOT identifier.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'g');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClockAnalysis;
    use signal_lang::stdlib;

    fn analysis(def: &signal_lang::ProcessDef) -> ClockAnalysis {
        ClockAnalysis::analyze(&def.normalize().unwrap())
    }

    #[test]
    fn buffer_hierarchy_has_one_doubled_root_and_two_children() {
        let a = analysis(&stdlib::buffer());
        let dot = hierarchy_dot(a.hierarchy(), "buffer");
        assert!(dot.starts_with("digraph buffer {"));
        assert_eq!(dot.matches("peripheries=2").count(), 1, "{dot}");
        // The root class gathers the master clocks and dominates the classes
        // of the two sampled signals x and y.
        assert!(dot.contains("^r ~ ^s ~ ^t"), "{dot}");
        assert!(
            dot.contains("[t] ~ ^x") || dot.contains("^x ~ [t]"),
            "{dot}"
        );
        assert!(
            dot.contains("[not t] ~ ^y") || dot.contains("^y ~ [not t]"),
            "{dot}"
        );
        assert!(dot.matches(" -> ").count() >= 2, "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn producer_consumer_hierarchy_is_a_two_tree_forest() {
        let a = analysis(&stdlib::producer_consumer());
        let dot = hierarchy_dot(a.hierarchy(), "main");
        assert_eq!(dot.matches("peripheries=2").count(), 2, "{dot}");
    }

    #[test]
    fn scheduling_graph_edges_carry_their_clock_guard() {
        let a = analysis(&stdlib::buffer());
        let dot = scheduling_dot(a.scheduling_graph(), "buffer");
        assert!(dot.starts_with("digraph buffer {"));
        assert!(dot.contains("label=\"^"), "{dot}");
        assert!(dot.contains("shape=ellipse"));
    }

    #[test]
    fn names_are_sanitized_into_valid_dot_identifiers() {
        assert_eq!(sanitize("filter|merge"), "filter_merge");
        assert_eq!(sanitize("42main"), "g42main");
        assert_eq!(sanitize(""), "g");
        let a = analysis(&stdlib::filter_merge());
        let dot = hierarchy_dot(a.hierarchy(), "filter|merge");
        assert!(dot.starts_with("digraph filter_merge {"));
    }

    #[test]
    fn labels_with_quotes_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
