//! The clock hierarchy of Section 3.3 (Definition 5).
//!
//! The hierarchy represents the control flow of a process by a partial order
//! on clock equivalence classes:
//!
//! 1. for every boolean signal `x`, `^x ≽ [x]` and `^x ≽ [not x]` — once `x`
//!    is known to be present, its value decides which sub-clock is active;
//! 2. clocks equal under `R` belong to the same equivalence class;
//! 3. if `b1 = c1 f c2` is deducible from `R` and a class `b2` dominating
//!    both `c1` and `c2` exists (taking the lowest such class), then
//!    `b2 ≽ b1`.
//!
//! A process whose hierarchy has a single root is *hierarchic*; a compilable
//! and hierarchic process is endochronous (Property 2 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use signal_lang::{KernelProcess, Name};

use crate::algebra::ClockAlgebra;
use crate::clock::{Clock, ClockExpr};
use crate::relation::TimingRelations;

/// Identifier of a clock equivalence class inside a [`ClockHierarchy`].
pub type ClassId = usize;

/// The clock hierarchy of a process.
#[derive(Debug, Clone)]
pub struct ClockHierarchy {
    classes: Vec<Vec<Clock>>,
    class_of: BTreeMap<Clock, ClassId>,
    /// `dominates[i]` is the set of classes directly dominated by `i`.
    dominates: Vec<BTreeSet<ClassId>>,
    ill_formed: Vec<String>,
    null_classes: BTreeSet<ClassId>,
}

impl ClockHierarchy {
    /// Builds the hierarchy of a process from its relations and algebra.
    pub fn build(
        process: &KernelProcess,
        relations: &TimingRelations,
        algebra: &mut ClockAlgebra,
    ) -> Self {
        // 1. Clocks of interest: ^x for every signal, [x] / [not x] for
        //    boolean signals.
        let booleans = process.boolean_signals();
        let mut clocks: Vec<Clock> = Vec::new();
        for name in process.signal_set() {
            clocks.push(Clock::Tick(name.clone()));
            if booleans.contains(&name) {
                clocks.push(Clock::True(name.clone()));
                clocks.push(Clock::False(name.clone()));
            }
        }

        // 2. Equivalence classes: c ~ d iff R ⊨ c = d, i.e. R ∧ enc(c) and
        //    R ∧ enc(d) denote the same Boolean function.
        let relation = algebra.relation();
        let mut key_to_class: BTreeMap<u64, ClassId> = BTreeMap::new();
        let mut classes: Vec<Vec<Clock>> = Vec::new();
        let mut class_of: BTreeMap<Clock, ClassId> = BTreeMap::new();
        let mut null_classes: BTreeSet<ClassId> = BTreeSet::new();
        for clock in &clocks {
            let enc = algebra.encode_clock(clock);
            let conditioned = algebra.bdd_mut().and(relation, enc);
            let key = node_key(conditioned);
            let id = *key_to_class.entry(key).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[id].push(clock.clone());
            class_of.insert(clock.clone(), id);
            if algebra.bdd_mut().is_false(conditioned) {
                null_classes.insert(id);
            }
        }

        let mut hierarchy = ClockHierarchy {
            dominates: vec![BTreeSet::new(); classes.len()],
            classes,
            class_of,
            ill_formed: Vec::new(),
            null_classes,
        };

        // Rule 1: ^x dominates [x] and [not x].
        for name in &booleans {
            let tick = hierarchy.class_of[&Clock::Tick(name.clone())];
            for sample in [Clock::True(name.clone()), Clock::False(name.clone())] {
                let sampled = hierarchy.class_of[&sample];
                if sampled == tick {
                    // `^x ~ [x]` collapses the presence of x with one of its
                    // value samplings.  For a *defined* signal this merely
                    // records that its computed value is constant (e.g.
                    // `x := true when c` in the filter); for an *input* it is
                    // a constraint on the environment that may block the
                    // process (the paper's `z = y when y` example), which
                    // Definition 6 flags as ill-formed.  Null classes (the
                    // signal can never be present) are ignored.
                    if process.is_input(name.as_str()) && !hierarchy.null_classes.contains(&tick) {
                        hierarchy
                            .ill_formed
                            .push(format!("^{name} is equivalent to {sample}"));
                    }
                } else {
                    hierarchy.dominates[tick].insert(sampled);
                }
            }
        }

        // Rule 3, iterated to a fixed point together with the transitive
        // information accumulated so far.
        let definitions = binary_definitions(relations);
        let mut changed = true;
        while changed {
            changed = false;
            for (lhs, c1, c2) in &definitions {
                let (Some(&b1), Some(&k1), Some(&k2)) = (
                    hierarchy.class_of.get(lhs),
                    hierarchy.class_of.get(c1),
                    hierarchy.class_of.get(c2),
                ) else {
                    continue;
                };
                let dominators1 = hierarchy.dominators_of(k1);
                let dominators2 = hierarchy.dominators_of(k2);
                let common: BTreeSet<ClassId> =
                    dominators1.intersection(&dominators2).copied().collect();
                if common.is_empty() {
                    continue;
                }
                // The lowest common dominator: dominated by every other
                // common dominator.
                let lowest = common.iter().copied().find(|candidate| {
                    common.iter().all(|other| {
                        other == candidate || hierarchy.dominates_star(*other, *candidate)
                    })
                });
                if let Some(b2) = lowest {
                    if b2 != b1 && !hierarchy.dominates[b2].contains(&b1) {
                        hierarchy.dominates[b2].insert(b1);
                        changed = true;
                    }
                }
            }
        }

        // Definition 6: a dominance cycle between distinct classes makes the
        // hierarchy ill-formed.
        for i in 0..hierarchy.classes.len() {
            for j in (i + 1)..hierarchy.classes.len() {
                if hierarchy.dominates_star(i, j) && hierarchy.dominates_star(j, i) {
                    hierarchy.ill_formed.push(format!(
                        "dominance cycle between {} and {}",
                        hierarchy.describe_class(i),
                        hierarchy.describe_class(j)
                    ));
                }
            }
        }

        hierarchy
    }

    /// The number of clock equivalence classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The members of a class.
    pub fn class_members(&self, id: ClassId) -> &[Clock] {
        &self.classes[id]
    }

    /// The class of a clock, if the clock was considered.
    pub fn class_of(&self, clock: &Clock) -> Option<ClassId> {
        self.class_of.get(clock).copied()
    }

    /// Returns `true` when two clocks are in the same equivalence class.
    pub fn same_class(&self, a: &Clock, b: &Clock) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The classes directly dominated by `id`.
    pub fn children(&self, id: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.dominates[id].iter().copied()
    }

    /// Does `a` dominate `b` (reflexively and transitively)?
    pub fn dominates_star(&self, a: ClassId, b: ClassId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![a];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &d in &self.dominates[c] {
                if d == b {
                    return true;
                }
                stack.push(d);
            }
        }
        false
    }

    /// The classes that dominate `id`, reflexively and transitively.
    pub fn dominators_of(&self, id: ClassId) -> BTreeSet<ClassId> {
        (0..self.classes.len())
            .filter(|&c| self.dominates_star(c, id))
            .collect()
    }

    /// The roots of the hierarchy: classes not dominated by any other class.
    ///
    /// Classes whose clock is provably null under `R` (they can never be
    /// present) are ignored — they carry no control.
    pub fn roots(&self) -> Vec<ClassId> {
        (0..self.classes.len())
            .filter(|&c| !self.null_classes.contains(&c))
            .filter(|&c| {
                (0..self.classes.len()).all(|other| other == c || !self.dominates_star(other, c))
            })
            .collect()
    }

    /// Returns `true` when the hierarchy has a single root (Definition 11:
    /// the process is *hierarchic*).
    pub fn is_hierarchic(&self) -> bool {
        self.roots().len() <= 1
    }

    /// Returns `true` when no rule of Definition 6 is violated.
    pub fn is_well_formed(&self) -> bool {
        self.ill_formed.is_empty()
    }

    /// Human-readable reasons why the hierarchy is ill-formed.
    pub fn ill_formed_reasons(&self) -> &[String] {
        &self.ill_formed
    }

    /// The signals whose clock class is dominated by `root` (including the
    /// root's own signals).  This is the sub-process "tree" `⊑ root` used by
    /// the weak-hierarchy decomposition.
    pub fn signals_under(&self, root: ClassId) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        for (clock, &class) in &self.class_of {
            if let Clock::Tick(name) = clock {
                if self.dominates_star(root, class) {
                    out.insert(name.clone());
                }
            }
        }
        out
    }

    /// A short description of a class (its members joined by `~`).
    pub fn describe_class(&self, id: ClassId) -> String {
        self.classes[id]
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ~ ")
    }

    /// Renders the hierarchy as an indented forest, mirroring the figures of
    /// the paper.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_class(root, 0, &mut out, &mut BTreeSet::new());
        }
        out
    }

    fn render_class(
        &self,
        id: ClassId,
        depth: usize,
        out: &mut String,
        seen: &mut BTreeSet<ClassId>,
    ) {
        if !seen.insert(id) {
            return;
        }
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.describe_class(id));
        out.push('\n');
        for child in self.children(id) {
            self.render_class(child, depth + 1, out, seen);
        }
    }
}

impl fmt::Display for ClockHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Collects the binary clock definitions `b1 = c1 f c2` (with atomic
/// operands) usable by rule 3 of Definition 5.
fn binary_definitions(relations: &TimingRelations) -> Vec<(Clock, Clock, Clock)> {
    let mut out = Vec::new();
    for (l, r) in &relations.equalities {
        collect_binary(l, r, &mut out);
        collect_binary(r, l, &mut out);
    }
    out
}

fn collect_binary(
    atom_side: &ClockExpr,
    expr_side: &ClockExpr,
    out: &mut Vec<(Clock, Clock, Clock)>,
) {
    let Some(lhs) = atom_side.as_atom() else {
        return;
    };
    let (a, b) = match expr_side {
        ClockExpr::And(a, b) | ClockExpr::Or(a, b) | ClockExpr::Diff(a, b) => (a, b),
        _ => return,
    };
    if let (Some(c1), Some(c2)) = (a.as_atom(), b.as_atom()) {
        out.push((lhs.clone(), c1.clone(), c2.clone()));
    }
}

/// A stable key for a BDD node reference (used to group clocks by the
/// function `R ∧ enc(c)` they denote).
fn node_key(node: crate::bdd::NodeRef) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::stdlib;

    fn hierarchy_of(def: &signal_lang::ProcessDef) -> ClockHierarchy {
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        let mut algebra = ClockAlgebra::new(&kernel, &relations);
        ClockHierarchy::build(&kernel, &relations, &mut algebra)
    }

    #[test]
    fn buffer_hierarchy_matches_the_paper_figure() {
        // ^r ~ ^s ~ ^t at the root, [t] ~ ^x and [not t] ~ ^y below.
        let h = hierarchy_of(&stdlib::buffer());
        assert!(h.is_well_formed(), "{:?}", h.ill_formed_reasons());
        assert!(h.is_hierarchic(), "roots: {:?}", h.roots().len());
        assert!(h.same_class(&Clock::tick("r"), &Clock::tick("t")));
        assert!(h.same_class(&Clock::tick("s"), &Clock::tick("t")));
        assert!(h.same_class(&Clock::tick("x"), &Clock::on_true("t")));
        assert!(h.same_class(&Clock::tick("y"), &Clock::on_false("t")));
        let root = h.roots()[0];
        let x_class = h.class_of(&Clock::tick("x")).unwrap();
        let y_class = h.class_of(&Clock::tick("y")).unwrap();
        assert!(h.dominates_star(root, x_class));
        assert!(h.dominates_star(root, y_class));
    }

    #[test]
    fn filter_is_hierarchic() {
        let h = hierarchy_of(&stdlib::filter());
        assert!(h.is_hierarchic());
        assert!(h.is_well_formed());
        // The root class contains the input clock ^y.
        let root = h.roots()[0];
        assert!(h.class_members(root).iter().any(|c| *c == Clock::tick("y")));
    }

    #[test]
    fn producer_and_consumer_are_hierarchic_but_their_composition_is_not() {
        assert!(hierarchy_of(&stdlib::producer()).is_hierarchic());
        assert!(hierarchy_of(&stdlib::consumer()).is_hierarchic());
        let h = hierarchy_of(&stdlib::producer_consumer());
        assert!(!h.is_hierarchic());
        assert_eq!(h.roots().len(), 2);
    }

    #[test]
    fn filter_merge_composition_has_two_roots() {
        let h = hierarchy_of(&stdlib::filter_merge());
        assert!(h.is_well_formed());
        assert_eq!(h.roots().len(), 2);
    }

    #[test]
    fn ltta_has_one_root_per_device_clock() {
        let h = hierarchy_of(&stdlib::ltta());
        assert!(h.is_well_formed(), "{:?}", h.ill_formed_reasons());
        // Writer (cw), two bus buffers (their alternating states) and the
        // reader (cr): four independent pacemakers, as in the paper's figure.
        assert_eq!(h.roots().len(), 4);
    }

    #[test]
    fn ill_formed_hierarchy_is_detected() {
        use signal_lang::{Expr, ProcessBuilder};
        // x = y and z | z = y when y : ^z ~ [y] forces ^y ~ [y].
        let def = ProcessBuilder::new("ill")
            .define("x", Expr::var("y").and(Expr::var("z")))
            .define("z", Expr::var("y").when(Expr::var("y")))
            .build()
            .unwrap();
        let h = hierarchy_of(&def);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn signals_under_a_root_cover_the_whole_tree_for_endochronous_processes() {
        let h = hierarchy_of(&stdlib::buffer());
        let root = h.roots()[0];
        let signals = h.signals_under(root);
        assert!(signals.contains("x"));
        assert!(signals.contains("y"));
        assert!(signals.contains("t"));
    }

    #[test]
    fn render_lists_every_root() {
        let h = hierarchy_of(&stdlib::producer_consumer());
        let text = h.render();
        assert!(text.contains("^a"));
        assert!(text.contains("^b"));
    }
}
