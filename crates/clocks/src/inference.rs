//! The clock inference system `P : R` of Section 3.2.
//!
//! Deduction starts from the assignment of clock and scheduling relations to
//! the primitive equations of the kernel:
//!
//! * delay `x = y $ init v` — `^x = ^y`, no scheduling relation;
//! * sampling `x = y when z` — `^x = ^y ∧ [z]`, `y →^x x`;
//! * merge `x = y default z` — `^x = ^y ∨ ^z`, `y →^y x`, `z →(^z \ ^y) x`;
//! * functional `x = f(y, z)` — `^x = ^y = ^z`, `y →^x x`, `z →^x x`;
//!
//! and explicit clock constraints are carried over verbatim.  The relation
//! of a composition is the union of the relations of its components.

use signal_lang::{Atom, KernelEq, KernelProcess};

use crate::clock::ClockExpr;
use crate::relation::{SchedNode, TimingRelations};

/// Infers the timing relations of a kernel process.
pub fn infer(process: &KernelProcess) -> TimingRelations {
    let mut relations = TimingRelations::new();
    for eq in process.equations() {
        infer_equation(eq, &mut relations);
    }
    for (left, right) in process.constraints() {
        relations.equate(ClockExpr::from_ast(left), ClockExpr::from_ast(right));
    }
    relations
}

fn infer_equation(eq: &KernelEq, relations: &mut TimingRelations) {
    match eq {
        KernelEq::Delay { out, arg, .. } => {
            relations.equate(ClockExpr::tick(out.clone()), ClockExpr::tick(arg.clone()));
        }
        KernelEq::When { out, arg, cond } => {
            let sample = ClockExpr::on_true(cond.clone());
            match arg {
                Atom::Var(y) => {
                    relations.equate(
                        ClockExpr::tick(out.clone()),
                        ClockExpr::tick(y.clone()).and(sample),
                    );
                    relations.schedule(
                        SchedNode::Signal(y.clone()),
                        SchedNode::Signal(out.clone()),
                        ClockExpr::tick(out.clone()),
                    );
                }
                Atom::Const(_) => {
                    relations.equate(ClockExpr::tick(out.clone()), sample);
                }
            }
        }
        KernelEq::Default { out, left, right } => match (left, right) {
            (Atom::Var(y), Atom::Var(z)) => {
                relations.equate(
                    ClockExpr::tick(out.clone()),
                    ClockExpr::tick(y.clone()).or(ClockExpr::tick(z.clone())),
                );
                relations.schedule(
                    SchedNode::Signal(y.clone()),
                    SchedNode::Signal(out.clone()),
                    ClockExpr::tick(y.clone()),
                );
                relations.schedule(
                    SchedNode::Signal(z.clone()),
                    SchedNode::Signal(out.clone()),
                    ClockExpr::tick(z.clone()).diff(ClockExpr::tick(y.clone())),
                );
            }
            (Atom::Var(y), Atom::Const(_)) => {
                // `x = y default k`: the constant alternative does not
                // constrain the clock of x beyond ^y ⊆ ^x.
                relations.include(ClockExpr::tick(y.clone()), ClockExpr::tick(out.clone()));
                relations.schedule(
                    SchedNode::Signal(y.clone()),
                    SchedNode::Signal(out.clone()),
                    ClockExpr::tick(y.clone()),
                );
            }
            (Atom::Const(_), Atom::Var(z)) => {
                relations.include(ClockExpr::tick(z.clone()), ClockExpr::tick(out.clone()));
            }
            (Atom::Const(_), Atom::Const(_)) => {}
        },
        KernelEq::Func { out, args, .. } => {
            for arg in args {
                if let Atom::Var(y) = arg {
                    relations.equate(ClockExpr::tick(out.clone()), ClockExpr::tick(y.clone()));
                    relations.schedule(
                        SchedNode::Signal(y.clone()),
                        SchedNode::Signal(out.clone()),
                        ClockExpr::tick(out.clone()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    #[test]
    fn buffer_relations_match_the_paper() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let relations = infer(&kernel);
        let rendered = relations.to_string();
        // ^s = ^t from the delay, ^x = [t] and ^y = [not t] from the
        // explicit constraints, ^r = ^x ^+ ^y from the constraint.
        assert!(rendered.contains("^s = ^t"));
        assert!(rendered.contains("^x = [t]"));
        assert!(rendered.contains("^y = [not t]"));
        assert!(rendered.contains("^r = (^x ^+ ^y)"));
        // Scheduling: y before r (through the default), r before x.
        assert!(relations
            .scheduling
            .iter()
            .any(|e| e.from.signal().as_str() == "y" && e.to.signal().as_str() == "r"));
        assert!(relations
            .scheduling
            .iter()
            .any(|e| e.from.signal().as_str() == "r" && e.to.signal().as_str() == "x"));
    }

    #[test]
    fn delay_produces_no_scheduling_edge() {
        let kernel = stdlib::filter().normalize().unwrap();
        let relations = infer(&kernel);
        // z = y $ init true contributes ^z = ^y but no edge from y to z.
        assert!(!relations
            .scheduling
            .iter()
            .any(|e| e.to.signal().as_str() == "z"));
        assert!(relations
            .equalities
            .iter()
            .any(|(l, r)| l.to_string() == "^z" && r.to_string() == "^y"));
    }

    #[test]
    fn default_with_two_signals_guards_the_alternative_with_a_difference() {
        let kernel = stdlib::current().normalize().unwrap();
        let relations = infer(&kernel);
        let diffs = relations.diff_occurrences();
        assert!(
            !diffs.is_empty(),
            "r = y default (r $ init false) has a guarded alternative"
        );
    }

    #[test]
    fn constant_default_only_bounds_the_clock() {
        let kernel = stdlib::consumer().normalize().unwrap();
        let relations = infer(&kernel);
        assert!(
            !relations.inclusions.is_empty(),
            "x default 1 contributes an inclusion, not an equality"
        );
    }
}
