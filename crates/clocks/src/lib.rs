//! The clock calculus of Signal/Polychrony.
//!
//! This crate implements the formal analysis framework of Section 3 of
//! *Compositional design of isochronous systems* (Talpin, Ouy, Besnard,
//! Le Guernic — DATE 2008):
//!
//! * clocks and clock expressions ([`clock`]),
//! * synchronization and scheduling relations ([`relation`]),
//! * the clock inference system `P : R` ([`inference`]),
//! * a BDD-backed Boolean algebra deciding `R ⊨ S` ([`bdd`], [`algebra`]),
//! * the clock hierarchy of Definition 5 ([`hierarchy`]),
//! * disjunctive forms of Section 3.4 ([`disjunctive`]),
//! * the reinforced scheduling graph and the acyclicity check of
//!   Definition 8 ([`schedule`]),
//! * the aggregated verdicts — well-clocked, compilable, hierarchic,
//!   endochronous — of Section 4 ([`analysis`]),
//! * the rate relations deriving FIFO bounds between clock domains
//!   from the same algebra ([`rate`]),
//! * and k-periodic clock words extending those bounds to decimator- and
//!   burst-shaped edges ([`word`]).
//!
//! # Example
//!
//! ```
//! use clocks::ClockAnalysis;
//! use signal_lang::stdlib;
//!
//! let buffer = stdlib::buffer().normalize()?;
//! let analysis = ClockAnalysis::analyze(&buffer);
//! assert!(analysis.is_endochronous());
//! assert_eq!(analysis.roots().len(), 1);
//! # Ok::<(), signal_lang::SignalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod analysis;
pub mod bdd;
pub mod clock;
pub mod disjunctive;
pub mod dot;
pub mod hierarchy;
pub mod inference;
pub mod rate;
pub mod relation;
pub mod schedule;
pub mod word;

pub use algebra::{ClockAlgebra, VariableOrder};
pub use analysis::ClockAnalysis;
pub use clock::{Clock, ClockExpr};
pub use disjunctive::DisjunctiveForm;
pub use hierarchy::{ClassId, ClockHierarchy};
pub use rate::RateRelation;
pub use relation::{SchedEdge, SchedNode, TimingRelations};
pub use schedule::{Acyclicity, SchedulingGraph};
pub use word::{periodic_systems, word_of_expr, ClockWord, PeriodicSystem};
