//! Rate relations between clocks: the buffer-sizing side of the calculus.
//!
//! The paper's deployment story (Section 5) replaces the synchronous
//! broadcast between components by FIFO channels.  The same relation `R`
//! that proves the composition isochronous also says how far a producer
//! can run ahead of a consumer: if every instant where the producer emits
//! is an instant where the consumer is ready to read, at most one token is
//! ever in flight — the one-place buffer of the paper's concurrent scheme
//! is not a heuristic, it is a theorem of `R`.
//!
//! [`RateRelation::between`] classifies a producer/consumer clock pair
//! under `R`:
//!
//! * [`RateRelation::Synchronous`] — the clocks are equal: production and
//!   consumption opportunities coincide, bound **1**;
//! * [`RateRelation::Subsampled`] — the producer's clock is included in
//!   the consumer's: the producer emits (at most) whenever the consumer
//!   can read, bound **1**;
//! * [`RateRelation::Alternating`] — the consumer reads at a sampling
//!   `[t]`/`[not t]` of an *alternating* register state `t` (`t = not
//!   (t $ init v)`) and the producer emits within `^t`: the two phases
//!   strictly interleave, so at most one token accumulates per phase plus
//!   the one priming the register — bound **2** (the bound that lets a
//!   register-broken feedback loop absorb its initializing token);
//! * [`RateRelation::KPeriodic`] — producer and consumer clocks both
//!   resolve to k-periodic [`ClockWord`]s over the registers' phase
//!   structure (one-hot delay rings, alternating states — see
//!   [`crate::word`]): the bound is the maximum backlog of the producer
//!   word against the consumer word, which classifies decimator- and
//!   burst-shaped edges with finite bounds beyond 2;
//! * [`RateRelation::Unbounded`] — `R` proves none of the above: the
//!   producer can emit arbitrarily many tokens between consumer
//!   presences, and no finite capacity can be derived.
//!
//! The classification is *conservative*: `Unbounded` never means "will
//! overflow", only "the calculus cannot bound it".

use std::collections::BTreeSet;
use std::fmt;

use signal_lang::{Atom, KernelEq, KernelProcess, Name, PrimOp};

use crate::algebra::ClockAlgebra;
use crate::clock::{Clock, ClockExpr};
use crate::word::ClockWord;

/// How a producer clock relates to a consumer clock under the relation `R`
/// of a process — and hence how many tokens can sit in a FIFO from one to
/// the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateRelation {
    /// The clocks are equal under `R`: every emission instant is a read
    /// instant.  At most one token is in flight.
    Synchronous,
    /// The producer's clock is (strictly) included in the consumer's:
    /// emissions are a subset of read opportunities.  At most one token is
    /// in flight.
    Subsampled,
    /// Producer and consumer live inside the tick of an alternating
    /// register state (`t = not (t $ init v)`) whose value samplings
    /// strictly interleave; the consumer reads at one of the samplings.
    /// At most one token per phase plus the register's priming token: two.
    Alternating {
        /// The alternating boolean state whose samplings pace the edge.
        state: Name,
    },
    /// Producer and consumer clocks resolve to k-periodic words over a
    /// register-determined phase structure; the bound is the words' max
    /// backlog under aligned reaction sequences (at least one slot).
    KPeriodic {
        /// The producer's emission word.
        producer: ClockWord,
        /// The consumer's read word.
        consumer: ClockWord,
        /// `sup_n producer(n) − consumer(n−1)`: the aligned-schedule
        /// FIFO occupancy.
        backlog: usize,
    },
    /// `R` entails no finite relation between the clocks: the producer can
    /// run arbitrarily far ahead of the consumer.
    Unbounded,
}

impl RateRelation {
    /// The FIFO occupancy bound implied by the relation: the maximum
    /// number of tokens the producer can have emitted and the consumer not
    /// yet consumed, or `None` when no finite bound is derivable.
    pub fn bound(&self) -> Option<usize> {
        match self {
            RateRelation::Synchronous | RateRelation::Subsampled => Some(1),
            RateRelation::Alternating { .. } => Some(2),
            RateRelation::KPeriodic { backlog, .. } => Some((*backlog).max(1)),
            RateRelation::Unbounded => None,
        }
    }

    /// Classifies a producer/consumer pair of k-periodic words directly:
    /// the word-level backlog with no algebra in the loop.  Used when the
    /// two words come from *different* components' local analyses (the
    /// global algebra of a partially-analyzed composition knows neither
    /// side's phase registers).
    pub fn between_words(producer: &ClockWord, consumer: &ClockWord) -> RateRelation {
        match ClockWord::backlog(producer, consumer) {
            Some(backlog) => RateRelation::KPeriodic {
                producer: producer.clone(),
                consumer: consumer.clone(),
                backlog,
            },
            None => RateRelation::Unbounded,
        }
    }

    /// Classifies a producer/consumer clock pair under the relation held
    /// by `algebra`, using equality and inclusion only (no access to the
    /// process syntax, so the alternating-register refinement is not
    /// applied — see [`RateRelation::between_in`]).
    ///
    /// Clock expressions mentioning signals unknown to the algebra are
    /// conservatively [`RateRelation::Unbounded`].
    pub fn between(
        algebra: &mut ClockAlgebra,
        producer: &ClockExpr,
        consumer: &ClockExpr,
    ) -> RateRelation {
        if !knows_atoms(algebra, producer) || !knows_atoms(algebra, consumer) {
            return RateRelation::Unbounded;
        }
        RateRelation::classify(algebra, producer, consumer)
    }

    /// Equality/inclusion classification of clocks already known to the
    /// algebra (encoding an unknown signal panics, so callers guard with
    /// [`knows_atoms`] first).
    fn classify(
        algebra: &mut ClockAlgebra,
        producer: &ClockExpr,
        consumer: &ClockExpr,
    ) -> RateRelation {
        if algebra.clocks_equal(producer, consumer) {
            return RateRelation::Synchronous;
        }
        if algebra.clock_included(producer, consumer) {
            return RateRelation::Subsampled;
        }
        RateRelation::Unbounded
    }

    /// Classifies a producer/consumer clock pair under the relation held
    /// by `algebra`, refining [`RateRelation::between`] with the
    /// alternating-register states of `kernel`: a consumer reading at
    /// `[t]` or `[not t]` of an alternating `t`, with the producer inside
    /// `^t`, is [`RateRelation::Alternating`] (bound 2) instead of
    /// unbounded.  When that refinement does not apply either, both
    /// clocks are resolved against the kernel's k-periodic phase systems
    /// ([`crate::word::periodic_systems`]): a pair of resolvable words
    /// with a finite backlog is [`RateRelation::KPeriodic`].
    pub fn between_in(
        kernel: &KernelProcess,
        algebra: &mut ClockAlgebra,
        producer: &ClockExpr,
        consumer: &ClockExpr,
    ) -> RateRelation {
        if !knows_atoms(algebra, producer) || !knows_atoms(algebra, consumer) {
            return RateRelation::Unbounded;
        }
        let relation = RateRelation::classify(algebra, producer, consumer);
        if relation != RateRelation::Unbounded {
            return relation;
        }
        for state in alternating_states(kernel) {
            if !algebra.has_signal(state.as_str()) {
                continue;
            }
            let tick = ClockExpr::Atom(Clock::Tick(state.clone()));
            let phases = [
                ClockExpr::Atom(Clock::True(state.clone())),
                ClockExpr::Atom(Clock::False(state.clone())),
            ];
            let consumer_is_phase = phases
                .iter()
                .any(|phase| algebra.clocks_equal(consumer, phase));
            if consumer_is_phase && algebra.clock_included(producer, &tick) {
                return RateRelation::Alternating { state };
            }
        }
        let systems = crate::word::periodic_systems(kernel);
        if let (Some(producer_word), Some(consumer_word)) = (
            crate::word::word_of_expr(producer, &systems, algebra),
            crate::word::word_of_expr(consumer, &systems, algebra),
        ) {
            if let Some(backlog) = ClockWord::backlog(&producer_word, &consumer_word) {
                return RateRelation::KPeriodic {
                    producer: producer_word,
                    consumer: consumer_word,
                    backlog,
                };
            }
        }
        RateRelation::Unbounded
    }
}

impl fmt::Display for RateRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateRelation::Synchronous => write!(f, "synchronous"),
            RateRelation::Subsampled => write!(f, "subsampled"),
            RateRelation::Alternating { state } => write!(f, "alternating on {state}"),
            RateRelation::KPeriodic {
                producer,
                consumer,
                backlog,
            } => write!(
                f,
                "k-periodic: producer word {producer}, consumer word {consumer}, \
                 backlog {backlog}"
            ),
            RateRelation::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// The alternating register states of a process: boolean signals `t` with
/// `s = t $ init v` and `t = not s` — their true and false samplings
/// strictly interleave instant by instant (the pacemaker of the paper's
/// one-place buffer).
pub fn alternating_states(kernel: &KernelProcess) -> BTreeSet<Name> {
    let mut negations: BTreeSet<(&Name, &Name)> = BTreeSet::new();
    for eq in kernel.equations() {
        if let KernelEq::Func { out, op, args } = eq {
            if *op == PrimOp::Not {
                if let [Atom::Var(arg)] = args.as_slice() {
                    negations.insert((out, arg));
                }
            }
        }
    }
    kernel
        .registers()
        .into_iter()
        .filter(|(out, arg, _)| negations.contains(&(arg, out)))
        .map(|(_, arg, _)| arg)
        .collect()
}

/// Returns `true` when every atomic clock of the expression names a signal
/// the algebra knows (encoding an unknown signal would panic) — the guard
/// every classification entry point applies before touching the BDD, and
/// the one callers deriving over *partially-analyzed* compositions rely
/// on: an interface-abstracted composite's algebra does not know the
/// components' internal signals.
pub fn knows_atoms(algebra: &ClockAlgebra, expr: &ClockExpr) -> bool {
    let mut atoms = Vec::new();
    expr.atoms(&mut atoms);
    atoms
        .iter()
        .all(|clock| algebra.has_signal(clock.signal().as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::stdlib;

    fn algebra_of(def: &signal_lang::ProcessDef) -> (KernelProcess, ClockAlgebra) {
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        let algebra = ClockAlgebra::new(&kernel, &relations);
        (kernel, algebra)
    }

    #[test]
    fn bounds_match_the_relation() {
        assert_eq!(RateRelation::Synchronous.bound(), Some(1));
        assert_eq!(RateRelation::Subsampled.bound(), Some(1));
        assert_eq!(
            RateRelation::Alternating {
                state: Name::from("t")
            }
            .bound(),
            Some(2)
        );
        assert_eq!(RateRelation::Unbounded.bound(), None);
    }

    #[test]
    fn the_buffer_state_is_detected_as_alternating() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let states = alternating_states(&kernel);
        assert!(states.contains("t"), "states: {states:?}");
        // The producer has registers but none alternate.
        let kernel = stdlib::producer().normalize().unwrap();
        assert!(alternating_states(&kernel).is_empty());
    }

    #[test]
    fn equal_clocks_are_synchronous() {
        let (_, mut algebra) = algebra_of(&stdlib::producer_consumer());
        // The composition relates the producer's emission clock [not a] to
        // the consumer's read clock [b] through the shared signal x.
        assert_eq!(
            RateRelation::between(
                &mut algebra,
                &ClockExpr::on_false("a"),
                &ClockExpr::on_true("b"),
            ),
            RateRelation::Synchronous
        );
    }

    #[test]
    fn included_clocks_are_subsampled() {
        let (_, mut algebra) = algebra_of(&stdlib::filter());
        assert_eq!(
            RateRelation::between(&mut algebra, &ClockExpr::tick("x"), &ClockExpr::tick("y")),
            RateRelation::Subsampled
        );
        // The other direction is not derivable without more structure.
        assert_eq!(
            RateRelation::between(&mut algebra, &ClockExpr::tick("y"), &ClockExpr::tick("x")),
            RateRelation::Unbounded
        );
    }

    #[test]
    fn alternating_samplings_get_the_two_place_bound() {
        let (kernel, mut algebra) = algebra_of(&stdlib::buffer());
        // ^r = ^t is the master; the output x is read at [t], the input y
        // arrives at [not t]: both phases of the alternating state.
        for consumer in [ClockExpr::tick("x"), ClockExpr::tick("y")] {
            let relation =
                RateRelation::between_in(&kernel, &mut algebra, &ClockExpr::tick("r"), &consumer);
            assert_eq!(
                relation,
                RateRelation::Alternating {
                    state: Name::from("t")
                },
                "consumer {consumer}"
            );
            assert_eq!(relation.bound(), Some(2));
        }
        // Phase against phase is still derivable through the master.
        assert_eq!(
            RateRelation::between_in(
                &kernel,
                &mut algebra,
                &ClockExpr::tick("y"),
                &ClockExpr::tick("x"),
            ),
            RateRelation::Alternating {
                state: Name::from("t")
            }
        );
    }

    #[test]
    fn unrelated_clocks_are_unbounded() {
        let (kernel, mut algebra) = algebra_of(&stdlib::producer_consumer());
        // ^a and ^b are the two free environment paces: no relation.
        assert_eq!(
            RateRelation::between_in(
                &kernel,
                &mut algebra,
                &ClockExpr::tick("a"),
                &ClockExpr::tick("b"),
            ),
            RateRelation::Unbounded
        );
    }

    #[test]
    fn unknown_signals_are_conservatively_unbounded() {
        let (kernel, mut algebra) = algebra_of(&stdlib::buffer());
        assert_eq!(
            RateRelation::between_in(
                &kernel,
                &mut algebra,
                &ClockExpr::tick("nosuch"),
                &ClockExpr::tick("x"),
            ),
            RateRelation::Unbounded
        );
    }

    #[test]
    fn rate_relations_render() {
        assert_eq!(RateRelation::Synchronous.to_string(), "synchronous");
        assert_eq!(
            RateRelation::Alternating {
                state: Name::from("t")
            }
            .to_string(),
            "alternating on t"
        );
        assert_eq!(RateRelation::Unbounded.to_string(), "unbounded");
    }
}
