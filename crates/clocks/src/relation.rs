//! Synchronization and scheduling relations.

use std::fmt;

use signal_lang::Name;

use crate::clock::ClockExpr;

/// A node of the scheduling graph: either the value of a signal or its
/// clock (the paper's grammar `a, b ::= x | ^x`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedNode {
    /// The value of the signal.
    Signal(Name),
    /// The clock (presence) of the signal.
    Clock(Name),
}

impl SchedNode {
    /// The signal the node refers to.
    pub fn signal(&self) -> &Name {
        match self {
            SchedNode::Signal(n) | SchedNode::Clock(n) => n,
        }
    }
}

impl fmt::Display for SchedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedNode::Signal(n) => write!(f, "{n}"),
            SchedNode::Clock(n) => write!(f, "^{n}"),
        }
    }
}

/// A scheduling relation `a →c b`: when the clock `c` is present, the
/// calculation of `b` cannot be scheduled before that of `a`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedEdge {
    /// The prerequisite node.
    pub from: SchedNode,
    /// The dependent node.
    pub to: SchedNode,
    /// The clock at which the dependence is active.
    pub guard: ClockExpr,
}

impl fmt::Display for SchedEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->[{}] {}", self.from, self.guard, self.to)
    }
}

/// The timing relations `R` inferred from a process: clock equalities,
/// clock inclusions and scheduling relations.
#[derive(Debug, Clone, Default)]
pub struct TimingRelations {
    /// Clock equalities `e1 = e2`.
    pub equalities: Vec<(ClockExpr, ClockExpr)>,
    /// Clock inclusions `e1 ⊆ e2` (produced by merges with constant
    /// alternatives, whose output clock is only bounded from below).
    pub inclusions: Vec<(ClockExpr, ClockExpr)>,
    /// Scheduling relations.
    pub scheduling: Vec<SchedEdge>,
}

impl TimingRelations {
    /// Creates an empty relation set.
    pub fn new() -> Self {
        TimingRelations::default()
    }

    /// Records the equality `left = right`.
    pub fn equate(&mut self, left: ClockExpr, right: ClockExpr) {
        self.equalities.push((left, right));
    }

    /// Records the inclusion `small ⊆ large`.
    pub fn include(&mut self, small: ClockExpr, large: ClockExpr) {
        self.inclusions.push((small, large));
    }

    /// Records the scheduling relation `from →guard to`.
    pub fn schedule(&mut self, from: SchedNode, to: SchedNode, guard: ClockExpr) {
        self.scheduling.push(SchedEdge { from, to, guard });
    }

    /// Concatenates two relation sets (the relation of a composition is the
    /// union of the relations of its components).
    pub fn merge(&mut self, other: &TimingRelations) {
        self.equalities.extend(other.equalities.iter().cloned());
        self.inclusions.extend(other.inclusions.iter().cloned());
        self.scheduling.extend(other.scheduling.iter().cloned());
    }

    /// Every `Diff` (symmetric-difference) sub-expression occurring anywhere
    /// in the relations, as `(minuend, subtrahend)` pairs.  Section 3.4
    /// requires each of them to be eliminable for the process to be in
    /// disjunctive form.
    pub fn diff_occurrences(&self) -> Vec<(ClockExpr, ClockExpr)> {
        let mut out = Vec::new();
        for (l, r) in self.equalities.iter().chain(self.inclusions.iter()) {
            l.diffs(&mut out);
            r.diffs(&mut out);
        }
        for edge in &self.scheduling {
            edge.guard.diffs(&mut out);
        }
        out
    }
}

impl fmt::Display for TimingRelations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, r) in &self.equalities {
            writeln!(f, "{l} = {r}")?;
        }
        for (l, r) in &self.inclusions {
            writeln!(f, "{l} <= {r}")?;
        }
        for e in &self.scheduling {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;

    #[test]
    fn diff_occurrences_are_found_in_guards_and_equalities() {
        let mut r = TimingRelations::new();
        r.equate(
            ClockExpr::tick("x"),
            ClockExpr::tick("y").diff(ClockExpr::on_true("t")),
        );
        r.schedule(
            SchedNode::Signal(Name::from("z")),
            SchedNode::Signal(Name::from("x")),
            ClockExpr::tick("z").diff(ClockExpr::tick("y")),
        );
        assert_eq!(r.diff_occurrences().len(), 2);
    }

    #[test]
    fn merge_concatenates_relations() {
        let mut a = TimingRelations::new();
        a.equate(ClockExpr::tick("x"), ClockExpr::tick("y"));
        let mut b = TimingRelations::new();
        b.include(ClockExpr::tick("z"), ClockExpr::tick("x"));
        b.schedule(
            SchedNode::Clock(Name::from("x")),
            SchedNode::Signal(Name::from("x")),
            ClockExpr::tick("x"),
        );
        a.merge(&b);
        assert_eq!(a.equalities.len(), 1);
        assert_eq!(a.inclusions.len(), 1);
        assert_eq!(a.scheduling.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = SchedEdge {
            from: SchedNode::Signal(Name::from("y")),
            to: SchedNode::Signal(Name::from("x")),
            guard: ClockExpr::Atom(Clock::tick("x")),
        };
        assert_eq!(e.to_string(), "y ->[^x] x");
        assert_eq!(SchedNode::Clock(Name::from("x")).to_string(), "^x");
    }
}
