//! The scheduling graph (Sections 3.5 and 3.6).
//!
//! Nodes are signals `x` and clocks `^x`; edges `a →c b` mean that, at the
//! instants of the clock `c`, the computation of `b` cannot be scheduled
//! before that of `a`.  The graph inferred from the equations is *reinforced*
//! with the constraints induced by the calculation of clocks:
//!
//! 1. `^x →^x x` — a signal cannot be computed before its clock;
//! 2. if `^x = [y]` (or `[not y]`) then `y →^y ^x` — a sampled clock needs
//!    the value of the sampling signal;
//! 3. if `^x = ^y f ^z` then `^y →^y ^x` and `^z →^z ^x` — a derived clock
//!    needs its operands.
//!
//! Rules 2 and 3 are *oriented by the clock hierarchy*: only operands whose
//! class is not dominated by the class of `^x` contribute an edge, which
//! reflects the fact that the generated code computes each clock class from
//! its dominators downwards (a root class is the activation of the step
//! function itself and needs no computation).  Without this orientation,
//! every pair of mutually-defined clocks (`^r = ^x ∨ ^y` together with
//! `^x = ^r ∧ [t]` in the buffer) would produce a spurious cycle.
//!
//! Code can be generated only if the graph is acyclic in the clocked sense
//! of Definition 8: the transitive closure `a ⇝e a` of every cycle must have
//! a null clock `e` under `R`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use signal_lang::KernelProcess;

use crate::algebra::ClockAlgebra;
use crate::clock::{Clock, ClockExpr};
use crate::hierarchy::ClockHierarchy;
use crate::relation::{SchedEdge, SchedNode, TimingRelations};

/// The reinforced scheduling graph of a process.
#[derive(Debug, Clone)]
pub struct SchedulingGraph {
    nodes: Vec<SchedNode>,
    index: BTreeMap<SchedNode, usize>,
    /// Adjacency: `edges[i]` lists `(target, guard)` pairs.
    edges: Vec<Vec<(usize, ClockExpr)>>,
}

impl SchedulingGraph {
    /// Builds the reinforced scheduling graph of a process.
    pub fn build(
        process: &KernelProcess,
        relations: &TimingRelations,
        hierarchy: &ClockHierarchy,
    ) -> Self {
        let mut graph = SchedulingGraph {
            nodes: Vec::new(),
            index: BTreeMap::new(),
            edges: Vec::new(),
        };
        for name in process.signal_set() {
            graph.add_node(SchedNode::Clock(name.clone()));
            graph.add_node(SchedNode::Signal(name.clone()));
        }
        // Inferred scheduling relations.
        for SchedEdge { from, to, guard } in &relations.scheduling {
            graph.add_edge(from.clone(), to.clone(), guard.clone());
        }
        // Rule 1: ^x -> x.
        for name in process.signal_set() {
            graph.add_edge(
                SchedNode::Clock(name.clone()),
                SchedNode::Signal(name.clone()),
                ClockExpr::tick(name.clone()),
            );
        }
        // Rules 2 and 3: clock computation order, oriented by the hierarchy.
        for (l, r) in &relations.equalities {
            graph.add_clock_computation_edges(l, r, hierarchy);
            graph.add_clock_computation_edges(r, l, hierarchy);
        }
        graph
    }

    fn add_clock_computation_edges(
        &mut self,
        atom_side: &ClockExpr,
        expr_side: &ClockExpr,
        hierarchy: &ClockHierarchy,
    ) {
        let Some(Clock::Tick(x)) = atom_side.as_atom() else {
            return;
        };
        let Some(target_class) = hierarchy.class_of(&Clock::tick(x.clone())) else {
            return;
        };
        let mut operands: Vec<Clock> = Vec::new();
        match expr_side {
            ClockExpr::Atom(c @ (Clock::True(_) | Clock::False(_))) => operands.push(c.clone()),
            ClockExpr::And(a, b) | ClockExpr::Or(a, b) | ClockExpr::Diff(a, b) => {
                for operand in [a, b] {
                    if let Some(c) = operand.as_atom() {
                        operands.push(c.clone());
                    }
                }
            }
            _ => {}
        }
        for operand in operands {
            let y = operand.signal().clone();
            let operand_class = hierarchy.class_of(&Clock::tick(y.clone()));
            // Only information coming from outside the sub-tree of ^x can be
            // a prerequisite for computing ^x; operands below ^x are
            // themselves derived from it.
            let from_below = operand_class
                .map(|k| k != target_class && hierarchy.dominates_star(target_class, k))
                .unwrap_or(false);
            let same_class =
                operand_class == Some(target_class) && matches!(operand, Clock::Tick(_));
            if from_below || same_class {
                continue;
            }
            let (from, guard) = match operand {
                Clock::Tick(_) => (SchedNode::Clock(y.clone()), ClockExpr::tick(y.clone())),
                Clock::True(_) | Clock::False(_) => {
                    (SchedNode::Signal(y.clone()), ClockExpr::tick(y.clone()))
                }
            };
            self.add_edge(from, SchedNode::Clock(x.clone()), guard);
        }
    }

    fn add_node(&mut self, node: SchedNode) -> usize {
        if let Some(&i) = self.index.get(&node) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(node.clone());
        self.index.insert(node, i);
        self.edges.push(Vec::new());
        i
    }

    /// Adds the edge `from →guard to`.
    pub fn add_edge(&mut self, from: SchedNode, to: SchedNode, guard: ClockExpr) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        if !self.edges[f].iter().any(|(n, g)| *n == t && *g == guard) {
            self.edges[f].push((t, guard));
        }
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[SchedNode] {
        &self.nodes
    }

    /// The number of edges of the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Iterates over every edge as `(from, to, guard)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (&SchedNode, &SchedNode, &ClockExpr)> + '_ {
        self.edges.iter().enumerate().flat_map(move |(f, outs)| {
            outs.iter()
                .map(move |(t, g)| (&self.nodes[f], &self.nodes[*t], g))
        })
    }

    /// A topological order of the nodes, ignoring guards (every edge is
    /// treated as always active).  Returns `Err` with the nodes involved in
    /// cycles when no such order exists.
    pub fn topological_order(&self) -> Result<Vec<SchedNode>, Vec<SchedNode>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for outs in &self.edges {
            for (t, _) in outs {
                indegree[*t] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Deterministic order: smallest node first.
        ready.sort_by(|a, b| self.nodes[*b].cmp(&self.nodes[*a]));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(self.nodes[i].clone());
            for (t, _) in &self.edges[i] {
                indegree[*t] -= 1;
                if indegree[*t] == 0 {
                    ready.push(*t);
                    ready.sort_by(|a, b| self.nodes[*b].cmp(&self.nodes[*a]));
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let in_order: BTreeSet<&SchedNode> = order.iter().collect();
            Err(self
                .nodes
                .iter()
                .filter(|n| !in_order.contains(n))
                .cloned()
                .collect())
        }
    }

    /// Strongly connected components of the unguarded graph with more than
    /// one node (or with a self loop): only these can host clocked cycles.
    fn suspicious_components(&self) -> Vec<Vec<usize>> {
        // Iterative Tarjan.
        let n = self.nodes.len();
        let mut index_counter = 0usize;
        let mut indices = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut components: Vec<Vec<usize>> = Vec::new();

        #[derive(Clone)]
        struct Frame {
            node: usize,
            edge: usize,
        }

        for start in 0..n {
            if indices[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                node: start,
                edge: 0,
            }];
            indices[start] = index_counter;
            lowlink[start] = index_counter;
            index_counter += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last().cloned() {
                let v = frame.node;
                if frame.edge < self.edges[v].len() {
                    let (w, _) = self.edges[v][frame.edge];
                    call_stack.last_mut().expect("frame").edge += 1;
                    if indices[w] == usize::MAX {
                        indices[w] = index_counter;
                        lowlink[w] = index_counter;
                        index_counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { node: w, edge: 0 });
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(indices[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        lowlink[parent.node] = lowlink[parent.node].min(lowlink[v]);
                    }
                    if lowlink[v] == indices[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("non-empty SCC stack");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let has_self_loop = component.len() == 1
                            && self.edges[component[0]]
                                .iter()
                                .any(|(t, _)| *t == component[0]);
                        if component.len() > 1 || has_self_loop {
                            components.push(component);
                        }
                    }
                }
            }
        }
        components
    }

    /// Checks Definition 8: the process is acyclic iff, for every node `a`,
    /// the clock of `a ⇝ a` in the transitive closure is null under `R`.
    ///
    /// Cycles of the unguarded graph are first isolated with a strongly
    /// connected component decomposition; the clocked closure is only
    /// computed inside suspicious components, which keeps the check cheap on
    /// the (common) acyclic case.
    pub fn acyclicity(&self, algebra: &mut ClockAlgebra) -> Acyclicity {
        let mut real_cycles = Vec::new();
        for component in self.suspicious_components() {
            let local: BTreeMap<usize, usize> = component
                .iter()
                .enumerate()
                .map(|(local, global)| (*global, local))
                .collect();
            let k = component.len();
            // Guarded adjacency matrix restricted to the component.
            let zero = algebra.bdd_mut().zero();
            let mut matrix = vec![vec![zero; k]; k];
            for (gi, &global_from) in component.iter().enumerate() {
                for (to, guard) in &self.edges[global_from] {
                    if let Some(&gj) = local.get(to) {
                        let enc = algebra.encode_expr(guard);
                        matrix[gi][gj] = algebra.bdd_mut().or(matrix[gi][gj], enc);
                    }
                }
            }
            // Algebraic transitive closure (Floyd–Warshall over the Boolean
            // semiring of guards).
            for mid in 0..k {
                for i in 0..k {
                    for j in 0..k {
                        let through = algebra.bdd_mut().and(matrix[i][mid], matrix[mid][j]);
                        matrix[i][j] = algebra.bdd_mut().or(matrix[i][j], through);
                    }
                }
            }
            for (i, &global) in component.iter().enumerate() {
                let self_guard = matrix[i][i];
                // The cycle is harmless iff its guard is null under R.
                let relation = algebra.relation();
                let conj = algebra.bdd_mut().and(relation, self_guard);
                if !algebra.bdd_mut().is_false(conj) {
                    real_cycles.push(self.nodes[global].clone());
                }
            }
        }
        Acyclicity { real_cycles }
    }
}

impl fmt::Display for SchedulingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (from, to, guard) in self.iter_edges() {
            writeln!(f, "{from} ->[{guard}] {to}")?;
        }
        Ok(())
    }
}

/// The result of the acyclicity check of Definition 8.
#[derive(Debug, Clone, Default)]
pub struct Acyclicity {
    real_cycles: Vec<SchedNode>,
}

impl Acyclicity {
    /// Returns `true` when no node lies on a cycle whose clock is
    /// satisfiable under `R`.
    pub fn is_acyclic(&self) -> bool {
        self.real_cycles.is_empty()
    }

    /// The nodes involved in genuine (non-null-clock) dependency cycles.
    pub fn cyclic_nodes(&self) -> &[SchedNode] {
        &self.real_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::{stdlib, Name};

    fn graph_and_algebra(def: &signal_lang::ProcessDef) -> (SchedulingGraph, ClockAlgebra) {
        let kernel = def.normalize().unwrap();
        let relations = inference::infer(&kernel);
        let mut algebra = ClockAlgebra::new(&kernel, &relations);
        let hierarchy = ClockHierarchy::build(&kernel, &relations, &mut algebra);
        let graph = SchedulingGraph::build(&kernel, &relations, &hierarchy);
        (graph, algebra)
    }

    #[test]
    fn buffer_graph_contains_the_paper_edges() {
        let (graph, _) = graph_and_algebra(&stdlib::buffer());
        let has = |from: &str, to: &str| {
            graph.iter_edges().any(|(f, t, _)| {
                f.signal().as_str() == from
                    && t.signal().as_str() == to
                    && matches!(f, SchedNode::Signal(_))
                    && matches!(t, SchedNode::Signal(_))
            })
        };
        // y -> r and r -> x, as in the paper's scheduling graph.
        assert!(has("y", "r"));
        assert!(has("r", "x"));
        // Reinforcement: t (the sampler) is scheduled before the clocks of x
        // and y.
        assert!(graph.iter_edges().any(|(f, t, _)| {
            matches!(f, SchedNode::Signal(n) if n.as_str() == "t")
                && matches!(t, SchedNode::Clock(n) if n.as_str() == "x")
        }));
    }

    #[test]
    fn every_paper_process_is_acyclic() {
        for def in stdlib::all_paper_processes() {
            // `current` taken in isolation genuinely has a circular clock
            // definition (`^r = ^x ∨ ^y` together with `^x = ^r ∧ [c]`):
            // neither clock can be computed first.  Composing it with `flip`
            // — the buffer — adds `^x = [t]`, which orients the computation
            // and removes the cycle (checked by the dedicated test below).
            if def.name == "current" {
                continue;
            }
            let (graph, mut algebra) = graph_and_algebra(&def);
            let verdict = graph.acyclicity(&mut algebra);
            assert!(
                verdict.is_acyclic(),
                "process {} has cycles through {:?}",
                def.name,
                verdict.cyclic_nodes()
            );
        }
    }

    #[test]
    fn standalone_current_is_circular_but_the_buffer_is_not() {
        let (graph, mut algebra) = graph_and_algebra(&stdlib::current());
        assert!(!graph.acyclicity(&mut algebra).is_acyclic());
        let (graph, mut algebra) = graph_and_algebra(&stdlib::buffer());
        assert!(graph.acyclicity(&mut algebra).is_acyclic());
    }

    #[test]
    fn an_instantaneous_loop_is_reported() {
        use signal_lang::{Expr, ProcessBuilder};
        // x := y + 1 | y := x + 1 : a genuine instantaneous cycle.
        let def = ProcessBuilder::new("loop")
            .define("x", Expr::var("y").add(Expr::cst(1)))
            .define("y", Expr::var("x").add(Expr::cst(1)))
            .build()
            .unwrap();
        let (graph, mut algebra) = graph_and_algebra(&def);
        let verdict = graph.acyclicity(&mut algebra);
        assert!(!verdict.is_acyclic());
        assert!(verdict
            .cyclic_nodes()
            .iter()
            .any(|n| n.signal() == &Name::from("x")));
    }

    #[test]
    fn a_false_loop_with_exclusive_clocks_is_accepted() {
        use signal_lang::{ClockAst, Expr, ProcessBuilder};
        // x and y depend on each other but at exclusive clocks [c] and
        // [not c]: the cycle's clock is null, so the process is acyclic in
        // the sense of Definition 8.
        let def = ProcessBuilder::new("xor_loop")
            .define("x", Expr::var("y").when(Expr::var("c")))
            .define("y", Expr::var("x").when(Expr::var("c").not()))
            .constraint(ClockAst::of("x"), ClockAst::when_true("c"))
            .constraint(ClockAst::of("y"), ClockAst::when_false("c"))
            .build()
            .unwrap();
        let (graph, mut algebra) = graph_and_algebra(&def);
        let verdict = graph.acyclicity(&mut algebra);
        assert!(verdict.is_acyclic(), "{:?}", verdict.cyclic_nodes());
    }

    #[test]
    fn topological_order_schedules_clocks_before_signals() {
        let (graph, _) = graph_and_algebra(&stdlib::filter());
        let order = graph.topological_order().expect("acyclic");
        let pos = |node: &SchedNode| order.iter().position(|n| n == node).unwrap();
        let clock_x = SchedNode::Clock(Name::from("x"));
        let sig_x = SchedNode::Signal(Name::from("x"));
        assert!(pos(&clock_x) < pos(&sig_x));
    }

    #[test]
    fn topological_order_reports_cyclic_nodes() {
        use signal_lang::{Expr, ProcessBuilder};
        let def = ProcessBuilder::new("loop")
            .define("x", Expr::var("y").add(Expr::cst(1)))
            .define("y", Expr::var("x").add(Expr::cst(1)))
            .build()
            .unwrap();
        let (graph, _) = graph_and_algebra(&def);
        assert!(graph.topological_order().is_err());
    }
}
