//! K-periodic clock words: the n-synchronous side of the rate calculus.
//!
//! A [`ClockWord`] is an ultimately periodic binary word `u(v)^ω` over a
//! component's reaction instants: position `n` (1-indexed) is `1` when the
//! clock is present at the component's `n`-th reaction.  The existing
//! [`RateRelation`](crate::rate::RateRelation) classes are the words'
//! degenerate cases — `(1)` for a synchronous edge, `(01)`/`(10)` for the
//! two phases of an alternating register — and the general backlog of a
//! producer word against a consumer word extends the same buffer-sizing
//! argument to decimators and bursty samplers (à la Lucy-n's n-synchronous
//! clock envelopes and SDF buffer sizing).
//!
//! Words are *derived*, never assumed: [`periodic_systems`] recognizes the
//! two syntactic pacemakers whose phase structure is fully determined by
//! register initializations alone —
//!
//! * a **one-hot ring** of `k ≥ 2` boolean delay registers (`r2 := r1 $
//!   init false | … | r1 := rk $ init true`) carrying a single `true`
//!   around, so `[ri]` is exactly phase `i` of a `k`-periodic schedule;
//! * an **alternating register** (`s := t $ init v | t := not s`), the
//!   paper's one-place-buffer pacemaker, whose samplings `[t]`/`[not t]`
//!   are the two phases of a 2-periodic schedule;
//!
//! and [`word_of_expr`] resolves an arbitrary clock expression against
//! those phases *semantically*, through the relation `R` held by a
//! [`ClockAlgebra`]: an expression gets the union of the phase words it
//! provably covers, provided `R` also proves it covers nothing else.
//!
//! The backlog of a producer word against a consumer word assumes the two
//! components' reaction sequences are aligned from the start and advance
//! at the same pace — exactly the steady state a rate-matched GALS
//! deployment converges to, and the alignment under which the synchronous
//! reference itself executes.

use std::fmt;

use signal_lang::{KernelProcess, Name, Value};

use crate::algebra::ClockAlgebra;
use crate::clock::ClockExpr;

/// An ultimately periodic binary word `u(v)^ω`: `prefix` is read once,
/// then `period` repeats forever.  Normalized on construction (primitive
/// period, shortest prefix), so equal schedules compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockWord {
    prefix: Vec<bool>,
    period: Vec<bool>,
}

impl ClockWord {
    /// The word `u(v)^ω`, normalized.  Returns `None` for an empty
    /// period (a word must say something about the infinite future).
    pub fn from_parts(prefix: Vec<bool>, period: Vec<bool>) -> Option<ClockWord> {
        if period.is_empty() {
            return None;
        }
        let mut word = ClockWord { prefix, period };
        word.normalize();
        Some(word)
    }

    /// The purely periodic word `(v)^ω`.
    pub fn periodic(period: Vec<bool>) -> Option<ClockWord> {
        ClockWord::from_parts(Vec::new(), period)
    }

    /// Phase `index` (1-indexed) of a `length`-periodic schedule: a `1`
    /// at position `index` of every period, `0` elsewhere.
    pub fn phase(index: usize, length: usize) -> Option<ClockWord> {
        if index == 0 || index > length {
            return None;
        }
        ClockWord::periodic((1..=length).map(|i| i == index).collect())
    }

    /// The always-present word `(1…1)^ω` of the given period length.
    pub fn always(length: usize) -> Option<ClockWord> {
        ClockWord::periodic(vec![true; length.max(1)])
    }

    fn normalize(&mut self) {
        // Fold the prefix tail into the period: `u·a (v·a)^ω = u (a·v)^ω`.
        while let (Some(&p), Some(&q)) = (self.prefix.last(), self.period.last()) {
            if p != q {
                break;
            }
            self.prefix.pop();
            if let Some(last) = self.period.pop() {
                self.period.insert(0, last);
            }
        }
        // Reduce the period to its primitive root.
        let len = self.period.len();
        for d in 1..len {
            if !len.is_multiple_of(d) {
                continue;
            }
            if (d..len).all(|i| self.period[i] == self.period[i % d]) {
                self.period.truncate(d);
                break;
            }
        }
    }

    /// Is the clock present at instant `n` (1-indexed)?  Instant 0 (or
    /// below) is before time starts: absent.
    pub fn at(&self, n: usize) -> bool {
        if n == 0 {
            return false;
        }
        let i = n - 1;
        if i < self.prefix.len() {
            self.prefix[i]
        } else {
            self.period[(i - self.prefix.len()) % self.period.len()]
        }
    }

    /// How many presences in instants `1..=n` (the cumulative one-count
    /// `O(n)` of the n-synchronous literature).
    pub fn ones_before(&self, n: usize) -> usize {
        let in_prefix: usize = self
            .prefix
            .iter()
            .take(n)
            .filter(|&&present| present)
            .count();
        if n <= self.prefix.len() {
            return in_prefix;
        }
        let rest = n - self.prefix.len();
        let per_period: usize = self.period.iter().filter(|&&present| present).count();
        let tail: usize = self
            .period
            .iter()
            .take(rest % self.period.len())
            .filter(|&&present| present)
            .count();
        in_prefix + (rest / self.period.len()) * per_period + tail
    }

    /// The first present instant (1-indexed), or `None` for the never
    /// word `(0)^ω`.
    pub fn first_one(&self) -> Option<usize> {
        (1..=self.prefix.len() + self.period.len()).find(|&n| self.at(n))
    }

    /// The asymptotic rate as `(ones per period, period length)`.
    pub fn rate(&self) -> (usize, usize) {
        (
            self.period.iter().filter(|&&present| present).count(),
            self.period.len(),
        )
    }

    /// The prefix length `|u|`.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// The (primitive) period length `|v|`.
    pub fn period_len(&self) -> usize {
        self.period.len()
    }

    fn zip_with(&self, other: &ClockWord, f: impl Fn(bool, bool) -> bool) -> ClockWord {
        let prefix_len = self.prefix.len().max(other.prefix.len());
        let period_len = lcm(self.period.len(), other.period.len());
        let prefix = (1..=prefix_len)
            .map(|n| f(self.at(n), other.at(n)))
            .collect();
        let period = (prefix_len + 1..=prefix_len + period_len)
            .map(|n| f(self.at(n), other.at(n)))
            .collect();
        let mut word = ClockWord { prefix, period };
        word.normalize();
        word
    }

    /// The pointwise union (presence in either word).
    pub fn union(&self, other: &ClockWord) -> ClockWord {
        self.zip_with(other, |a, b| a || b)
    }

    /// The pointwise intersection (presence in both words).
    pub fn intersection(&self, other: &ClockWord) -> ClockWord {
        self.zip_with(other, |a, b| a && b)
    }

    /// The pointwise complement (presence where this word is absent).
    pub fn complement(&self) -> ClockWord {
        let mut word = ClockWord {
            prefix: self.prefix.iter().map(|&present| !present).collect(),
            period: self.period.iter().map(|&present| !present).collect(),
        };
        word.normalize();
        word
    }

    /// The maximum backlog of a `producer` word against a `consumer`
    /// word under aligned reaction sequences: `sup_n  P(n) − C(n−1)`,
    /// the number of tokens emitted by instant `n` that the consumer has
    /// not yet had a read opportunity for.  This is the FIFO occupancy
    /// the aligned schedule needs — the k-periodic generalization of the
    /// synchronous bound 1 and the alternating bound 2.
    ///
    /// Returns `None` when the producer's asymptotic rate exceeds the
    /// consumer's: the gap grows without bound.
    pub fn backlog(producer: &ClockWord, consumer: &ClockWord) -> Option<usize> {
        let (p_ones, p_len) = producer.rate();
        let (c_ones, c_len) = consumer.rate();
        if p_ones * c_len > c_ones * p_len {
            return None;
        }
        let horizon = producer.prefix_len().max(consumer.prefix_len())
            + 2 * lcm(producer.period_len(), consumer.period_len());
        let gap = (1..=horizon)
            .map(|n| {
                let produced = producer.ones_before(n) as isize;
                let readable = consumer.ones_before(n - 1) as isize;
                produced - readable
            })
            .max()
            .unwrap_or(0);
        Some(gap.max(0) as usize)
    }
}

impl fmt::Display for ClockWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &present in &self.prefix {
            write!(f, "{}", u8::from(present))?;
        }
        write!(f, "(")?;
        for &present in &self.period {
            write!(f, "{}", u8::from(present))?;
        }
        write!(f, ")")
    }
}

/// A syntactically recognized periodic pacemaker of a kernel process: a
/// period length plus the clock expressions whose words the register
/// structure fully determines.
#[derive(Debug, Clone)]
pub struct PeriodicSystem {
    /// The period of the system's schedule.
    pub period: usize,
    /// `(clock, word)` pairs: the tick of the system and the value
    /// samplings of its phase signals.
    pub atoms: Vec<(ClockExpr, ClockWord)>,
}

/// Recognizes the periodic pacemakers of `kernel`: one-hot delay rings
/// (`k`-periodic) and alternating registers (2-periodic).  See the module
/// docs for the exact shapes.
pub fn periodic_systems(kernel: &KernelProcess) -> Vec<PeriodicSystem> {
    let mut systems = one_hot_rings(kernel);
    systems.extend(alternating_systems(kernel));
    systems
}

/// One-hot delay rings: cycles `r1 → r2 → … → rk → r1` of boolean delay
/// registers (`r_{i+1} := r_i $ init …`) with exactly one `true`
/// initialization.  The single token walks the ring, so the signal
/// initialized `true` is true exactly at instants `1, k+1, 2k+1, …` —
/// phase 1 — and each successor register holds the next phase.
fn one_hot_rings(kernel: &KernelProcess) -> Vec<PeriodicSystem> {
    use std::collections::{BTreeMap, BTreeSet};

    let registers = kernel.registers();
    let outs: BTreeSet<&Name> = registers.iter().map(|(out, _, _)| out).collect();
    // arg → (out, init), only when the arg is itself a ring register and
    // feeds exactly one delay (a ring node has one successor).
    let mut next: BTreeMap<&Name, (&Name, &Value)> = BTreeMap::new();
    let mut fan_out: BTreeMap<&Name, usize> = BTreeMap::new();
    for (out, arg, init) in &registers {
        *fan_out.entry(arg).or_insert(0) += 1;
        if outs.contains(arg) {
            next.insert(arg, (out, init));
        }
    }
    let mut systems = Vec::new();
    let mut visited: BTreeSet<&Name> = BTreeSet::new();
    for (start, _, _) in &registers {
        if visited.contains(start) {
            continue;
        }
        // Walk the successor chain; a ring comes back to its start.
        let mut chain = vec![start];
        let mut chain_set: BTreeSet<&Name> = [start].into();
        let mut node = start;
        let ring = loop {
            if fan_out.get(node).copied().unwrap_or(0) != 1 {
                break None;
            }
            let Some(&(succ, _)) = next.get(node) else {
                break None;
            };
            if succ == start {
                break Some(chain.clone());
            }
            if !chain_set.insert(succ) {
                break None; // re-entered the chain elsewhere: not a simple ring
            }
            chain.push(succ);
            node = succ;
        };
        visited.extend(chain.iter().copied());
        let Some(ring) = ring else { continue };
        if ring.len() < 2 {
            continue;
        }
        // Boolean registers, exactly one initialized true.
        let init_of: BTreeMap<&Name, bool> = registers
            .iter()
            .filter_map(|(out, _, init)| match init {
                Value::Bool(b) => Some((out, *b)),
                _ => None,
            })
            .collect();
        if !ring.iter().all(|signal| init_of.contains_key(*signal)) {
            continue;
        }
        let true_inits: Vec<usize> = ring
            .iter()
            .enumerate()
            .filter(|(_, signal)| init_of.get(**signal).copied().unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        let [seed] = true_inits.as_slice() else {
            continue;
        };
        // Rotate so the true-initialized register is phase 1; the token
        // then moves to its *successor* register at the next instant.
        let k = ring.len();
        let ordered: Vec<&Name> = (0..k).map(|i| ring[(seed + i) % k]).collect();
        let mut atoms = Vec::new();
        if let Some(tick) = ClockWord::always(k) {
            atoms.push((ClockExpr::tick(ordered[0].as_str()), tick));
        }
        for (i, signal) in ordered.iter().enumerate() {
            if let Some(word) = ClockWord::phase(i + 1, k) {
                atoms.push((ClockExpr::on_true(signal.as_str()), word.clone()));
                atoms.push((ClockExpr::on_false(signal.as_str()), word.complement()));
            }
        }
        systems.push(PeriodicSystem { period: k, atoms });
    }
    systems
}

/// Alternating registers as 2-periodic systems: for `s := t $ init v | t
/// := not s`, the state `t` is `¬v` at instant 1 and flips every
/// instant, so `[t]` and `[not t]` are the two phases.
fn alternating_systems(kernel: &KernelProcess) -> Vec<PeriodicSystem> {
    let mut systems = Vec::new();
    for state in crate::rate::alternating_states(kernel) {
        let init = kernel.registers().into_iter().find_map(|(_, arg, init)| {
            if arg == state {
                match init {
                    Value::Bool(b) => Some(b),
                    _ => None,
                }
            } else {
                None
            }
        });
        let Some(init) = init else { continue };
        // t(1) = ¬init, then alternates.
        let Some(word_true) = ClockWord::periodic(vec![!init, init]) else {
            continue;
        };
        let mut atoms = Vec::new();
        if let Some(tick) = ClockWord::always(2) {
            atoms.push((ClockExpr::tick(state.as_str()), tick));
        }
        atoms.push((ClockExpr::on_true(state.as_str()), word_true.clone()));
        atoms.push((ClockExpr::on_false(state.as_str()), word_true.complement()));
        systems.push(PeriodicSystem { period: 2, atoms });
    }
    systems
}

/// Resolves a clock expression to a k-periodic word through the relation
/// `R` held by `algebra`: the expression gets the union of the system
/// phase words it provably includes, provided `R` also proves the
/// expression is covered by those phases (so the word is exact, not a
/// lower envelope).  Expressions mentioning signals unknown to the
/// algebra resolve to `None` — the conservative direction.
pub fn word_of_expr(
    expr: &ClockExpr,
    systems: &[PeriodicSystem],
    algebra: &mut ClockAlgebra,
) -> Option<ClockWord> {
    if !crate::rate::knows_atoms(algebra, expr) {
        return None;
    }
    for system in systems {
        let known = system.atoms.iter().all(|(clock, _)| {
            let mut atoms = Vec::new();
            clock.atoms(&mut atoms);
            atoms
                .iter()
                .all(|atom| algebra.has_signal(atom.signal().as_str()))
        });
        if !known {
            continue;
        }
        let included: Vec<&(ClockExpr, ClockWord)> = system
            .atoms
            .iter()
            .filter(|(clock, _)| algebra.clock_included(clock, expr))
            .collect();
        let Some(((first_clock, first_word), rest)) = included.split_first() else {
            continue;
        };
        let cover = rest
            .iter()
            .fold(first_clock.clone(), |acc, (clock, _)| acc.or(clock.clone()));
        if !algebra.clock_included(expr, &cover) {
            continue;
        }
        let word = rest
            .iter()
            .fold(first_word.clone(), |acc, (_, w)| acc.union(w));
        return Some(word);
    }
    None
}

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a.max(1)
}

fn lcm(a: usize, b: usize) -> usize {
    let (a, b) = (a.max(1), b.max(1));
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference;
    use signal_lang::stdlib;

    fn w(prefix: &str, period: &str) -> ClockWord {
        let bits = |s: &str| s.chars().map(|c| c == '1').collect::<Vec<bool>>();
        ClockWord::from_parts(bits(prefix), bits(period)).expect("nonempty period")
    }

    #[test]
    fn words_normalize_to_primitive_periods() {
        assert_eq!(w("", "1010"), w("", "10"));
        assert_eq!(w("10", "10"), w("", "10"));
        assert_eq!(w("1", "01"), w("", "10"));
        assert_eq!(w("", "100100").to_string(), "(100)");
        assert_eq!(w("110", "0").to_string(), "11(0)");
    }

    #[test]
    fn cumulative_counts_and_rates() {
        let word = w("", "111000");
        assert_eq!(word.rate(), (3, 6));
        assert_eq!(word.ones_before(0), 0);
        assert_eq!(word.ones_before(3), 3);
        assert_eq!(word.ones_before(6), 3);
        assert_eq!(word.ones_before(8), 5);
        assert_eq!(word.first_one(), Some(1));
        assert_eq!(w("", "000111").first_one(), Some(4));
        assert_eq!(w("", "0").first_one(), None);
        assert!(word.at(2) && !word.at(4) && word.at(7));
    }

    #[test]
    fn set_operations_align_periods() {
        let a = w("", "10");
        let b = w("", "100");
        assert_eq!(a.union(&b), w("", "101110"));
        assert_eq!(a.intersection(&b), w("", "100000"));
        assert_eq!(a.complement(), w("", "01"));
    }

    #[test]
    fn backlog_reproduces_the_degenerate_bounds() {
        // Synchronous: identical words need one slot.
        assert_eq!(ClockWord::backlog(&w("", "1"), &w("", "1")), Some(1));
        // Alternating phases: producer (01) against consumer (10) — the
        // consumer is always a step ahead, zero backlog accumulates.
        assert_eq!(ClockWord::backlog(&w("", "01"), &w("", "10")), Some(0));
        // Emit at odd instants, read at even instants: one slot carries
        // each token across.
        assert_eq!(ClockWord::backlog(&w("", "10"), &w("", "01")), Some(1));
        // A full-tick producer against a half-rate consumer diverges —
        // the word model is sharper than the alternating bound here.
        assert_eq!(ClockWord::backlog(&w("", "1"), &w("", "01")), None);
    }

    #[test]
    fn burst_words_get_finite_bounds_beyond_two() {
        // 3-burst producer against a 3-burst consumer half a period later.
        assert_eq!(
            ClockWord::backlog(&w("", "111000"), &w("", "000111")),
            Some(3)
        );
        // The reversed alignment never accumulates.
        assert_eq!(
            ClockWord::backlog(&w("", "000111"), &w("", "111000")),
            Some(0)
        );
        // A producer faster than its consumer diverges.
        assert_eq!(ClockWord::backlog(&w("", "110"), &w("", "100")), None);
    }

    #[test]
    fn the_buffer_alternating_state_is_a_two_periodic_system() {
        let kernel = stdlib::buffer().normalize().expect("normalizes");
        let systems = periodic_systems(&kernel);
        assert_eq!(systems.len(), 1, "systems: {systems:?}");
        assert_eq!(systems[0].period, 2);
        let relations = inference::infer(&kernel);
        let mut algebra = ClockAlgebra::new(&kernel, &relations);
        // x is emitted at [t] with s := t $ init true, so t starts false:
        // the emission word is (01), the read word (10).
        let x = word_of_expr(&ClockExpr::tick("x"), &systems, &mut algebra);
        assert_eq!(x, Some(w("", "01")));
        let y = word_of_expr(&ClockExpr::tick("y"), &systems, &mut algebra);
        assert_eq!(y, Some(w("", "10")));
        // The master tick resolves to the always word.
        let r = word_of_expr(&ClockExpr::tick("r"), &systems, &mut algebra);
        assert_eq!(r, Some(w("", "1")));
    }

    #[test]
    fn unknown_signals_resolve_to_none() {
        let kernel = stdlib::buffer().normalize().expect("normalizes");
        let systems = periodic_systems(&kernel);
        let relations = inference::infer(&kernel);
        let mut algebra = ClockAlgebra::new(&kernel, &relations);
        assert_eq!(
            word_of_expr(&ClockExpr::tick("nosuch"), &systems, &mut algebra),
            None
        );
    }
}
