//! Slot-indexed compilation and execution of step programs.
//!
//! [`SequentialRuntime`] *interprets* a
//! [`StepProgram`]: every step walks `Name`-keyed maps for presence,
//! values and registers.  This module compiles the same program once into
//! a [`CompiledProgram`] — every `Name` resolved to a dense slot index,
//! every [`ClockCode`] tree flattened into a linear postfix clock program,
//! every kernel equation pre-bound into a slot-addressed opcode — and a
//! [`CompiledRuntime`] executes it over a flat value array and presence
//! bitsets with **zero heap allocation on the hot path** (every scratch
//! buffer is owned by the runtime and reused across steps).
//!
//! The compiled machine is observationally identical to the interpreter:
//! same flows, same step counts, same [`RuntimeError::InputExhausted`]
//! boundaries — property-checked differentially by
//! `tests/compiled_differential.rs` over every process of the paper.

use std::collections::{BTreeMap, VecDeque};

use signal_lang::{Atom, KernelEq, Name, PrimOp, Value};

use crate::ir::{Action, ClockCode, StepProgram};
use crate::runtime::{eval_op, RuntimeError, SequentialRuntime};

/// One operand of a compiled equation: a literal or a value slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Const(Value),
    Slot(u32),
}

/// One postfix instruction of a flattened clock program.  A [`ClockCode`]
/// tree evaluates by recursion; the flattened form evaluates left to right
/// over a small boolean stack — no pointer chasing, no call frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClockOp {
    /// Push `true` (the root clock).
    True,
    /// Push the presence bit of a slot.
    Present(u32),
    /// Push "present and currently true" of a slot.
    SampleTrue(u32),
    /// Push "present and currently false" of a slot.
    SampleFalse(u32),
    /// Pop two, push their conjunction.
    And,
    /// Pop two, push their disjunction.
    Or,
    /// Pop `b` then `a`, push `a && !b`.
    Diff,
}

/// One slot-addressed opcode of the compiled step function.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// Evaluate the clock program `clock_pool[start..end]` and store the
    /// presence bit of `slot`.
    Clock { slot: u32, start: u32, end: u32 },
    /// When present, move the head of input queue `queue` into `slot`.
    Read { slot: u32, queue: u32 },
    /// When present, load delay register `register` into `slot`.
    Delay { slot: u32, register: u32 },
    /// When present, apply `op` to `arg_pool[start..end]` into `slot`.
    Func {
        slot: u32,
        op: PrimOp,
        start: u32,
        end: u32,
    },
    /// When present, copy the operand into `slot` (a `when` body).
    Copy { slot: u32, arg: Operand },
    /// When present, pick `left` if its guard slot is present (constants
    /// always are), else `right` — a `default`.
    Select {
        slot: u32,
        left: Operand,
        left_guard: Option<u32>,
        right: Operand,
    },
    /// When present, append the value of `slot` to output flow `output`.
    Write { slot: u32, output: u32 },
    /// When the source slot is present, latch its value into `register`
    /// at the end of the step.
    Update { register: u32, source: u32 },
}

/// A [`StepProgram`] lowered to slot-indexed form: names interned into
/// dense indices, clock trees flattened, equations pre-bound.  Compile
/// once, execute many — the program is immutable and cheaply cloneable
/// relative to the per-step cost it removes.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    /// Slot index → signal name (diagnostics and interface reporting).
    slot_names: Vec<Name>,
    /// Input queue index → (name, value slot).
    inputs: Vec<(Name, u32)>,
    /// Output flow index → (name, value slot).
    outputs: Vec<(Name, u32)>,
    /// Register index → (name, initial value).
    registers: Vec<(Name, Value)>,
    ops: Vec<Op>,
    clock_pool: Vec<ClockOp>,
    arg_pool: Vec<Operand>,
    /// Deepest clock-stack excursion of any clock program (pre-sized so
    /// evaluation never grows the stack).
    max_clock_depth: usize,
}

impl CompiledProgram {
    /// Lowers a step program: resolves every name to a slot, flattens
    /// every clock tree, pre-binds every equation.
    pub fn compile(program: &StepProgram) -> CompiledProgram {
        let mut interner = Interner::default();
        // Interface and register names first, so their slots are stable
        // and every referenced name is interned even if no action touches
        // it.
        for name in program.inputs.iter().chain(program.outputs.iter()) {
            interner.slot(name);
        }
        let registers: Vec<(Name, Value)> = program.registers.clone();
        let register_index: BTreeMap<&Name, u32> = registers
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n, i as u32))
            .collect();

        let mut ops = Vec::with_capacity(program.actions.len());
        let mut clock_pool = Vec::new();
        let mut arg_pool = Vec::new();
        let mut max_clock_depth = 0usize;
        for action in &program.actions {
            match action {
                Action::ComputeClock { signal, code } => {
                    let slot = interner.slot(signal);
                    let start = clock_pool.len() as u32;
                    flatten_clock(code, &mut interner, &mut clock_pool);
                    let end = clock_pool.len() as u32;
                    max_clock_depth =
                        max_clock_depth.max(stack_depth(&clock_pool[start as usize..end as usize]));
                    ops.push(Op::Clock { slot, start, end });
                }
                Action::ReadInput { signal } => {
                    let slot = interner.slot(signal);
                    let queue = program
                        .inputs
                        .iter()
                        .position(|n| n == signal)
                        .expect("a read action targets a declared input")
                        as u32;
                    ops.push(Op::Read { slot, queue });
                }
                Action::Eval { equation } => {
                    ops.push(compile_equation(
                        equation,
                        &mut interner,
                        &register_index,
                        &mut arg_pool,
                    ));
                }
                Action::WriteOutput { signal } => {
                    let slot = interner.slot(signal);
                    let output = program
                        .outputs
                        .iter()
                        .position(|n| n == signal)
                        .expect("a write action targets a declared output")
                        as u32;
                    ops.push(Op::Write { slot, output });
                }
                Action::UpdateRegister { register, source } => {
                    let source = interner.slot(source);
                    let register = *register_index
                        .get(register)
                        .expect("an update action targets a declared register");
                    ops.push(Op::Update { register, source });
                }
            }
        }

        let inputs = program
            .inputs
            .iter()
            .map(|n| (n.clone(), interner.slot(n)))
            .collect();
        let outputs = program
            .outputs
            .iter()
            .map(|n| (n.clone(), interner.slot(n)))
            .collect();
        CompiledProgram {
            name: program.name.clone(),
            slot_names: interner.names,
            inputs,
            outputs,
            registers,
            ops,
            clock_pool,
            arg_pool,
            max_clock_depth,
        }
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of value slots the program addresses.
    pub fn slot_count(&self) -> usize {
        self.slot_names.len()
    }

    /// The number of opcodes of one step.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

#[derive(Default)]
struct Interner {
    index: BTreeMap<Name, u32>,
    names: Vec<Name>,
}

impl Interner {
    fn slot(&mut self, name: &Name) -> u32 {
        if let Some(&slot) = self.index.get(name) {
            return slot;
        }
        let slot = self.names.len() as u32;
        self.index.insert(name.clone(), slot);
        self.names.push(name.clone());
        slot
    }
}

fn operand(atom: &Atom, interner: &mut Interner) -> Operand {
    match atom {
        Atom::Const(v) => Operand::Const(*v),
        Atom::Var(n) => Operand::Slot(interner.slot(n)),
    }
}

fn compile_equation(
    eq: &KernelEq,
    interner: &mut Interner,
    register_index: &BTreeMap<&Name, u32>,
    arg_pool: &mut Vec<Operand>,
) -> Op {
    let slot = interner.slot(eq.defined());
    match eq {
        KernelEq::Delay { out, .. } => Op::Delay {
            slot,
            register: *register_index
                .get(out)
                .expect("a delay equation defines a declared register"),
        },
        KernelEq::Func { op, args, .. } => {
            let start = arg_pool.len() as u32;
            for a in args {
                let a = operand(a, interner);
                arg_pool.push(a);
            }
            Op::Func {
                slot,
                op: *op,
                start,
                end: arg_pool.len() as u32,
            }
        }
        KernelEq::When { arg, .. } => Op::Copy {
            slot,
            arg: operand(arg, interner),
        },
        KernelEq::Default { left, right, .. } => {
            let left_guard = match left {
                Atom::Const(_) => None,
                Atom::Var(n) => Some(interner.slot(n)),
            };
            Op::Select {
                slot,
                left: operand(left, interner),
                left_guard,
                right: operand(right, interner),
            }
        }
    }
}

/// Flattens a clock tree into postfix order (left, right, operator).
fn flatten_clock(code: &ClockCode, interner: &mut Interner, pool: &mut Vec<ClockOp>) {
    match code {
        ClockCode::Always => pool.push(ClockOp::True),
        ClockCode::SameAs(n) => {
            let slot = interner.slot(n);
            pool.push(ClockOp::Present(slot));
        }
        ClockCode::SampleTrue(n) => {
            let slot = interner.slot(n);
            pool.push(ClockOp::SampleTrue(slot));
        }
        ClockCode::SampleFalse(n) => {
            let slot = interner.slot(n);
            pool.push(ClockOp::SampleFalse(slot));
        }
        ClockCode::And(a, b) => {
            flatten_clock(a, interner, pool);
            flatten_clock(b, interner, pool);
            pool.push(ClockOp::And);
        }
        ClockCode::Or(a, b) => {
            flatten_clock(a, interner, pool);
            flatten_clock(b, interner, pool);
            pool.push(ClockOp::Or);
        }
        ClockCode::Diff(a, b) => {
            flatten_clock(a, interner, pool);
            flatten_clock(b, interner, pool);
            pool.push(ClockOp::Diff);
        }
    }
}

/// Maximum stack excursion of a postfix clock program.
fn stack_depth(ops: &[ClockOp]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in ops {
        match op {
            ClockOp::True
            | ClockOp::Present(_)
            | ClockOp::SampleTrue(_)
            | ClockOp::SampleFalse(_) => {
                depth += 1;
                max = max.max(depth);
            }
            ClockOp::And | ClockOp::Or | ClockOp::Diff => depth = depth.saturating_sub(1),
        }
    }
    max
}

/// A word-packed bitset over value slots, cleared in O(slots/64) per step.
#[derive(Debug, Clone)]
struct SlotBits {
    words: Vec<u64>,
}

impl SlotBits {
    fn new(slots: usize) -> SlotBits {
        SlotBits {
            words: vec![0; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, slot: u32) -> bool {
        let slot = slot as usize;
        (self.words[slot / 64] >> (slot % 64)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, slot: u32, value: bool) {
        let slot = slot as usize;
        let mask = 1u64 << (slot % 64);
        if value {
            self.words[slot / 64] |= mask;
        } else {
            self.words[slot / 64] &= !mask;
        }
    }

    #[inline]
    fn clear(&mut self) {
        self.words.fill(0);
    }
}

/// Executes a [`CompiledProgram`] over a flat value array, presence and
/// has-value bitsets, and index-addressed registers, queues and flows.
///
/// Semantics are identical to [`SequentialRuntime`]: a step either
/// completes (inputs consumed, registers latched, outputs appended) or
/// fails with [`RuntimeError`] leaving every observable unchanged — the
/// consumed inputs, register latches and output appends are staged in
/// reusable scratch buffers and committed only on success, so the hot
/// path allocates nothing after the first step.
#[derive(Debug, Clone)]
pub struct CompiledRuntime {
    program: CompiledProgram,
    values: Vec<Value>,
    present: SlotBits,
    has_value: SlotBits,
    registers: Vec<Value>,
    queues: Vec<VecDeque<Value>>,
    flows: Vec<Vec<Value>>,
    steps: u64,
    // Reusable per-step scratch (cleared, never shrunk).
    clock_stack: Vec<bool>,
    consumed: Vec<u32>,
    latches: Vec<(u32, Value)>,
    pending_writes: Vec<(u32, Value)>,
    args_buf: Vec<Value>,
}

impl CompiledRuntime {
    /// Creates a runtime with every register at its initial value and
    /// empty input queues.
    pub fn new(program: CompiledProgram) -> CompiledRuntime {
        let slots = program.slot_count();
        let registers = program.registers.iter().map(|(_, v)| *v).collect();
        let queues = program.inputs.iter().map(|_| VecDeque::new()).collect();
        let flows = program.outputs.iter().map(|_| Vec::new()).collect();
        let max_clock_depth = program.max_clock_depth;
        CompiledRuntime {
            program,
            values: vec![Value::Bool(false); slots],
            present: SlotBits::new(slots),
            has_value: SlotBits::new(slots),
            registers,
            queues,
            flows,
            steps: 0,
            clock_stack: Vec::with_capacity(max_clock_depth),
            consumed: Vec::new(),
            latches: Vec::new(),
            pending_writes: Vec::new(),
            args_buf: Vec::new(),
        }
    }

    /// Compiles and instantiates in one call.
    pub fn from_program(program: &StepProgram) -> CompiledRuntime {
        CompiledRuntime::new(CompiledProgram::compile(program))
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Appends values to the source queue of an input signal.
    pub fn feed<I, V>(&mut self, signal: &str, values: I)
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        if let Some(i) = self
            .program
            .inputs
            .iter()
            .position(|(n, _)| n.as_str() == signal)
        {
            self.queues[i].extend(values.into_iter().map(Into::into));
        }
    }

    /// The number of values waiting on an input queue.
    pub fn pending(&self, signal: &str) -> usize {
        self.program
            .inputs
            .iter()
            .position(|(n, _)| n.as_str() == signal)
            .map(|i| self.queues[i].len())
            .unwrap_or(0)
    }

    /// The values written so far on an output signal.
    pub fn output(&self, signal: &str) -> &[Value] {
        self.program
            .outputs
            .iter()
            .position(|(n, _)| n.as_str() == signal)
            .map(|i| self.flows[i].as_slice())
            .unwrap_or_default()
    }

    /// The number of executed steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one step of the compiled program.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InputExhausted`] when a present input has
    /// no value queued; the runtime state is left untouched, exactly like
    /// the interpreter.
    pub fn step(&mut self) -> Result<(), RuntimeError> {
        self.present.clear();
        self.has_value.clear();
        self.consumed.clear();
        self.latches.clear();
        self.pending_writes.clear();
        // Indexed opcode loop: the iterator would borrow `self.program`
        // while the body mutates sibling fields, and splitting the borrow
        // per field costs nothing here.
        for i in 0..self.program.ops.len() {
            match self.program.ops[i] {
                Op::Clock { slot, start, end } => {
                    let p = self.eval_clock(start as usize, end as usize);
                    self.present.set(slot, p);
                }
                Op::Read { slot, queue } => {
                    if self.present.get(slot) {
                        match self.queues[queue as usize].front().copied() {
                            Some(v) => {
                                self.values[slot as usize] = v;
                                self.has_value.set(slot, true);
                                self.consumed.push(queue);
                            }
                            None => {
                                return Err(RuntimeError::InputExhausted(
                                    self.program.slot_names[slot as usize].clone(),
                                ))
                            }
                        }
                    }
                }
                Op::Delay { slot, register } => {
                    if self.present.get(slot) {
                        self.values[slot as usize] = self.registers[register as usize];
                        self.has_value.set(slot, true);
                    }
                }
                Op::Func {
                    slot,
                    op,
                    start,
                    end,
                } => {
                    if self.present.get(slot) {
                        self.args_buf.clear();
                        for a in &self.program.arg_pool[start as usize..end as usize] {
                            match self.value_of(*a) {
                                Some(v) => self.args_buf.push(v),
                                None => return Err(self.missing_operand(slot)),
                            }
                        }
                        let v = eval_op(op, &self.args_buf)?;
                        self.values[slot as usize] = v;
                        self.has_value.set(slot, true);
                    }
                }
                Op::Copy { slot, arg } => {
                    if self.present.get(slot) {
                        match self.value_of(arg) {
                            Some(v) => {
                                self.values[slot as usize] = v;
                                self.has_value.set(slot, true);
                            }
                            None => return Err(self.missing_operand(slot)),
                        }
                    }
                }
                Op::Select {
                    slot,
                    left,
                    left_guard,
                    right,
                } => {
                    if self.present.get(slot) {
                        let left_present = left_guard.map(|g| self.present.get(g)).unwrap_or(true);
                        let chosen = if left_present { left } else { right };
                        match self.value_of(chosen) {
                            Some(v) => {
                                self.values[slot as usize] = v;
                                self.has_value.set(slot, true);
                            }
                            None => return Err(self.missing_operand(slot)),
                        }
                    }
                }
                Op::Write { slot, output } => {
                    if self.present.get(slot) {
                        match self.has_value.get(slot) {
                            true => self
                                .pending_writes
                                .push((output, self.values[slot as usize])),
                            false => return Err(self.missing_operand(slot)),
                        }
                    }
                }
                Op::Update { register, source } => {
                    if self.present.get(source) && self.has_value.get(source) {
                        self.latches.push((register, self.values[source as usize]));
                    }
                }
            }
        }
        // Commit: consume inputs, append outputs and latch registers only
        // on success.
        for &queue in &self.consumed {
            self.queues[queue as usize].pop_front();
        }
        for &(output, v) in &self.pending_writes {
            self.flows[output as usize].push(v);
        }
        for &(register, v) in &self.latches {
            self.registers[register as usize] = v;
        }
        self.steps += 1;
        Ok(())
    }

    /// Runs steps until an input is exhausted or `max_steps` is reached;
    /// returns the number of completed steps.
    pub fn run(&mut self, max_steps: usize) -> usize {
        let mut done = 0;
        for _ in 0..max_steps {
            if self.step().is_err() {
                break;
            }
            done += 1;
        }
        done
    }

    #[inline]
    fn value_of(&self, operand: Operand) -> Option<Value> {
        match operand {
            Operand::Const(v) => Some(v),
            Operand::Slot(slot) => self.has_value.get(slot).then(|| self.values[slot as usize]),
        }
    }

    fn missing_operand(&self, slot: u32) -> RuntimeError {
        RuntimeError::MissingOperand(self.program.slot_names[slot as usize].clone())
    }

    /// Evaluates one flattened clock program over the reusable stack.
    fn eval_clock(&mut self, start: usize, end: usize) -> bool {
        self.clock_stack.clear();
        for op in &self.program.clock_pool[start..end] {
            match *op {
                ClockOp::True => self.clock_stack.push(true),
                ClockOp::Present(slot) => self.clock_stack.push(self.present.get(slot)),
                ClockOp::SampleTrue(slot) => self.clock_stack.push(
                    self.present.get(slot)
                        && self.has_value.get(slot)
                        && self.values[slot as usize].is_true(),
                ),
                ClockOp::SampleFalse(slot) => self.clock_stack.push(
                    self.present.get(slot)
                        && self.has_value.get(slot)
                        && self.values[slot as usize].is_false(),
                ),
                ClockOp::And => {
                    let b = self.clock_stack.pop().expect("well-formed clock program");
                    let a = self.clock_stack.pop().expect("well-formed clock program");
                    self.clock_stack.push(a && b);
                }
                ClockOp::Or => {
                    let b = self.clock_stack.pop().expect("well-formed clock program");
                    let a = self.clock_stack.pop().expect("well-formed clock program");
                    self.clock_stack.push(a || b);
                }
                ClockOp::Diff => {
                    let b = self.clock_stack.pop().expect("well-formed clock program");
                    let a = self.clock_stack.pop().expect("well-formed clock program");
                    self.clock_stack.push(a && !b);
                }
            }
        }
        self.clock_stack.pop().expect("well-formed clock program")
    }
}

/// Compiled step machines deploy on the GALS runtime exactly like the
/// interpreter does — the engine never sees the difference.
impl gals_rt::StepMachine for CompiledRuntime {
    fn machine_name(&self) -> &str {
        &self.program.name
    }

    fn input_signals(&self) -> Vec<Name> {
        self.program.inputs.iter().map(|(n, _)| n.clone()).collect()
    }

    fn output_signals(&self) -> Vec<Name> {
        self.program
            .outputs
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    fn feed_value(&mut self, signal: &str, value: Value) {
        self.feed(signal, [value]);
    }

    fn try_step(&mut self) -> Result<(), gals_rt::StepFault> {
        match self.step() {
            Ok(()) => Ok(()),
            Err(RuntimeError::InputExhausted(signal)) => Err(gals_rt::StepFault::NeedInput(signal)),
            Err(other) => Err(gals_rt::StepFault::Fault(other.to_string())),
        }
    }

    fn produced(&self, signal: &str) -> &[Value] {
        self.output(signal)
    }
}

/// Instantiates a deployable machine of the requested kind for a step
/// program — the single factory every deployment-assembling consumer
/// (`isochron::Design`, the partition runner, the benches) routes
/// through.
pub fn machine_of(
    kind: gals_rt::MachineKind,
    program: StepProgram,
) -> Box<dyn gals_rt::StepMachine> {
    match kind {
        gals_rt::MachineKind::Interpreted => Box::new(SequentialRuntime::new(program)),
        gals_rt::MachineKind::Compiled => Box::new(CompiledRuntime::from_program(&program)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    fn compiled_of(def: &signal_lang::ProcessDef) -> CompiledRuntime {
        CompiledRuntime::from_program(&generate_from_kernel(&def.normalize().unwrap()))
    }

    #[test]
    fn compiled_filter_matches_the_interpreter_semantics() {
        let mut rt = compiled_of(&stdlib::filter());
        rt.feed("y", [true, false, false, true, true, false]);
        let steps = rt.run(100);
        assert_eq!(steps, 6);
        assert_eq!(rt.output("x").len(), 3);
        assert!(rt.output("x").iter().all(|v| v.is_true()));
    }

    #[test]
    fn compiled_buffer_alternates_like_the_paper_code() {
        let mut rt = compiled_of(&stdlib::buffer());
        rt.feed("y", [true, false, true]);
        let steps = rt.run(100);
        assert!(steps >= 6, "only {steps} steps completed");
        assert_eq!(
            rt.output("x"),
            &[Value::Bool(true), Value::Bool(false), Value::Bool(true)]
        );
    }

    #[test]
    fn compiled_producer_counts_like_the_paper() {
        let mut rt = compiled_of(&stdlib::producer());
        rt.feed("a", [true, true, false, true, false]);
        rt.run(100);
        assert_eq!(
            rt.output("u"),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(rt.output("x"), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn exhausted_inputs_stop_the_run_without_corrupting_state() {
        let mut rt = compiled_of(&stdlib::filter());
        rt.feed("y", [true]);
        assert_eq!(rt.run(10), 1);
        let before = rt.steps();
        assert!(matches!(rt.step(), Err(RuntimeError::InputExhausted(_))));
        assert_eq!(rt.steps(), before);
        rt.feed("y", [false]);
        assert_eq!(rt.run(10), 1);
        assert_eq!(rt.output("x").len(), 1);
    }

    #[test]
    fn every_paper_process_agrees_with_the_interpreter() {
        for def in stdlib::all_paper_processes() {
            let program = generate_from_kernel(&def.normalize().unwrap());
            let mut interpreted = SequentialRuntime::new(program.clone());
            let mut compiled = CompiledRuntime::from_program(&program);
            let types = crate::types::signal_types(&program);
            for input in &program.inputs {
                let feed: Vec<Value> = match types.get(input) {
                    Some(crate::types::SigType::Int) => (1..=12).map(Value::Int).collect(),
                    _ => (0..12).map(|i| Value::Bool(i % 3 != 1)).collect(),
                };
                interpreted.feed(input.as_str(), feed.iter().copied());
                compiled.feed(input.as_str(), feed.iter().copied());
            }
            let a = interpreted.run(200);
            let b = compiled.run(200);
            assert_eq!(a, b, "{}: step counts diverge", def.name);
            for output in &program.outputs {
                assert_eq!(
                    interpreted.output(output.as_str()),
                    compiled.output(output.as_str()),
                    "{}: flows diverge on {output}",
                    def.name
                );
            }
        }
    }

    #[test]
    fn compilation_interns_every_interface_signal() {
        let program = generate_from_kernel(&stdlib::producer().normalize().unwrap());
        let compiled = CompiledProgram::compile(&program);
        assert_eq!(compiled.name(), "producer");
        assert!(compiled.slot_count() >= program.inputs.len() + program.outputs.len());
        assert_eq!(compiled.op_count(), program.actions.len());
    }

    #[test]
    fn scratch_buffers_do_not_grow_after_the_first_step() {
        let mut rt = compiled_of(&stdlib::buffer());
        rt.feed("y", [true, false, true, false, true, false, true, false]);
        assert_eq!(rt.run(2), 2);
        let caps = (
            rt.clock_stack.capacity(),
            rt.consumed.capacity(),
            rt.latches.capacity(),
            rt.pending_writes.capacity(),
            rt.args_buf.capacity(),
        );
        assert!(rt.run(100) >= 10);
        assert_eq!(
            caps,
            (
                rt.clock_stack.capacity(),
                rt.consumed.capacity(),
                rt.latches.capacity(),
                rt.pending_writes.capacity(),
                rt.args_buf.capacity(),
            ),
            "per-step scratch reallocated on the hot path"
        );
    }
}
