//! Concurrent code generation scheme (Section 5).
//!
//! The producer and the consumer are compiled separately and run on their
//! own threads; the rendez-vous on the shared variable is implemented with a
//! synchronization primitive.  The paper protects a shared variable with a
//! pair of pthread barriers; here the exchange uses a bounded channel, which
//! realizes the same one-place rendez-vous (the producer blocks until the
//! consumer has taken the previous value and vice versa) without the
//! deadlock pitfalls of mis-matched barrier counts.

use crossbeam::channel;
use parking_lot::Mutex;
use signal_lang::Value;
use std::sync::Arc;

use crate::ir::StepProgram;
use crate::runtime::SequentialRuntime;

/// The result of a concurrent producer/consumer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentOutcome {
    /// Values of `u` produced by the producer thread.
    pub u: Vec<Value>,
    /// Values of the shared signal exchanged through the rendez-vous.
    pub shared: Vec<Value>,
    /// Values of `v` produced by the consumer thread.
    pub v: Vec<Value>,
    /// Number of steps executed by the producer thread.
    pub producer_steps: u64,
    /// Number of steps executed by the consumer thread.
    pub consumer_steps: u64,
}

/// Runs the producer and consumer step programs concurrently, the producer
/// paced by `a_values` and the consumer by `b_values`, exchanging the shared
/// signal through a one-place rendez-vous.
///
/// The streams must be *compatible*: the number of `false` values in
/// `a_values` should not be smaller than the number of `true` values in
/// `b_values`, otherwise the consumer stops early when the producer side of
/// the channel closes (which is also how the generated code behaves when an
/// input stream ends).
pub fn run_producer_consumer(
    producer: StepProgram,
    consumer: StepProgram,
    a_values: &[bool],
    b_values: &[bool],
) -> ConcurrentOutcome {
    let (tx, rx) = channel::bounded::<Value>(1);
    let shared_log = Arc::new(Mutex::new(Vec::new()));

    let a_values = a_values.to_vec();
    let b_values = b_values.to_vec();
    let shared_log_producer = Arc::clone(&shared_log);

    let mut outcome = ConcurrentOutcome {
        u: Vec::new(),
        shared: Vec::new(),
        v: Vec::new(),
        producer_steps: 0,
        consumer_steps: 0,
    };

    std::thread::scope(|scope| {
        let producer_handle = scope.spawn(move || {
            let mut rt = SequentialRuntime::new(producer);
            let mut sent = 0usize;
            for a in a_values {
                rt.feed("a", [Value::Bool(a)]);
                let before = rt.output("x").len();
                if rt.step().is_err() {
                    break;
                }
                let x = rt.output("x");
                if x.len() > before {
                    let value = x[before];
                    shared_log_producer.lock().push(value);
                    // Rendez-vous: blocks until the consumer takes it.
                    if tx.send(value).is_err() {
                        break;
                    }
                    sent += 1;
                }
            }
            drop(tx);
            (rt.output("u").to_vec(), rt.steps(), sent)
        });

        let consumer_handle = scope.spawn(move || {
            let mut rt = SequentialRuntime::new(consumer);
            for b in b_values {
                if b {
                    // Rendez-vous: blocks until the producer delivers x.
                    match rx.recv() {
                        Ok(x) => rt.feed("x", [x]),
                        Err(_) => break,
                    }
                }
                rt.feed("b", [Value::Bool(b)]);
                if rt.step().is_err() {
                    break;
                }
            }
            (rt.output("v").to_vec(), rt.steps())
        });

        let (u, producer_steps, _) = producer_handle.join().expect("producer thread");
        let (v, consumer_steps) = consumer_handle.join().expect("consumer thread");
        outcome.u = u;
        outcome.v = v;
        outcome.producer_steps = producer_steps;
        outcome.consumer_steps = consumer_steps;
    });
    outcome.shared = shared_log.lock().clone();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    fn programs() -> (StepProgram, StepProgram) {
        (
            generate_from_kernel(&stdlib::producer().normalize().unwrap()),
            generate_from_kernel(&stdlib::consumer().normalize().unwrap()),
        )
    }

    #[test]
    fn concurrent_flows_match_the_sequential_controller() {
        let a = [true, false, true, false, true];
        let b = [false, true, false, true, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(outcome.u.len(), 3);
        let v: Vec<i64> = outcome.v.iter().map(|x| x.as_int().unwrap()).collect();
        assert_eq!(v, vec![1, 2, 3, 5, 6]);
        assert_eq!(outcome.producer_steps, 5);
        assert_eq!(outcome.consumer_steps, 5);
    }

    #[test]
    fn interleaving_does_not_change_the_flows() {
        // The same logical streams split differently between the two sides:
        // the consumer asks for x long before the producer computes it.
        let a = [true, true, true, false];
        let b = [true, false, false, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared, vec![Value::Int(1)]);
        let v: Vec<i64> = outcome.v.iter().map(|x| x.as_int().unwrap()).collect();
        // v = x1, +1, +1, +1 = 1, 2, 3, 4.
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn consumer_stops_cleanly_when_the_producer_cannot_deliver() {
        // b asks for x twice but a only provides one false: the consumer
        // stops after the channel closes.
        let a = [false];
        let b = [true, true, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared.len(), 1);
        assert_eq!(outcome.v.len(), 1);
    }
}
