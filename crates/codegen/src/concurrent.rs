//! Concurrent code generation scheme (Section 5).
//!
//! The producer and the consumer are compiled separately and run on their
//! own threads; the rendez-vous on the shared variable is implemented with
//! a synchronization primitive.  The paper protects a shared variable with
//! a pair of pthread barriers; here the pair is deployed on the general
//! multi-threaded GALS engine (`gals_rt`) with the channel capacity set to
//! **one**: a one-place bounded channel realizes the same rendez-vous (the
//! producer blocks until the consumer has taken the previous value and vice
//! versa) without the deadlock pitfalls of mis-matched barrier counts, and
//! the same engine scales the scheme to arbitrary component counts and
//! buffer depths.

use gals_rt::{Backend, Deployment};
use signal_lang::Value;

use crate::ir::StepProgram;
use crate::runtime::SequentialRuntime;

/// The result of a concurrent producer/consumer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentOutcome {
    /// Values of `u` produced by the producer thread.
    pub u: Vec<Value>,
    /// Values of the shared signal exchanged through the rendez-vous.
    pub shared: Vec<Value>,
    /// Values of `v` produced by the consumer thread.
    pub v: Vec<Value>,
    /// Number of steps executed by the producer thread.
    pub producer_steps: u64,
    /// Number of steps executed by the consumer thread.
    pub consumer_steps: u64,
}

/// Runs the producer and consumer step programs concurrently, the producer
/// paced by `a_values` and the consumer by `b_values`, exchanging the shared
/// signal through a one-place rendez-vous — the `capacity = 1` special case
/// of a [`gals_rt::Deployment`].
///
/// The streams must be *compatible*: the number of `false` values in
/// `a_values` should not be smaller than the number of `true` values in
/// `b_values`, otherwise the consumer stops early when the producer side of
/// the channel closes (which is also how the generated code behaves when an
/// input stream ends).
pub fn run_producer_consumer(
    producer: StepProgram,
    consumer: StepProgram,
    a_values: &[bool],
    b_values: &[bool],
) -> ConcurrentOutcome {
    run_producer_consumer_on(Backend::Auto, producer, consumer, a_values, b_values)
}

/// Like [`run_producer_consumer`] with an explicit channel backend — the
/// rendez-vous is transport-agnostic (isochrony holds over any reliable
/// order-preserving medium), so the mpsc channel and the lock-free SPSC
/// ring must produce identical flows and differ only in hand-off cost.
pub fn run_producer_consumer_on(
    backend: Backend,
    producer: StepProgram,
    consumer: StepProgram,
    a_values: &[bool],
    b_values: &[bool],
) -> ConcurrentOutcome {
    let mut deployment = Deployment::new();
    deployment.set_backend(backend);
    deployment
        .set_capacity(1)
        .expect("capacity 1 is always accepted");
    deployment.add_machine(Box::new(SequentialRuntime::new(producer)));
    deployment.add_machine(Box::new(SequentialRuntime::new(consumer)));
    deployment.feed("a", a_values.iter().copied());
    deployment.feed("b", b_values.iter().copied());
    let outcome = deployment
        .run()
        .expect("the producer/consumer pair is a well-formed deployment");
    ConcurrentOutcome {
        u: outcome.flow("u").to_vec(),
        shared: outcome.flow("x").to_vec(),
        v: outcome.flow("v").to_vec(),
        producer_steps: outcome.stats().components[0].reactions,
        consumer_steps: outcome.stats().components[1].reactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    fn programs() -> (StepProgram, StepProgram) {
        (
            generate_from_kernel(&stdlib::producer().normalize().unwrap()),
            generate_from_kernel(&stdlib::consumer().normalize().unwrap()),
        )
    }

    #[test]
    fn concurrent_flows_match_the_sequential_controller() {
        let a = [true, false, true, false, true];
        let b = [false, true, false, true, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(outcome.u.len(), 3);
        let v: Vec<i64> = outcome.v.iter().map(|x| x.as_int().unwrap()).collect();
        assert_eq!(v, vec![1, 2, 3, 5, 6]);
        assert_eq!(outcome.producer_steps, 5);
        assert_eq!(outcome.consumer_steps, 5);
    }

    #[test]
    fn interleaving_does_not_change_the_flows() {
        // The same logical streams split differently between the two sides:
        // the consumer asks for x long before the producer computes it.
        let a = [true, true, true, false];
        let b = [true, false, false, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared, vec![Value::Int(1)]);
        let v: Vec<i64> = outcome.v.iter().map(|x| x.as_int().unwrap()).collect();
        // v = x1, +1, +1, +1 = 1, 2, 3, 4.
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn consumer_stops_cleanly_when_the_producer_cannot_deliver() {
        // b asks for x twice but a only provides one false: the consumer
        // stops after the channel closes.
        let a = [false];
        let b = [true, true, false];
        let (p, c) = programs();
        let outcome = run_producer_consumer(p, c, &a, &b);
        assert_eq!(outcome.shared.len(), 1);
        assert_eq!(outcome.v.len(), 1);
    }

    #[test]
    fn every_backend_realizes_the_same_rendez_vous() {
        let a = [true, false, true, false, true];
        let b = [false, true, false, true, false];
        let (p, c) = programs();
        let reference = run_producer_consumer(p.clone(), c.clone(), &a, &b);
        for backend in [Backend::Mpsc, Backend::SpscRing] {
            let outcome = run_producer_consumer_on(backend, p.clone(), c.clone(), &a, &b);
            assert_eq!(outcome, reference, "backend {backend}");
        }
    }

    #[test]
    fn wider_buffers_preserve_the_flows_of_the_rendez_vous() {
        // The rendez-vous is the capacity-1 special case: re-running the
        // same streams through the general engine with a deeper buffer must
        // produce identical flows (only the interleaving changes).
        let a = [true, false, true, false, true, false];
        let b = [false, true, false, true, false, true];
        let (p, c) = programs();
        let narrow = run_producer_consumer(p.clone(), c.clone(), &a, &b);
        let mut deployment = Deployment::new();
        deployment.set_capacity(64).expect("nonzero");
        deployment.add_machine(Box::new(SequentialRuntime::new(p)));
        deployment.add_machine(Box::new(SequentialRuntime::new(c)));
        deployment.feed("a", a.iter().copied());
        deployment.feed("b", b.iter().copied());
        let wide = deployment.run().expect("runs");
        assert_eq!(narrow.u, wide.flow("u").to_vec());
        assert_eq!(narrow.shared, wide.flow("x").to_vec());
        assert_eq!(narrow.v, wide.flow("v").to_vec());
    }
}
