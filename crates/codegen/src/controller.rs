//! Controller synthesis (Section 5.2).
//!
//! The composition of two endochronous components (the producer and the
//! consumer of the paper) is weakly endochronous: their only interaction is
//! a clock constraint on the shared signal (`[not a] = [b]` for the shared
//! `x`).  Instead of adding master clocks `C_a`, `C_b` to the interface (the
//! scheme of Section 5.1), the contributed scheme synthesizes a *controller*
//! that:
//!
//! * keeps reading `a` and `b` independently while no rendez-vous is needed,
//! * suspends the side that reaches the constraint first (`a` false, or `b`
//!   true) until the other side reaches it too,
//! * then lets both components react in the same iteration, implementing the
//!   rendez-vous on the shared variable.
//!
//! [`Controller`] is the synthesized scheduler state machine;
//! [`ControlledPair`] drives two generated step programs with it, which is
//! the in-process equivalent of the paper's `main_iterate` listing.

use std::collections::VecDeque;
use std::fmt::Write as _;

use signal_lang::Value;

use crate::ir::StepProgram;
use crate::runtime::{RuntimeError, SequentialRuntime};

/// The synthesized scheduler state machine of Section 5.2.
///
/// `pre_ra` / `pre_rb` record that the corresponding side is suspended on a
/// pending rendez-vous; `pre_r` records that a rendez-vous was completed at
/// the previous iteration.
#[derive(Debug, Clone, Default)]
pub struct Controller {
    pre_ra: bool,
    pre_rb: bool,
    pre_r: bool,
}

impl Controller {
    /// Creates a controller in its initial state (nothing pending).
    pub fn new() -> Self {
        Controller::default()
    }

    /// Decides whether each side should read a fresh input this iteration
    /// (`(C_a, C_b)` in the paper's listing).
    pub fn decide(&self) -> (bool, bool) {
        let c_a = if self.pre_r { true } else { !self.pre_ra };
        let c_b = if self.pre_r { true } else { !self.pre_rb };
        (c_a, c_b)
    }

    /// Commits the iteration: `ra` / `rb` say whether each side is (still)
    /// requesting the rendez-vous; returns `r`, true when the rendez-vous
    /// fires this iteration.
    pub fn commit(&mut self, ra: bool, rb: bool) -> bool {
        let r = ra && rb;
        self.pre_ra = ra && !r;
        self.pre_rb = rb && !r;
        self.pre_r = r;
        r
    }

    /// Returns `true` when a side is currently suspended.
    pub fn is_suspended(&self) -> bool {
        self.pre_ra || self.pre_rb
    }
}

/// How two components are linked through a shared signal and a clock
/// constraint on the values of their pacing inputs.
#[derive(Debug, Clone)]
pub struct SharedLink {
    /// The pacing input of the producing component (`a`).
    pub left_input: String,
    /// The value of `left_input` at which the producer needs the rendez-vous
    /// (`false` in the paper: `x` is produced when `a` is false).
    pub left_rendezvous: bool,
    /// The pacing input of the consuming component (`b`).
    pub right_input: String,
    /// The value of `right_input` at which the consumer needs the
    /// rendez-vous (`true` in the paper: `x` is consumed when `b` is true).
    pub right_rendezvous: bool,
    /// The shared signal carried from producer to consumer.
    pub shared: String,
}

impl SharedLink {
    /// The link of the paper's producer/consumer pair: `[not a] = [b]` on
    /// the shared `x`.
    pub fn producer_consumer() -> Self {
        SharedLink {
            left_input: "a".into(),
            left_rendezvous: false,
            right_input: "b".into(),
            right_rendezvous: true,
            shared: "x".into(),
        }
    }
}

/// Two separately generated step programs scheduled by a synthesized
/// controller — the compositional code generation scheme of Section 5.2.
#[derive(Debug)]
pub struct ControlledPair {
    left: SequentialRuntime,
    right: SequentialRuntime,
    link: SharedLink,
    controller: Controller,
    left_inputs: VecDeque<bool>,
    right_inputs: VecDeque<bool>,
    pending_left: Option<bool>,
    pending_right: Option<bool>,
    iterations: u64,
    rendezvous: u64,
}

impl ControlledPair {
    /// Builds the controlled composition of two step programs.
    pub fn new(left: StepProgram, right: StepProgram, link: SharedLink) -> Self {
        ControlledPair {
            left: SequentialRuntime::new(left),
            right: SequentialRuntime::new(right),
            link,
            controller: Controller::new(),
            left_inputs: VecDeque::new(),
            right_inputs: VecDeque::new(),
            pending_left: None,
            pending_right: None,
            iterations: 0,
            rendezvous: 0,
        }
    }

    /// Queues values for the left (producer-side) pacing input.
    pub fn feed_left<I: IntoIterator<Item = bool>>(&mut self, values: I) {
        self.left_inputs.extend(values);
    }

    /// Queues values for the right (consumer-side) pacing input.
    pub fn feed_right<I: IntoIterator<Item = bool>>(&mut self, values: I) {
        self.right_inputs.extend(values);
    }

    /// The values produced so far on an output of the left component.
    pub fn left_output(&self, signal: &str) -> &[Value] {
        self.left.output(signal)
    }

    /// The values produced so far on an output of the right component.
    pub fn right_output(&self, signal: &str) -> &[Value] {
        self.right.output(signal)
    }

    /// The number of completed main iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The number of rendez-vous performed on the shared signal.
    pub fn rendezvous(&self) -> u64 {
        self.rendezvous
    }

    /// Performs one main iteration.  Returns `Ok(false)` when an enabled
    /// read finds its input queue empty (end of the simulation), mirroring
    /// the `return FALSE` of the generated C.
    pub fn iterate(&mut self) -> Result<bool, RuntimeError> {
        let (c_a, c_b) = self.controller.decide();
        // Read fresh pacing inputs where allowed.
        if c_a {
            match self.left_inputs.pop_front() {
                Some(v) => self.pending_left = Some(v),
                None => return Ok(false),
            }
        }
        if c_b {
            match self.right_inputs.pop_front() {
                Some(v) => self.pending_right = Some(v),
                None => return Ok(false),
            }
        }
        let a = self.pending_left.expect("left value available");
        let b = self.pending_right.expect("right value available");
        let ra = a == self.link.left_rendezvous;
        let rb = b == self.link.right_rendezvous;
        let r = ra && rb;
        // A side reacts when it does not need the rendez-vous, or when the
        // rendez-vous fires.
        let run_left = (c_a && !ra) || r;
        let run_right = (c_b && !rb) || r;
        if run_left {
            let shared_before = self.left.output(&self.link.shared).len();
            self.left.feed(&self.link.left_input, [Value::Bool(a)]);
            self.left.step()?;
            let shared_after = self.left.output(&self.link.shared);
            if shared_after.len() > shared_before {
                let value = shared_after[shared_before];
                self.right.feed(&self.link.shared, [value]);
            }
            self.pending_left = None;
        }
        if run_right {
            self.right.feed(&self.link.right_input, [Value::Bool(b)]);
            self.right.step()?;
            self.pending_right = None;
        }
        if r {
            self.rendezvous += 1;
        }
        self.controller.commit(ra, rb);
        self.iterations += 1;
        Ok(true)
    }

    /// Runs iterations until an input runs dry or `max` iterations were
    /// performed; returns the number of completed iterations.
    pub fn run(&mut self, max: usize) -> usize {
        let mut done = 0;
        for _ in 0..max {
            match self.iterate() {
                Ok(true) => done += 1,
                _ => break,
            }
        }
        done
    }
}

/// Renders the paper's controlled `main_iterate` as C-like text for the
/// given link (documentation artefact mirroring the §5.2 listing).
pub fn emit_controlled_main_c(link: &SharedLink, left_name: &str, right_name: &str) -> String {
    let mut out = String::new();
    let a = &link.left_input;
    let b = &link.right_input;
    let _ = writeln!(out, "bool main_iterate() {{");
    let _ = writeln!(out, "  /* {a} = scheduler({a}, ra, r) */");
    let _ = writeln!(out, "  if (pre_r) C_{a} = true;");
    let _ = writeln!(out, "  else if (pre_ra) C_{a} = false;");
    let _ = writeln!(out, "  else C_{a} = true;");
    let _ = writeln!(
        out,
        "  if (C_{a}) {{ if (!r_main_{a}(&{a})) return false; }}"
    );
    let _ = writeln!(
        out,
        "  if (C_{a}) ra = {}{a}; else ra = pre_ra;",
        if link.left_rendezvous { "" } else { "!" }
    );
    let _ = writeln!(out, "  /* {b} = scheduler({b}, rb, r) */");
    let _ = writeln!(out, "  if (pre_r) C_{b} = true;");
    let _ = writeln!(out, "  else if (pre_rb) C_{b} = false;");
    let _ = writeln!(out, "  else C_{b} = true;");
    let _ = writeln!(
        out,
        "  if (C_{b}) {{ if (!r_main_{b}(&{b})) return false; }}"
    );
    let _ = writeln!(
        out,
        "  if (C_{b}) rb = {}{b}; else rb = pre_rb;",
        if link.right_rendezvous { "" } else { "!" }
    );
    let _ = writeln!(out, "  r = ra && rb;");
    let _ = writeln!(out, "  C_c = (C_{a} && !ra) || r;");
    let _ = writeln!(out, "  C_d = (C_{b} && !rb) || r;");
    let _ = writeln!(out, "  if (C_c) {left_name}_iterate();");
    let _ = writeln!(out, "  if (C_d) {right_name}_iterate();");
    let _ = writeln!(out, "  pre_ra = ra; pre_rb = rb; pre_r = r;");
    let _ = writeln!(out, "  return true;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    fn pair() -> ControlledPair {
        let producer = generate_from_kernel(&stdlib::producer().normalize().unwrap());
        let consumer = generate_from_kernel(&stdlib::consumer().normalize().unwrap());
        ControlledPair::new(producer, consumer, SharedLink::producer_consumer())
    }

    #[test]
    fn controller_reads_both_sides_until_one_suspends() {
        let mut c = Controller::new();
        assert_eq!(c.decide(), (true, true));
        // a requests the rendez-vous, b does not: a is suspended.
        assert!(!c.commit(true, false));
        assert!(c.is_suspended());
        assert_eq!(c.decide(), (false, true));
        // b finally requests it too: the rendez-vous fires.
        assert!(c.commit(true, true));
        assert!(!c.is_suspended());
        assert_eq!(c.decide(), (true, true));
    }

    #[test]
    fn independent_iterations_need_no_synchronization() {
        // a stays true and b stays false: each side progresses alone, no
        // rendez-vous ever fires.
        let mut pair = pair();
        pair.feed_left([true, true, true]);
        pair.feed_right([false, false, false]);
        assert_eq!(pair.run(100), 3);
        assert_eq!(pair.rendezvous(), 0);
        assert_eq!(pair.left_output("u").len(), 3);
        assert_eq!(pair.right_output("v").len(), 3);
    }

    #[test]
    fn the_shared_value_crosses_on_rendezvous() {
        // Interleave so that the producer reaches x before the consumer asks
        // for it, then the controller suspends the producer until b = true.
        let mut pair = pair();
        pair.feed_left([true, false, true]);
        pair.feed_right([false, false, true, false]);
        pair.run(100);
        assert!(pair.rendezvous() >= 1);
        // v accumulated x (=1) exactly once.
        let v = pair.right_output("v");
        assert!(!v.is_empty());
        // u counted the true occurrences of a.
        assert_eq!(pair.left_output("u").len(), 2);
        // x was produced once, with value 1.
        assert_eq!(pair.left_output("x"), &[Value::Int(1)]);
    }

    #[test]
    fn flows_match_the_uncontrolled_reference() {
        // Reference: the synchronous interpreter of the composition with a
        // compatible instant-by-instant drive.
        let mut pair = pair();
        let a = [true, false, true, false, true];
        let b = [false, true, false, true, false];
        pair.feed_left(a);
        pair.feed_right(b);
        pair.run(100);
        // Producer: u counts trues of a = 3 values; x counts falses = 2.
        assert_eq!(pair.left_output("u").len(), 3);
        assert_eq!(pair.left_output("x"), &[Value::Int(1), Value::Int(2)]);
        // Consumer: v = 1, 1+x1=2, 3, 3+x2=5, 6.
        let v: Vec<i64> = pair
            .right_output("v")
            .iter()
            .map(|x| x.as_int().unwrap())
            .collect();
        assert_eq!(v, vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn emitted_controller_text_mirrors_the_paper() {
        let text = emit_controlled_main_c(&SharedLink::producer_consumer(), "producer", "consumer");
        assert!(text.contains("if (pre_r) C_a = true;"));
        assert!(text.contains("ra = !a"));
        assert!(text.contains("rb = b"));
        assert!(text.contains("C_c = (C_a && !ra) || r;"));
        assert!(text.contains("pre_ra = ra; pre_rb = rb; pre_r = r;"));
    }
}
