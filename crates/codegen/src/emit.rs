//! Emission of the step program as C-like source text.
//!
//! The emitted code mirrors the listings of the paper: a `<name>_iterate`
//! transition function returning `FALSE` when an input stream is exhausted,
//! plus a `main` driving the simulation loop.

use std::fmt::Write as _;

use signal_lang::{Atom, KernelEq, PrimOp};

use crate::ir::{Action, ClockCode, StepProgram};
use crate::types::{signal_types, SigType};

/// Renders the transition function and the simulation `main` of a step
/// program as C source text.
pub fn emit_c(program: &StepProgram) -> String {
    let mut out = String::new();
    let name = &program.name;
    let _ = writeln!(out, "/* generated from process {name} */");
    let _ = writeln!(out, "#include <stdbool.h>");
    let _ = writeln!(out);
    for (register, init) in &program.registers {
        let _ = writeln!(
            out,
            "static {} {register} = {};",
            c_type(init),
            c_value(init)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "bool {name}_iterate() {{");
    // Per-signal value locals: every signal the step computes or reads,
    // except the registers (those live in the statics above — declaring
    // them again would shadow the state).
    let types = signal_types(program);
    for action in &program.actions {
        if let Action::ComputeClock { signal, .. } = action {
            if program.registers.iter().any(|(r, _)| r == signal) {
                continue;
            }
            let ty = types.get(signal).copied().unwrap_or(SigType::Int);
            let _ = writeln!(out, "  {} {signal};", ty.c_name());
        }
    }
    for action in &program.actions {
        match action {
            Action::ComputeClock { signal, code } => {
                let _ = writeln!(out, "  bool C_{signal} = {};", c_clock(code));
            }
            Action::ReadInput { signal } => {
                let _ = writeln!(out, "  if (C_{signal}) {{");
                let _ = writeln!(out, "    if (!r_{name}_{signal}(&{signal})) return false;");
                let _ = writeln!(out, "  }}");
            }
            Action::Eval { equation } => {
                let target = equation.defined();
                let _ = writeln!(out, "  if (C_{target}) {{");
                let _ = writeln!(out, "    {target} = {};", c_expr(equation));
                let _ = writeln!(out, "  }}");
            }
            Action::WriteOutput { signal } => {
                let _ = writeln!(out, "  if (C_{signal}) {{");
                let _ = writeln!(out, "    w_{name}_{signal}({signal});");
                let _ = writeln!(out, "  }}");
            }
            Action::UpdateRegister { register, source } => {
                let _ = writeln!(out, "  if (C_{source}) {register} = {source};");
            }
        }
    }
    let _ = writeln!(out, "  return true;");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "  bool code;");
    let _ = writeln!(out, "  {name}_OpenIO();");
    let _ = writeln!(out, "  code = {name}_initialize();");
    let _ = writeln!(out, "  while (code) code = {name}_iterate();");
    let _ = writeln!(out, "  {name}_CloseIO();");
    let _ = writeln!(out, "}}");
    out
}

fn c_type(v: &signal_lang::Value) -> &'static str {
    match v {
        signal_lang::Value::Bool(_) => "bool",
        signal_lang::Value::Int(_) => "long",
    }
}

fn c_value(v: &signal_lang::Value) -> String {
    v.to_string()
}

fn c_clock(code: &ClockCode) -> String {
    match code {
        ClockCode::Always => "true".to_string(),
        ClockCode::SameAs(n) => format!("C_{n}"),
        ClockCode::SampleTrue(n) => format!("{n}"),
        ClockCode::SampleFalse(n) => format!("!{n}"),
        ClockCode::And(a, b) => format!("({} && {})", c_clock(a), c_clock(b)),
        ClockCode::Or(a, b) => format!("({} || {})", c_clock(a), c_clock(b)),
        ClockCode::Diff(a, b) => format!("({} && !{})", c_clock(a), c_clock(b)),
    }
}

fn c_atom(a: &Atom) -> String {
    match a {
        Atom::Const(v) => v.to_string(),
        Atom::Var(n) => n.to_string(),
    }
}

fn c_expr(eq: &KernelEq) -> String {
    match eq {
        KernelEq::Delay { out, .. } => format!("{out} /* register */"),
        KernelEq::When { arg, .. } => c_atom(arg),
        KernelEq::Default { left, right, .. } => match left {
            Atom::Var(n) => format!("(C_{n} ? {} : {})", c_atom(left), c_atom(right)),
            Atom::Const(_) => c_atom(left),
        },
        KernelEq::Func { op, args, .. } => match (op, args.as_slice()) {
            (PrimOp::Id, [a]) => c_atom(a),
            (PrimOp::Not, [a]) => format!("!{}", c_atom(a)),
            (PrimOp::Neg, [a]) => format!("-{}", c_atom(a)),
            (op, [a, b]) => format!("({} {} {})", c_atom(a), c_op(*op), c_atom(b)),
            _ => format!("/* {eq} */ 0"),
        },
    }
}

fn c_op(op: PrimOp) -> &'static str {
    match op {
        PrimOp::And => "&&",
        PrimOp::Or => "||",
        PrimOp::Xor => "^",
        PrimOp::Add => "+",
        PrimOp::Sub => "-",
        PrimOp::Mul => "*",
        PrimOp::Div => "/",
        PrimOp::Eq => "==",
        PrimOp::Ne => "!=",
        PrimOp::Lt => "<",
        PrimOp::Le => "<=",
        PrimOp::Gt => ">",
        PrimOp::Ge => ">=",
        PrimOp::Id | PrimOp::Not | PrimOp::Neg => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    #[test]
    fn buffer_emission_mirrors_the_paper_listing() {
        let program = generate_from_kernel(&stdlib::buffer().normalize().unwrap());
        let c = emit_c(&program);
        assert!(c.contains("bool buffer_iterate()"));
        // The input y is read behind its clock test, as in the paper.
        assert!(c.contains("if (!r_buffer_y(&y)) return false;"));
        // The output x is written.
        assert!(c.contains("w_buffer_x(x);"));
        // The state register is updated at the end (s = t).
        assert!(c.contains("s = t;"));
        // The simulation main loop.
        assert!(c.contains("while (code) code = buffer_iterate();"));
    }

    #[test]
    fn producer_emission_declares_registers_and_branches() {
        let program = generate_from_kernel(&stdlib::producer().normalize().unwrap());
        let c = emit_c(&program);
        assert!(c.contains("producer_iterate"));
        assert!(c.contains("static long"));
        // Both branches of a appear as clock tests.
        assert!(c.contains("bool C_u"));
        assert!(c.contains("bool C_x"));
    }

    #[test]
    fn every_paper_process_emits_valid_looking_c() {
        for def in stdlib::all_paper_processes() {
            let program = generate_from_kernel(&def.normalize().unwrap());
            let c = emit_c(&program);
            assert!(c.contains(&format!("bool {}_iterate()", def.name)));
            assert!(c.matches('{').count() == c.matches('}').count());
        }
    }

    /// The module is self-contained: every signal the iterate body
    /// computes is either a local declared at the top of the function or
    /// a file-scope register static, in both cases textually before its
    /// first use.
    #[test]
    fn every_signal_is_declared_before_use() {
        for def in stdlib::all_paper_processes() {
            let program = generate_from_kernel(&def.normalize().unwrap());
            let c = emit_c(&program);
            let body_start = c.find("_iterate()").expect("an iterate function");
            for action in &program.actions {
                if let Action::ComputeClock { signal, .. } = action {
                    if program.registers.iter().any(|(r, _)| r == signal) {
                        assert!(
                            c[..body_start].contains(&format!(" {signal} = ")),
                            "{}: register {signal} has no file-scope static",
                            def.name
                        );
                        continue;
                    }
                    let declared = c[body_start..]
                        .find(&format!(" {signal};"))
                        .unwrap_or_else(|| panic!("{}: {signal} never declared", def.name));
                    let first_use = c[body_start..]
                        .find(&format!("C_{signal} ="))
                        .unwrap_or(usize::MAX);
                    assert!(
                        declared < first_use,
                        "{}: {signal} used before its declaration",
                        def.name
                    );
                }
            }
        }
    }
}
