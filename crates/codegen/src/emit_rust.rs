//! Emission of the step program as self-contained Rust source.
//!
//! Where [`emit`](crate::emit) mirrors the C listings of the paper,
//! this emitter produces a module that actually *builds and runs* in CI:
//! no external declarations, no allocation inside the step function —
//! plain typed locals for the signals, struct fields for the delay
//! registers, and an [`Io`-trait](#io-contract) boundary for the
//! environment streams.  [`emit_rust_harness`] appends a `main` speaking
//! a line protocol over stdin/stdout so the compiled binary can be
//! driven behind [`gals_rt::StepMachine`] by
//! [`EmittedMachine`](crate::emitted::EmittedMachine).
//!
//! # Io contract
//!
//! The generated `step` pulls inputs through `Io::read` *as it goes*; if
//! the step stalls (`NeedInput`, `Fault`) the caller must treat every
//! read of that attempt as not having happened.  The generated harness
//! honors this with a cursor-and-rollback queue; the machine itself
//! commits its registers and output writes only after the last read of
//! the step succeeded, so a stalled step observably never ran — the
//! same contract as the interpreter and the compiled runtime.

use std::fmt::Write as _;

use signal_lang::{Atom, KernelEq, PrimOp, Value};

use crate::ir::{Action, ClockCode, StepProgram};
use crate::types::{signal_types, SigType};

/// Renders the step program as a self-contained Rust module: a `Value`
/// enum, the `Io` trait, `INPUTS`/`OUTPUTS` name tables, and a `Machine`
/// with a `step` over plain locals and register fields.
pub fn emit_rust(program: &StepProgram) -> String {
    let mut out = String::new();
    let types = signal_types(program);
    let ty_of = |n: &signal_lang::Name| types.get(n).copied().unwrap_or(SigType::Int);
    let name = &program.name;

    let _ = writeln!(out, "//! Generated from process `{name}` — do not edit.");
    let _ = writeln!(
        out,
        "#![allow(dead_code, unused_variables, unused_mut, unused_assignments, unused_parens)]"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "/// A signal value: the two types of the kernel.");
    let _ = writeln!(out, "#[derive(Debug, Clone, Copy, PartialEq, Eq)]");
    let _ = writeln!(out, "pub enum Value {{ Bool(bool), Int(i64) }}");
    let _ = writeln!(out);
    let _ = writeln!(out, "/// Why a step did not complete.");
    let _ = writeln!(out, "#[derive(Debug, Clone, Copy, PartialEq, Eq)]");
    let _ = writeln!(out, "pub enum Stall {{ NeedInput(usize), Fault }}");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "/// The environment streams, indexed per INPUTS/OUTPUTS."
    );
    let _ = writeln!(out, "/// A stalled step must be rolled back by the caller:");
    let _ = writeln!(out, "/// its reads are treated as never consumed.");
    let _ = writeln!(out, "pub trait Io {{");
    let _ = writeln!(
        out,
        "    fn read(&mut self, index: usize) -> Option<Value>;"
    );
    let _ = writeln!(out, "    fn write(&mut self, index: usize, value: Value);");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let inputs: Vec<String> = program
        .inputs
        .iter()
        .map(|n| format!("{:?}", n.as_str()))
        .collect();
    let outputs: Vec<String> = program
        .outputs
        .iter()
        .map(|n| format!("{:?}", n.as_str()))
        .collect();
    let _ = writeln!(out, "pub const INPUTS: &[&str] = &[{}];", inputs.join(", "));
    let _ = writeln!(
        out,
        "pub const OUTPUTS: &[&str] = &[{}];",
        outputs.join(", ")
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "/// The step machine of process `{name}`.");
    let _ = writeln!(out, "pub struct Machine {{");
    for (register, init) in &program.registers {
        let _ = writeln!(
            out,
            "    r_{register}: {},",
            SigType::of_value(init).rust_name()
        );
    }
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "impl Machine {{");
    let _ = writeln!(out, "    /// Every register at its initial value.");
    let _ = writeln!(out, "    pub const fn new() -> Machine {{");
    let _ = writeln!(out, "        Machine {{");
    for (register, init) in &program.registers {
        let _ = writeln!(out, "            r_{register}: {},", rust_value(init));
    }
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out);
    let _ = writeln!(out, "    /// One synchronous reaction of `{name}`.");
    let _ = writeln!(
        out,
        "    pub fn step(&mut self, io: &mut impl Io) -> Result<(), Stall> {{"
    );
    // Typed locals: a presence flag and a value per computed signal.
    for action in &program.actions {
        if let Action::ComputeClock { signal, .. } = action {
            let ty = ty_of(signal);
            let _ = writeln!(out, "        let mut c_{signal}: bool = false;");
            let _ = writeln!(
                out,
                "        let mut v_{signal}: {} = {};",
                ty.rust_name(),
                rust_default(ty)
            );
        }
    }
    let mut writes: Vec<&signal_lang::Name> = Vec::new();
    for action in &program.actions {
        match action {
            Action::ComputeClock { signal, code } => {
                let _ = writeln!(out, "        c_{signal} = {};", rust_clock(code));
            }
            Action::ReadInput { signal } => {
                let index = program
                    .inputs
                    .iter()
                    .position(|n| n == signal)
                    .expect("a read action targets a declared input");
                let pattern = match ty_of(signal) {
                    SigType::Bool => "Value::Bool(v)",
                    SigType::Int => "Value::Int(v)",
                };
                let _ = writeln!(out, "        if c_{signal} {{");
                let _ = writeln!(out, "            match io.read({index}) {{");
                let _ = writeln!(out, "                Some({pattern}) => v_{signal} = v,");
                let _ = writeln!(out, "                Some(_) => return Err(Stall::Fault),");
                let _ = writeln!(
                    out,
                    "                None => return Err(Stall::NeedInput({index})),"
                );
                let _ = writeln!(out, "            }}");
                let _ = writeln!(out, "        }}");
            }
            Action::Eval { equation } => emit_eval(&mut out, equation),
            Action::WriteOutput { signal } => {
                // Deferred to the commit section: a later read may still
                // stall this step.
                writes.push(signal);
            }
            Action::UpdateRegister { .. } => {
                // Emitted in the commit section below, in action order.
            }
        }
    }
    let _ = writeln!(
        out,
        "        // Commit: no stall can occur past this point."
    );
    for signal in writes {
        let index = program
            .outputs
            .iter()
            .position(|n| n == signal)
            .expect("a write action targets a declared output");
        let wrap = match ty_of(signal) {
            SigType::Bool => "Value::Bool",
            SigType::Int => "Value::Int",
        };
        let _ = writeln!(
            out,
            "        if c_{signal} {{ io.write({index}, {wrap}(v_{signal})); }}"
        );
    }
    for action in &program.actions {
        if let Action::UpdateRegister { register, source } = action {
            let _ = writeln!(
                out,
                "        if c_{source} {{ self.r_{register} = v_{source}; }}"
            );
        }
    }
    let _ = writeln!(out, "        Ok(())");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

/// Renders [`emit_rust`] plus a `main` speaking the loader line protocol
/// over stdin/stdout — one command per line:
///
/// * `feed <input-index> <tok>` — enqueue a value (`t`, `f`, or an
///   integer); no response;
/// * `step` — attempt one reaction; responds `ok` followed by one
///   `out <output-index> <tok|->` line per output (`-` when the output
///   was silent this step), or `need <input-index>`, or `fault`;
/// * `exit` — terminate.
pub fn emit_rust_harness(program: &StepProgram) -> String {
    let mut out = emit_rust(program);
    let inputs = program.inputs.len();
    let outputs = program.outputs.len();
    let _ = writeln!(out);
    let _ = writeln!(out, "/// Rollback-capable queues for the line protocol.");
    let _ = writeln!(out, "struct StdIo {{");
    let _ = writeln!(out, "    queues: Vec<std::collections::VecDeque<Value>>,");
    let _ = writeln!(out, "    consumed: Vec<usize>,");
    let _ = writeln!(out, "    staged: Vec<Option<Value>>,");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "impl Io for StdIo {{");
    let _ = writeln!(
        out,
        "    fn read(&mut self, index: usize) -> Option<Value> {{"
    );
    let _ = writeln!(
        out,
        "        let v = self.queues[index].get(self.consumed[index]).copied();"
    );
    let _ = writeln!(
        out,
        "        if v.is_some() {{ self.consumed[index] += 1; }}"
    );
    let _ = writeln!(out, "        v");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(
        out,
        "    fn write(&mut self, index: usize, value: Value) {{"
    );
    let _ = writeln!(out, "        self.staged[index] = Some(value);");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "fn parse_value(tok: &str) -> Value {{");
    let _ = writeln!(out, "    match tok {{");
    let _ = writeln!(out, "        \"t\" => Value::Bool(true),");
    let _ = writeln!(out, "        \"f\" => Value::Bool(false),");
    let _ = writeln!(
        out,
        "        n => Value::Int(n.parse().expect(\"integer token\")),"
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "fn render_value(v: Value) -> String {{");
    let _ = writeln!(out, "    match v {{");
    let _ = writeln!(out, "        Value::Bool(true) => \"t\".to_string(),");
    let _ = writeln!(out, "        Value::Bool(false) => \"f\".to_string(),");
    let _ = writeln!(out, "        Value::Int(n) => n.to_string(),");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "    use std::io::{{BufRead as _, Write as _}};");
    let _ = writeln!(out, "    let stdin = std::io::stdin();");
    let _ = writeln!(out, "    let stdout = std::io::stdout();");
    let _ = writeln!(out, "    let mut reply = stdout.lock();");
    let _ = writeln!(out, "    let mut machine = Machine::new();");
    let _ = writeln!(out, "    let mut io = StdIo {{");
    let _ = writeln!(
        out,
        "        queues: (0..{inputs}).map(|_| std::collections::VecDeque::new()).collect(),"
    );
    let _ = writeln!(out, "        consumed: vec![0; {inputs}],");
    let _ = writeln!(out, "        staged: vec![None; {outputs}],");
    let _ = writeln!(out, "    }};");
    let _ = writeln!(out, "    for line in stdin.lock().lines() {{");
    let _ = writeln!(out, "        let line = line.expect(\"readable stdin\");");
    let _ = writeln!(out, "        let mut parts = line.split_whitespace();");
    let _ = writeln!(out, "        match parts.next() {{");
    let _ = writeln!(out, "            Some(\"feed\") => {{");
    let _ = writeln!(
        out,
        "                let index: usize = parts.next().and_then(|p| p.parse().ok()).expect(\"input index\");"
    );
    let _ = writeln!(
        out,
        "                let tok = parts.next().expect(\"value token\");"
    );
    let _ = writeln!(
        out,
        "                io.queues[index].push_back(parse_value(tok));"
    );
    let _ = writeln!(out, "            }}");
    let _ = writeln!(out, "            Some(\"step\") => {{");
    let _ = writeln!(out, "                match machine.step(&mut io) {{");
    let _ = writeln!(out, "                    Ok(()) => {{");
    let _ = writeln!(
        out,
        "                        for (queue, consumed) in io.queues.iter_mut().zip(io.consumed.iter_mut()) {{"
    );
    let _ = writeln!(
        out,
        "                            for _ in 0..*consumed {{ queue.pop_front(); }}"
    );
    let _ = writeln!(out, "                            *consumed = 0;");
    let _ = writeln!(out, "                        }}");
    let _ = writeln!(
        out,
        "                        let _ = writeln!(reply, \"ok\");"
    );
    let _ = writeln!(
        out,
        "                        for (i, staged) in io.staged.iter_mut().enumerate() {{"
    );
    let _ = writeln!(out, "                            match staged.take() {{");
    let _ = writeln!(
        out,
        "                                Some(v) => {{ let _ = writeln!(reply, \"out {{i}} {{}}\", render_value(v)); }}"
    );
    let _ = writeln!(
        out,
        "                                None => {{ let _ = writeln!(reply, \"out {{i}} -\"); }}"
    );
    let _ = writeln!(out, "                            }}");
    let _ = writeln!(out, "                        }}");
    let _ = writeln!(out, "                    }}");
    let _ = writeln!(out, "                    Err(stall) => {{");
    let _ = writeln!(
        out,
        "                        io.consumed.iter_mut().for_each(|c| *c = 0);"
    );
    let _ = writeln!(
        out,
        "                        io.staged.iter_mut().for_each(|s| *s = None);"
    );
    let _ = writeln!(out, "                        match stall {{");
    let _ = writeln!(
        out,
        "                            Stall::NeedInput(i) => {{ let _ = writeln!(reply, \"need {{i}}\"); }}"
    );
    let _ = writeln!(
        out,
        "                            Stall::Fault => {{ let _ = writeln!(reply, \"fault\"); }}"
    );
    let _ = writeln!(out, "                        }}");
    let _ = writeln!(out, "                    }}");
    let _ = writeln!(out, "                }}");
    let _ = writeln!(out, "                let _ = reply.flush();");
    let _ = writeln!(out, "            }}");
    let _ = writeln!(out, "            Some(\"exit\") => break,");
    let _ = writeln!(out, "            _ => {{}}");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn emit_eval(out: &mut String, eq: &KernelEq) {
    let target = eq.defined();
    // The clock programs are only as precise as the clock algebra: on a
    // clock-inconsistent environment a signal's computed clock can be true
    // while an operand is absent.  The interpreter and the compiled
    // runtime fault there (`MissingOperand`); the emitted code must too,
    // instead of silently reading a default-initialized local.
    match eq {
        KernelEq::Delay { out: reg, .. } => {
            let _ = writeln!(
                out,
                "        if c_{target} {{ v_{target} = self.r_{reg}; }}"
            );
        }
        KernelEq::When { arg, .. } => {
            let _ = writeln!(out, "        if c_{target} {{");
            if let Some(guard) = presence_guard(std::slice::from_ref(arg)) {
                let _ = writeln!(
                    out,
                    "            if !{guard} {{ return Err(Stall::Fault); }}"
                );
            }
            let _ = writeln!(out, "            v_{target} = {};", rust_atom(arg));
            let _ = writeln!(out, "        }}");
        }
        KernelEq::Default { left, right, .. } => match left {
            Atom::Var(n) => {
                let fallback = match right {
                    Atom::Const(_) => rust_atom(right),
                    Atom::Var(m) => {
                        format!("if c_{m} {{ v_{m} }} else {{ return Err(Stall::Fault) }}")
                    }
                };
                let _ = writeln!(
                    out,
                    "        if c_{target} {{ v_{target} = if c_{n} {{ {} }} else {{ {fallback} }}; }}",
                    rust_atom(left),
                );
            }
            Atom::Const(_) => {
                let _ = writeln!(
                    out,
                    "        if c_{target} {{ v_{target} = {}; }}",
                    rust_atom(left)
                );
            }
        },
        KernelEq::Func { op, args, .. } => {
            let _ = writeln!(out, "        if c_{target} {{");
            if let Some(guard) = presence_guard(args) {
                let _ = writeln!(
                    out,
                    "            if !{guard} {{ return Err(Stall::Fault); }}"
                );
            }
            match (op, args.as_slice()) {
                (PrimOp::Div, [a, b]) => {
                    let _ = writeln!(
                        out,
                        "            if {} == 0 {{ return Err(Stall::Fault); }}",
                        rust_atom(b)
                    );
                    let _ = writeln!(
                        out,
                        "            v_{target} = {} / {};",
                        rust_atom(a),
                        rust_atom(b)
                    );
                }
                _ => {
                    let _ = writeln!(out, "            v_{target} = {};", rust_func(*op, args));
                }
            }
            let _ = writeln!(out, "        }}");
        }
    }
}

/// The conjunction of the presence flags of every `Var` operand, or
/// `None` when every operand is a constant (always present).
fn presence_guard(args: &[Atom]) -> Option<String> {
    let vars: Vec<String> = args
        .iter()
        .filter_map(|a| match a {
            Atom::Var(n) => Some(format!("c_{n}")),
            Atom::Const(_) => None,
        })
        .collect();
    if vars.is_empty() {
        None
    } else {
        Some(format!("({})", vars.join(" && ")))
    }
}

fn rust_func(op: PrimOp, args: &[Atom]) -> String {
    match (op, args) {
        (PrimOp::Id, [a]) => rust_atom(a),
        (PrimOp::Not, [a]) => format!("!{}", rust_atom(a)),
        (PrimOp::Neg, [a]) => format!("{}.wrapping_neg()", rust_atom(a)),
        (PrimOp::And, [a, b]) => format!("({} && {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Or, [a, b]) => format!("({} || {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Xor, [a, b]) => format!("({} ^ {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Add, [a, b]) => format!("{}.wrapping_add({})", rust_atom(a), rust_atom(b)),
        (PrimOp::Sub, [a, b]) => format!("{}.wrapping_sub({})", rust_atom(a), rust_atom(b)),
        (PrimOp::Mul, [a, b]) => format!("{}.wrapping_mul({})", rust_atom(a), rust_atom(b)),
        (PrimOp::Eq, [a, b]) => format!("({} == {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Ne, [a, b]) => format!("({} != {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Lt, [a, b]) => format!("({} < {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Le, [a, b]) => format!("({} <= {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Gt, [a, b]) => format!("({} > {})", rust_atom(a), rust_atom(b)),
        (PrimOp::Ge, [a, b]) => format!("({} >= {})", rust_atom(a), rust_atom(b)),
        // Division is handled as a statement (zero check); any other arity
        // mismatch is unreachable for normalized kernels.
        _ => "unreachable!()".to_string(),
    }
}

fn rust_clock(code: &ClockCode) -> String {
    match code {
        ClockCode::Always => "true".to_string(),
        ClockCode::SameAs(n) => format!("c_{n}"),
        ClockCode::SampleTrue(n) => format!("(c_{n} && v_{n})"),
        ClockCode::SampleFalse(n) => format!("(c_{n} && !v_{n})"),
        ClockCode::And(a, b) => format!("({} && {})", rust_clock(a), rust_clock(b)),
        ClockCode::Or(a, b) => format!("({} || {})", rust_clock(a), rust_clock(b)),
        ClockCode::Diff(a, b) => format!("({} && !{})", rust_clock(a), rust_clock(b)),
    }
}

fn rust_atom(a: &Atom) -> String {
    match a {
        Atom::Const(v) => rust_value(v),
        Atom::Var(n) => format!("v_{n}"),
    }
}

fn rust_default(ty: SigType) -> &'static str {
    match ty {
        SigType::Bool => "false",
        SigType::Int => "0",
    }
}

fn rust_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => format!("{n}i64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    #[test]
    fn buffer_emission_is_a_self_contained_module() {
        let program = generate_from_kernel(&stdlib::buffer().normalize().unwrap());
        let rust = emit_rust(&program);
        assert!(rust.contains("pub struct Machine"));
        assert!(rust.contains("pub fn step(&mut self, io: &mut impl Io) -> Result<(), Stall>"));
        assert!(rust.contains("pub const INPUTS: &[&str] = &[\"y\"];"));
        assert!(rust.contains("pub const OUTPUTS: &[&str] = &[\"x\"];"));
        // The state registers are struct fields, initialized in new().
        assert!(rust.contains("pub const fn new() -> Machine"));
        assert!(rust.matches('{').count() == rust.matches('}').count());
    }

    #[test]
    fn every_signal_is_declared_before_use() {
        for def in stdlib::all_paper_processes() {
            let program = generate_from_kernel(&def.normalize().unwrap());
            let rust = emit_rust(&program);
            let body_start = rust.find("pub fn step").expect("a step function");
            for action in &program.actions {
                if let crate::ir::Action::ComputeClock { signal, .. } = action {
                    for local in [
                        format!("let mut c_{signal}: bool"),
                        format!("let mut v_{signal}:"),
                    ] {
                        let declared = rust[body_start..]
                            .find(&local)
                            .unwrap_or_else(|| panic!("{}: {local} never declared", def.name));
                        let first_use = rust[body_start..]
                            .find(&format!("c_{signal} ="))
                            .unwrap_or(usize::MAX);
                        assert!(
                            declared < first_use,
                            "{}: {signal} used before declaration",
                            def.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn the_harness_adds_a_protocol_main() {
        let program = generate_from_kernel(&stdlib::producer().normalize().unwrap());
        let rust = emit_rust_harness(&program);
        assert!(rust.contains("fn main()"));
        assert!(rust.contains("Some(\"feed\")"));
        assert!(rust.contains("Some(\"step\")"));
        assert!(rust.contains("Some(\"exit\") => break"));
        assert!(rust.matches('{').count() == rust.matches('}').count());
    }

    #[test]
    fn division_guards_against_zero() {
        use signal_lang::Name;
        let program = StepProgram {
            name: "divider".into(),
            inputs: vec![Name::from("a"), Name::from("b")],
            outputs: vec![Name::from("q")],
            registers: vec![],
            actions: vec![
                Action::ComputeClock {
                    signal: Name::from("a"),
                    code: ClockCode::Always,
                },
                Action::ReadInput {
                    signal: Name::from("a"),
                },
                Action::ComputeClock {
                    signal: Name::from("b"),
                    code: ClockCode::Always,
                },
                Action::ReadInput {
                    signal: Name::from("b"),
                },
                Action::ComputeClock {
                    signal: Name::from("q"),
                    code: ClockCode::Always,
                },
                Action::Eval {
                    equation: KernelEq::Func {
                        out: Name::from("q"),
                        op: PrimOp::Div,
                        args: vec![Atom::Var(Name::from("a")), Atom::Var(Name::from("b"))],
                    },
                },
                Action::WriteOutput {
                    signal: Name::from("q"),
                },
            ],
        };
        let rust = emit_rust(&program);
        assert!(rust.contains("if v_b == 0 { return Err(Stall::Fault); }"));
    }
}
