//! Compiling and driving the emitted Rust machine.
//!
//! [`EmittedMachine`] closes the code-generation loop: it writes the
//! [`emit_rust_harness`] source to a
//! scratch directory, compiles it with the `rustc` of the toolchain, and
//! speaks the harness line protocol over the child's stdin/stdout —
//! exposing the running binary behind [`gals_rt::StepMachine`], so the
//! generated artifact deploys exactly like the interpreter and the
//! compiled runtime do.

use std::io::{BufRead as _, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use signal_lang::{Name, Value};

use crate::emit_rust::emit_rust_harness;
use crate::ir::StepProgram;

/// A monotonically increasing component of the scratch-directory name, so
/// concurrent tests never collide on the same path.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// An emitted-Rust step machine: a compiled child process driven over the
/// harness line protocol.
///
/// Dropping the machine asks the child to exit and reaps it.
#[derive(Debug)]
pub struct EmittedMachine {
    name: String,
    inputs: Vec<Name>,
    outputs: Vec<Name>,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    produced: Vec<Vec<Value>>,
}

impl EmittedMachine {
    /// Emits, compiles (`rustc --edition 2021 -O`) and spawns the machine
    /// of a step program.
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the scratch files cannot be
    /// written, the compiler fails, or the child cannot be spawned.
    pub fn build(program: &StepProgram) -> Result<EmittedMachine, String> {
        let binary = compile_binary(program)?;
        EmittedMachine::spawn(program, &binary)
    }

    /// Spawns a machine from an already compiled harness binary (see
    /// [`compile_binary`]) — lets a differential test compile each
    /// program once and spawn a fresh process per case.
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the child cannot be spawned.
    pub fn spawn(
        program: &StepProgram,
        binary: &std::path::Path,
    ) -> Result<EmittedMachine, String> {
        let mut child = Command::new(binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", binary.display()))?;
        let stdin = child.stdin.take().ok_or("child stdin unavailable")?;
        let stdout = child.stdout.take().ok_or("child stdout unavailable")?;
        Ok(EmittedMachine {
            name: program.name.clone(),
            inputs: program.inputs.clone(),
            outputs: program.outputs.clone(),
            child,
            stdin,
            stdout: BufReader::new(stdout),
            produced: program.outputs.iter().map(|_| Vec::new()).collect(),
        })
    }

    fn read_line(&mut self) -> Result<String, gals_rt::StepFault> {
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) => Err(gals_rt::StepFault::Fault(
                "emitted machine exited unexpectedly".into(),
            )),
            Ok(_) => Ok(line.trim().to_string()),
            Err(e) => Err(gals_rt::StepFault::Fault(format!(
                "reading emitted machine: {e}"
            ))),
        }
    }
}

impl Drop for EmittedMachine {
    fn drop(&mut self) {
        let _ = writeln!(self.stdin, "exit");
        let _ = self.stdin.flush();
        let _ = self.child.wait();
    }
}

impl gals_rt::StepMachine for EmittedMachine {
    fn machine_name(&self) -> &str {
        &self.name
    }

    fn input_signals(&self) -> Vec<Name> {
        self.inputs.clone()
    }

    fn output_signals(&self) -> Vec<Name> {
        self.outputs.clone()
    }

    fn feed_value(&mut self, signal: &str, value: Value) {
        if let Some(index) = self.inputs.iter().position(|n| n.as_str() == signal) {
            let _ = writeln!(self.stdin, "feed {index} {}", render_value(value));
        }
    }

    fn try_step(&mut self) -> Result<(), gals_rt::StepFault> {
        writeln!(self.stdin, "step")
            .and_then(|()| self.stdin.flush())
            .map_err(|e| gals_rt::StepFault::Fault(format!("writing to emitted machine: {e}")))?;
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["ok"] => {
                for _ in 0..self.outputs.len() {
                    let line = self.read_line()?;
                    match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                        [_, _, "-"] => {}
                        ["out", index, tok] => {
                            let index: usize = index.parse().map_err(|_| {
                                gals_rt::StepFault::Fault(format!("bad output index: {line}"))
                            })?;
                            let value = parse_value(tok).ok_or_else(|| {
                                gals_rt::StepFault::Fault(format!("bad output token: {line}"))
                            })?;
                            self.produced[index].push(value);
                        }
                        _ => {
                            return Err(gals_rt::StepFault::Fault(format!(
                                "unexpected response: {line}"
                            )))
                        }
                    }
                }
                Ok(())
            }
            ["need", index] => {
                let index: usize = index
                    .parse()
                    .map_err(|_| gals_rt::StepFault::Fault(format!("bad input index: {line}")))?;
                let signal = self.inputs.get(index).cloned().ok_or_else(|| {
                    gals_rt::StepFault::Fault(format!("input index out of range: {line}"))
                })?;
                Err(gals_rt::StepFault::NeedInput(signal))
            }
            ["fault"] => Err(gals_rt::StepFault::Fault("emitted machine faulted".into())),
            _ => Err(gals_rt::StepFault::Fault(format!(
                "unexpected response: {line}"
            ))),
        }
    }

    fn produced(&self, signal: &str) -> &[Value] {
        self.outputs
            .iter()
            .position(|n| n.as_str() == signal)
            .map(|i| self.produced[i].as_slice())
            .unwrap_or_default()
    }
}

/// Emits the harness source of a program and compiles it with `rustc`,
/// returning the path of the resulting binary (under a per-call scratch
/// directory inside the system temp dir).
///
/// # Errors
///
/// Returns a rendered message when the scratch files cannot be written or
/// the compiler rejects the generated source (with its stderr attached —
/// a bug in the emitter).
pub fn compile_binary(program: &StepProgram) -> Result<PathBuf, String> {
    let scratch = std::env::temp_dir().join(format!(
        "emitted-{}-{}-{}",
        program.name,
        std::process::id(),
        SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("creating scratch dir: {e}"))?;
    let source = scratch.join(format!("{}.rs", program.name));
    std::fs::write(&source, emit_rust_harness(program))
        .map_err(|e| format!("writing generated source: {e}"))?;
    let binary = scratch.join(&program.name);
    let output = Command::new("rustc")
        .arg("--edition")
        .arg("2021")
        .arg("-O")
        .arg("-o")
        .arg(&binary)
        .arg(&source)
        .output()
        .map_err(|e| format!("running rustc: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "rustc rejected the generated source for {}:\n{}",
            program.name,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(binary)
}

fn render_value(v: Value) -> String {
    match v {
        Value::Bool(true) => "t".to_string(),
        Value::Bool(false) => "f".to_string(),
        Value::Int(n) => n.to_string(),
    }
}

fn parse_value(tok: &str) -> Option<Value> {
    match tok {
        "t" => Some(Value::Bool(true)),
        "f" => Some(Value::Bool(false)),
        n => n.parse().ok().map(Value::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use gals_rt::{StepFault, StepMachine};
    use signal_lang::stdlib;

    #[test]
    fn the_emitted_buffer_compiles_and_runs_behind_step_machine() {
        let program = generate_from_kernel(&stdlib::buffer().normalize().unwrap());
        let mut machine = EmittedMachine::build(&program).expect("compiles and spawns");
        assert_eq!(machine.machine_name(), "buffer");
        assert_eq!(machine.input_signals(), vec![Name::from("y")]);
        for v in [true, false, true] {
            machine.feed_value("y", Value::Bool(v));
        }
        let mut steps = 0;
        loop {
            match machine.try_step() {
                Ok(()) => steps += 1,
                Err(StepFault::NeedInput(_)) => break,
                Err(fault) => panic!("unexpected fault: {fault}"),
            }
        }
        assert!(steps >= 6, "only {steps} steps completed");
        assert_eq!(
            machine.produced("x"),
            &[Value::Bool(true), Value::Bool(false), Value::Bool(true)]
        );
        // A stalled step left the machine retryable.
        machine.feed_value("y", Value::Bool(false));
        let mut resumed = false;
        while machine.try_step().is_ok() {
            resumed = true;
        }
        assert!(resumed);
        assert_eq!(machine.produced("x").len(), 4);
    }
}
