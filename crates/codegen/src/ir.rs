//! The step-function intermediate representation.

use std::fmt;

use signal_lang::{KernelEq, Name, Value};

/// How the presence of a signal is computed inside the step function.
///
/// The code generator resolves, for every signal, a *clock code* in terms of
/// things the step function can test: the activation of the step itself (a
/// root of the hierarchy), the boolean value of an already-computed signal,
/// or a combination of previously computed clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockCode {
    /// The signal is present at every activation of the step function (its
    /// clock class is a root of the hierarchy).
    Always,
    /// Present when the named (already computed) boolean signal is true.
    SampleTrue(Name),
    /// Present when the named boolean signal is false.
    SampleFalse(Name),
    /// Present when the clock of another signal is present (alias inside a
    /// clock equivalence class).
    SameAs(Name),
    /// Intersection of two codes.
    And(Box<ClockCode>, Box<ClockCode>),
    /// Union of two codes.
    Or(Box<ClockCode>, Box<ClockCode>),
    /// Difference of two codes.
    Diff(Box<ClockCode>, Box<ClockCode>),
}

impl fmt::Display for ClockCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockCode::Always => write!(f, "true"),
            ClockCode::SampleTrue(n) => write!(f, "{n}"),
            ClockCode::SampleFalse(n) => write!(f, "!{n}"),
            ClockCode::SameAs(n) => write!(f, "C_{n}"),
            ClockCode::And(a, b) => write!(f, "({a} && {b})"),
            ClockCode::Or(a, b) => write!(f, "({a} || {b})"),
            ClockCode::Diff(a, b) => write!(f, "({a} && !{b})"),
        }
    }
}

/// One action of the step function, guarded by the clock of its signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Compute the presence flag `C_signal` of a signal.
    ComputeClock {
        /// The signal whose clock is computed.
        signal: Name,
        /// How to compute it.
        code: ClockCode,
    },
    /// Read an input signal from its environment stream when present.
    ReadInput {
        /// The input signal.
        signal: Name,
    },
    /// Evaluate a kernel equation when the defined signal is present.
    Eval {
        /// The equation.
        equation: KernelEq,
    },
    /// Write an output signal to its environment stream when present.
    WriteOutput {
        /// The output signal.
        signal: Name,
    },
    /// Update a delay register at the end of the step.
    UpdateRegister {
        /// The register (the delay's defined signal).
        register: Name,
        /// The signal whose current value is stored.
        source: Name,
    },
}

/// A compiled step function.
#[derive(Debug, Clone)]
pub struct StepProgram {
    /// The process name.
    pub name: String,
    /// The input signals, in declaration order.
    pub inputs: Vec<Name>,
    /// The output signals.
    pub outputs: Vec<Name>,
    /// The delay registers with their initial values.
    pub registers: Vec<(Name, Value)>,
    /// The actions of one step, in execution order.
    pub actions: Vec<Action>,
}

impl StepProgram {
    /// The number of actions of the step function.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` when the program has no action.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The clock code assigned to `signal`, if any.
    pub fn clock_of(&self, signal: &str) -> Option<&ClockCode> {
        self.actions.iter().find_map(|a| match a {
            Action::ComputeClock { signal: s, code } if s.as_str() == signal => Some(code),
            _ => None,
        })
    }
}

impl fmt::Display for StepProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "step {}:", self.name)?;
        for a in &self.actions {
            match a {
                Action::ComputeClock { signal, code } => writeln!(f, "  C_{signal} := {code}")?,
                Action::ReadInput { signal } => writeln!(f, "  if C_{signal} read {signal}")?,
                Action::Eval { equation } => {
                    writeln!(f, "  if C_{} eval {equation}", equation.defined())?
                }
                Action::WriteOutput { signal } => writeln!(f, "  if C_{signal} write {signal}")?,
                Action::UpdateRegister { register, source } => {
                    writeln!(f, "  if C_{source} {register} := {source}")?
                }
            }
        }
        Ok(())
    }
}

impl ClockCode {
    /// Intersection helper.
    pub fn and(self, other: ClockCode) -> ClockCode {
        ClockCode::And(Box::new(self), Box::new(other))
    }

    /// Union helper.
    pub fn or(self, other: ClockCode) -> ClockCode {
        ClockCode::Or(Box::new(self), Box::new(other))
    }

    /// Difference helper.
    pub fn diff(self, other: ClockCode) -> ClockCode {
        ClockCode::Diff(Box::new(self), Box::new(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_code_display_is_c_like() {
        let code =
            ClockCode::SampleTrue(Name::from("t")).or(ClockCode::SampleFalse(Name::from("t")));
        assert_eq!(code.to_string(), "(t || !t)");
        assert_eq!(ClockCode::Always.to_string(), "true");
        assert_eq!(ClockCode::SameAs(Name::from("x")).to_string(), "C_x");
    }

    #[test]
    fn program_lookup_finds_clock_codes() {
        let p = StepProgram {
            name: "p".into(),
            inputs: vec![Name::from("y")],
            outputs: vec![Name::from("x")],
            registers: vec![],
            actions: vec![Action::ComputeClock {
                signal: Name::from("x"),
                code: ClockCode::SampleTrue(Name::from("t")),
            }],
        };
        assert!(matches!(p.clock_of("x"), Some(ClockCode::SampleTrue(_))));
        assert!(p.clock_of("y").is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(p.to_string().contains("C_x := t"));
    }
}
