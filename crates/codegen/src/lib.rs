//! Compositional code generation for Signal processes.
//!
//! This crate reproduces Sections 3.6 and 5 of the paper:
//!
//! * [`ir`] — a step-function intermediate representation: one *step* of a
//!   compiled process computes the clocks of the instant from the hierarchy,
//!   reads the inputs that are present, evaluates the equations in
//!   scheduling order, writes the outputs and updates the delay registers;
//! * [`seq`] — sequential code generation from the clock hierarchy and the
//!   reinforced scheduling graph (the `buffer_iterate` scheme of §3.6);
//! * [`emit`] — emission of the step function as C-like source text,
//!   mirroring the listings of the paper;
//! * [`runtime`] — an in-process runtime that executes step programs
//!   against FIFO input sources, used by the examples and benchmarks in
//!   place of compiling the emitted C;
//! * [`controller`] — the controller synthesis of §5.2: two endochronous
//!   components whose composition carries a clock constraint on a shared
//!   signal are scheduled by a synthesized controller implementing the
//!   rendez-vous, without adding master clocks to the interface;
//! * [`concurrent`] — the concurrent scheme of §5: one thread per
//!   component, the rendez-vous implemented with barriers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod controller;
pub mod emit;
pub mod ir;
pub mod runtime;
pub mod seq;

pub use controller::{ControlledPair, Controller};
pub use ir::{Action, ClockCode, StepProgram};
pub use runtime::{RuntimeError, SequentialRuntime};
pub use seq::generate;
