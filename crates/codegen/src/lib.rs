//! Compositional code generation for Signal processes.
//!
//! This crate reproduces Sections 3.6 and 5 of the paper:
//!
//! * [`ir`] — a step-function intermediate representation: one *step* of a
//!   compiled process computes the clocks of the instant from the hierarchy,
//!   reads the inputs that are present, evaluates the equations in
//!   scheduling order, writes the outputs and updates the delay registers;
//! * [`seq`] — sequential code generation from the clock hierarchy and the
//!   reinforced scheduling graph (the `buffer_iterate` scheme of §3.6);
//! * [`emit`] — emission of the step function as C-like source text,
//!   mirroring the listings of the paper;
//! * [`runtime`] — an in-process interpreter executing step programs
//!   against FIFO input sources, kept as the readable reference
//!   semantics;
//! * [`compile`] — the slot-indexed compiled form: names interned into
//!   dense indices, clock trees flattened to postfix programs, equations
//!   pre-bound into opcodes, executed with zero per-step allocation —
//!   the default execution strategy for deployments;
//! * [`types`] — static value-type inference over a step program, shared
//!   by the source emitters;
//! * [`emit_rust`](mod@emit_rust) — emission of the step function as a self-contained
//!   Rust module, and [`emitted`] — a loader that compiles it with
//!   `rustc` and drives the resulting process behind
//!   [`gals_rt::StepMachine`];
//! * [`controller`] — the controller synthesis of §5.2: two endochronous
//!   components whose composition carries a clock constraint on a shared
//!   signal are scheduled by a synthesized controller implementing the
//!   rendez-vous, without adding master clocks to the interface;
//! * [`concurrent`] — the concurrent scheme of §5: one thread per
//!   component, the rendez-vous implemented with barriers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod concurrent;
pub mod controller;
pub mod emit;
pub mod emit_rust;
pub mod emitted;
pub mod ir;
pub mod runtime;
pub mod seq;
pub mod types;

pub use compile::{machine_of, CompiledProgram, CompiledRuntime};
pub use controller::{ControlledPair, Controller};
pub use emit_rust::{emit_rust, emit_rust_harness};
pub use emitted::EmittedMachine;
pub use ir::{Action, ClockCode, StepProgram};
pub use runtime::{RuntimeError, SequentialRuntime};
pub use seq::generate;
pub use types::{signal_types, SigType};
