//! In-process execution of generated step programs.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use signal_lang::{Atom, KernelEq, Name, PrimOp, Value};

use crate::ir::{Action, ClockCode, StepProgram};

/// An error raised while executing a step program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A present input had no value left in its source queue — the
    /// equivalent of the generated C returning `FALSE` from `r_p_x(&x)`.
    InputExhausted(Name),
    /// A present signal had no computable value (an operand was absent).
    MissingOperand(Name),
    /// A value-level evaluation fault.
    Evaluation(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputExhausted(n) => write!(f, "input stream {n} is exhausted"),
            RuntimeError::MissingOperand(n) => write!(f, "missing operand while computing {n}"),
            RuntimeError::Evaluation(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The values produced by one step: the present signals of the instant.
pub type StepValues = BTreeMap<Name, Value>;

/// A sequential runtime executing a [`StepProgram`], the in-process
/// equivalent of compiling and running the emitted C code.
#[derive(Debug, Clone)]
pub struct SequentialRuntime {
    program: StepProgram,
    registers: BTreeMap<Name, Value>,
    inputs: BTreeMap<Name, VecDeque<Value>>,
    outputs: BTreeMap<Name, Vec<Value>>,
    steps: u64,
}

impl SequentialRuntime {
    /// Creates a runtime with every register at its initial value and empty
    /// input queues.
    pub fn new(program: StepProgram) -> Self {
        let registers = program
            .registers
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .collect();
        let inputs = program
            .inputs
            .iter()
            .map(|n| (n.clone(), VecDeque::new()))
            .collect();
        let outputs = program
            .outputs
            .iter()
            .map(|n| (n.clone(), Vec::new()))
            .collect();
        SequentialRuntime {
            program,
            registers,
            inputs,
            outputs,
            steps: 0,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &StepProgram {
        &self.program
    }

    /// Appends values to the source queue of an input signal.
    pub fn feed<I, V>(&mut self, signal: &str, values: I)
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        if let Some(queue) = self.inputs.get_mut(signal) {
            queue.extend(values.into_iter().map(Into::into));
        }
    }

    /// The number of values waiting on an input queue.
    pub fn pending(&self, signal: &str) -> usize {
        self.inputs.get(signal).map(VecDeque::len).unwrap_or(0)
    }

    /// The values written so far on an output signal.
    pub fn output(&self, signal: &str) -> &[Value] {
        self.outputs
            .get(signal)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// The number of executed steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one step of the program.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InputExhausted`] when a present input has no
    /// value available — like the generated simulation code, the caller
    /// should treat this as the end of the run (the registers are left
    /// untouched for that step).
    pub fn step(&mut self) -> Result<StepValues, RuntimeError> {
        let mut presence: BTreeMap<Name, bool> = BTreeMap::new();
        let mut values: BTreeMap<Name, Value> = BTreeMap::new();
        let mut register_updates: Vec<(Name, Value)> = Vec::new();
        let mut pending_writes: Vec<(Name, Value)> = Vec::new();
        let mut consumed: Vec<Name> = Vec::new();

        // The loop only reads the runtime state; every mutation (consumed
        // inputs, output appends, register latches) is staged and committed
        // after the step succeeds, so a failing step observably never ran.
        for action in &self.program.actions {
            match action {
                Action::ComputeClock { signal, code } => {
                    let p = eval_clock(code, &presence, &values);
                    presence.insert(signal.clone(), p);
                }
                Action::ReadInput { signal } => {
                    if presence.get(signal).copied().unwrap_or(false) {
                        let queue = self.inputs.get(signal);
                        match queue.and_then(|q| q.front().copied()) {
                            Some(v) => {
                                values.insert(signal.clone(), v);
                                consumed.push(signal.clone());
                            }
                            None => return Err(RuntimeError::InputExhausted(signal.clone())),
                        }
                    }
                }
                Action::Eval { equation } => {
                    let out = equation.defined();
                    if presence.get(out).copied().unwrap_or(false) {
                        let v = self.eval_equation(equation, &presence, &values)?;
                        values.insert(out.clone(), v);
                    }
                }
                Action::WriteOutput { signal } => {
                    if presence.get(signal).copied().unwrap_or(false) {
                        let v = values
                            .get(signal)
                            .copied()
                            .ok_or_else(|| RuntimeError::MissingOperand(signal.clone()))?;
                        pending_writes.push((signal.clone(), v));
                    }
                }
                Action::UpdateRegister { register, source } => {
                    if presence.get(source).copied().unwrap_or(false) {
                        if let Some(v) = values.get(source) {
                            register_updates.push((register.clone(), *v));
                        }
                    }
                }
            }
        }
        // Commit: consume inputs, append outputs and update registers only
        // on success.
        for signal in consumed {
            if let Some(q) = self.inputs.get_mut(&signal) {
                q.pop_front();
            }
        }
        for (signal, v) in pending_writes {
            self.outputs.entry(signal).or_default().push(v);
        }
        for (r, v) in register_updates {
            self.registers.insert(r, v);
        }
        self.steps += 1;
        let result = values
            .into_iter()
            .filter(|(n, _)| presence.get(n).copied().unwrap_or(false))
            .collect();
        Ok(result)
    }

    /// Runs steps until an input is exhausted or `max_steps` is reached;
    /// returns the number of completed steps.
    pub fn run(&mut self, max_steps: usize) -> usize {
        let mut done = 0;
        for _ in 0..max_steps {
            if self.step().is_err() {
                break;
            }
            done += 1;
        }
        done
    }

    fn eval_equation(
        &self,
        eq: &KernelEq,
        presence: &BTreeMap<Name, bool>,
        values: &BTreeMap<Name, Value>,
    ) -> Result<Value, RuntimeError> {
        let atom = |a: &Atom| -> Option<Value> {
            match a {
                Atom::Const(v) => Some(*v),
                Atom::Var(n) => values.get(n).copied(),
            }
        };
        match eq {
            KernelEq::Delay { out, .. } => Ok(self.registers[out]),
            KernelEq::Func { out, op, args } => {
                let args: Option<Vec<Value>> = args.iter().map(atom).collect();
                let args = args.ok_or_else(|| RuntimeError::MissingOperand(out.clone()))?;
                eval_op(*op, &args)
            }
            KernelEq::When { out, arg, .. } => {
                atom(arg).ok_or_else(|| RuntimeError::MissingOperand(out.clone()))
            }
            KernelEq::Default { out, left, right } => {
                let left_present = match left {
                    Atom::Const(_) => true,
                    Atom::Var(n) => presence.get(n).copied().unwrap_or(false),
                };
                let chosen = if left_present { left } else { right };
                atom(chosen).ok_or_else(|| RuntimeError::MissingOperand(out.clone()))
            }
        }
    }
}

/// Generated step programs deploy directly on the multi-threaded GALS
/// runtime: a blocked step maps [`RuntimeError::InputExhausted`] to the
/// engine's blocking read, and the output vectors are the produced flows.
impl gals_rt::StepMachine for SequentialRuntime {
    fn machine_name(&self) -> &str {
        &self.program.name
    }

    fn input_signals(&self) -> Vec<Name> {
        self.program.inputs.clone()
    }

    fn output_signals(&self) -> Vec<Name> {
        self.program.outputs.clone()
    }

    fn feed_value(&mut self, signal: &str, value: Value) {
        self.feed(signal, [value]);
    }

    fn try_step(&mut self) -> Result<(), gals_rt::StepFault> {
        match self.step() {
            Ok(_) => Ok(()),
            Err(RuntimeError::InputExhausted(signal)) => Err(gals_rt::StepFault::NeedInput(signal)),
            Err(other) => Err(gals_rt::StepFault::Fault(other.to_string())),
        }
    }

    fn produced(&self, signal: &str) -> &[Value] {
        self.output(signal)
    }
}

fn eval_clock(
    code: &ClockCode,
    presence: &BTreeMap<Name, bool>,
    values: &BTreeMap<Name, Value>,
) -> bool {
    match code {
        ClockCode::Always => true,
        ClockCode::SameAs(n) => presence.get(n).copied().unwrap_or(false),
        ClockCode::SampleTrue(n) => {
            presence.get(n).copied().unwrap_or(false)
                && values.get(n).map(|v| v.is_true()).unwrap_or(false)
        }
        ClockCode::SampleFalse(n) => {
            presence.get(n).copied().unwrap_or(false)
                && values.get(n).map(|v| v.is_false()).unwrap_or(false)
        }
        ClockCode::And(a, b) => eval_clock(a, presence, values) && eval_clock(b, presence, values),
        ClockCode::Or(a, b) => eval_clock(a, presence, values) || eval_clock(b, presence, values),
        ClockCode::Diff(a, b) => {
            eval_clock(a, presence, values) && !eval_clock(b, presence, values)
        }
    }
}

pub(crate) fn eval_op(op: PrimOp, args: &[Value]) -> Result<Value, RuntimeError> {
    let int = |v: &Value| {
        v.as_int()
            .ok_or_else(|| RuntimeError::Evaluation(format!("expected integer, found {v}")))
    };
    let boolean = |v: &Value| {
        v.as_bool()
            .ok_or_else(|| RuntimeError::Evaluation(format!("expected boolean, found {v}")))
    };
    let v = match (op, args) {
        (PrimOp::Id, [a]) => *a,
        (PrimOp::Not, [a]) => Value::Bool(!boolean(a)?),
        (PrimOp::Neg, [a]) => Value::Int(-int(a)?),
        (PrimOp::And, [a, b]) => Value::Bool(boolean(a)? && boolean(b)?),
        (PrimOp::Or, [a, b]) => Value::Bool(boolean(a)? || boolean(b)?),
        (PrimOp::Xor, [a, b]) => Value::Bool(boolean(a)? ^ boolean(b)?),
        (PrimOp::Add, [a, b]) => Value::Int(int(a)?.wrapping_add(int(b)?)),
        (PrimOp::Sub, [a, b]) => Value::Int(int(a)?.wrapping_sub(int(b)?)),
        (PrimOp::Mul, [a, b]) => Value::Int(int(a)?.wrapping_mul(int(b)?)),
        (PrimOp::Div, [a, b]) => {
            let d = int(b)?;
            if d == 0 {
                return Err(RuntimeError::Evaluation("division by zero".into()));
            }
            Value::Int(int(a)? / d)
        }
        (PrimOp::Eq, [a, b]) => Value::Bool(a == b),
        (PrimOp::Ne, [a, b]) => Value::Bool(a != b),
        (PrimOp::Lt, [a, b]) => Value::Bool(int(a)? < int(b)?),
        (PrimOp::Le, [a, b]) => Value::Bool(int(a)? <= int(b)?),
        (PrimOp::Gt, [a, b]) => Value::Bool(int(a)? > int(b)?),
        (PrimOp::Ge, [a, b]) => Value::Bool(int(a)? >= int(b)?),
        _ => {
            return Err(RuntimeError::Evaluation(format!(
                "operator {op} applied to {} operands",
                args.len()
            )))
        }
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    fn runtime_of(def: &signal_lang::ProcessDef) -> SequentialRuntime {
        SequentialRuntime::new(generate_from_kernel(&def.normalize().unwrap()))
    }

    #[test]
    fn generated_filter_matches_the_interpreter_semantics() {
        let mut rt = runtime_of(&stdlib::filter());
        rt.feed("y", [true, false, false, true, true, false]);
        let steps = rt.run(100);
        assert_eq!(steps, 6);
        // Changes at positions 2, 4, 6.
        assert_eq!(rt.output("x").len(), 3);
        assert!(rt.output("x").iter().all(|v| v.is_true()));
    }

    #[test]
    fn generated_buffer_alternates_like_the_paper_code() {
        let mut rt = runtime_of(&stdlib::buffer());
        rt.feed("y", [true, false, true]);
        // Each value needs a read activation and a write activation.
        let steps = rt.run(100);
        assert!(steps >= 6, "only {steps} steps completed");
        assert_eq!(
            rt.output("x"),
            &[Value::Bool(true), Value::Bool(false), Value::Bool(true)]
        );
    }

    #[test]
    fn generated_producer_counts_like_the_paper() {
        let mut rt = runtime_of(&stdlib::producer());
        rt.feed("a", [true, true, false, true, false]);
        rt.run(100);
        assert_eq!(
            rt.output("u"),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(rt.output("x"), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn exhausted_inputs_stop_the_run_without_corrupting_state() {
        let mut rt = runtime_of(&stdlib::filter());
        rt.feed("y", [true]);
        assert_eq!(rt.run(10), 1);
        let before = rt.steps();
        assert!(matches!(rt.step(), Err(RuntimeError::InputExhausted(_))));
        assert_eq!(rt.steps(), before);
        // Feeding more input resumes the run.
        rt.feed("y", [false]);
        assert_eq!(rt.run(10), 1);
        assert_eq!(rt.output("x").len(), 1);
    }

    #[test]
    fn outputs_and_pending_are_observable() {
        let mut rt = runtime_of(&stdlib::producer());
        rt.feed("a", [true, false]);
        assert_eq!(rt.pending("a"), 2);
        rt.run(10);
        assert_eq!(rt.pending("a"), 0);
        assert_eq!(rt.output("u").len(), 1);
        assert_eq!(rt.output("x").len(), 1);
    }
}
