//! Sequential code generation (Section 3.6).
//!
//! The generator walks the signals of a compilable process in an order
//! compatible with the reinforced scheduling graph and assigns each one a
//! [`ClockCode`] resolved from the clock hierarchy: signals of the root
//! class are present at every activation, signals of a sampled class are
//! guarded by the value of the sampling signal, and derived classes combine
//! the codes of their operands.  The result is a flat [`StepProgram`]
//! equivalent to the `buffer_iterate` transition function of the paper.

use std::collections::{BTreeMap, BTreeSet};

use clocks::{ClassId, Clock, ClockAnalysis, ClockExpr, SchedNode};
use signal_lang::{KernelEq, Name};

use crate::ir::{Action, ClockCode, StepProgram};

/// Generates the sequential step program of an analyzed process.
///
/// The process should be compilable (Definition 10); the generator still
/// produces a program for non-compilable processes but falls back to
/// conservative clock codes where the hierarchy gives no answer.
pub fn generate(analysis: &ClockAnalysis) -> StepProgram {
    let kernel = analysis.kernel();
    let hierarchy = analysis.hierarchy();
    let roots = hierarchy.roots();
    let equalities = &analysis.relations().equalities;

    // 1. Resolve one clock code per signal (shared across its class).
    let mut codes: BTreeMap<Name, ClockCode> = BTreeMap::new();
    for signal in kernel.signal_set() {
        let code = match hierarchy.class_of(&Clock::tick(signal.clone())) {
            Some(class) => resolve_class(class, hierarchy, &roots, equalities),
            None => ClockCode::Always,
        };
        codes.insert(signal, code);
    }

    // 2. Order the signals so that every signal referenced by a clock code
    //    (the sampler whose value guards a sub-clock) and every data
    //    dependency of the scheduling graph come first.
    let mut deps: BTreeMap<Name, BTreeSet<Name>> = kernel
        .signal_set()
        .into_iter()
        .map(|n| (n, BTreeSet::new()))
        .collect();
    for (signal, code) in &codes {
        let mut mentioned = Vec::new();
        clock_code_signals(code, &mut mentioned);
        for w in mentioned {
            if w != *signal && deps.contains_key(&w) {
                deps.get_mut(signal).expect("declared").insert(w);
            }
        }
    }
    for (from, to, _) in analysis.scheduling_graph().iter_edges() {
        if let (SchedNode::Signal(f), SchedNode::Signal(t)) = (from, to) {
            if f != t && deps.contains_key(f) {
                deps.get_mut(t).map(|s| s.insert(f.clone()));
            }
        }
    }
    let order = topological(&deps);

    // 3. Emit the actions in that order.
    let mut actions = Vec::new();
    for signal in &order {
        actions.push(Action::ComputeClock {
            signal: signal.clone(),
            code: codes[signal].clone(),
        });
        if kernel.is_input(signal.as_str()) {
            actions.push(Action::ReadInput {
                signal: signal.clone(),
            });
        }
        if let Some(eq) = kernel.definition_of(signal.as_str()) {
            actions.push(Action::Eval {
                equation: eq.clone(),
            });
        }
        if kernel.is_output(signal.as_str()) {
            actions.push(Action::WriteOutput {
                signal: signal.clone(),
            });
        }
    }
    // Register updates close the step.
    for (register, source, _) in kernel.registers() {
        actions.push(Action::UpdateRegister { register, source });
    }

    StepProgram {
        name: kernel.name().to_string(),
        inputs: kernel.inputs().cloned().collect(),
        outputs: kernel.outputs().cloned().collect(),
        registers: kernel
            .registers()
            .into_iter()
            .map(|(r, _, init)| (r, init))
            .collect(),
        actions,
    }
}

/// Collects the signals mentioned by a clock code.
fn clock_code_signals(code: &ClockCode, out: &mut Vec<Name>) {
    match code {
        ClockCode::Always => {}
        ClockCode::SameAs(n) | ClockCode::SampleTrue(n) | ClockCode::SampleFalse(n) => {
            out.push(n.clone())
        }
        ClockCode::And(a, b) | ClockCode::Or(a, b) | ClockCode::Diff(a, b) => {
            clock_code_signals(a, out);
            clock_code_signals(b, out);
        }
    }
}

/// Deterministic Kahn topological sort; on a cycle the remaining signals are
/// appended in name order (the acyclicity check of the clock calculus flags
/// genuine cycles separately).
fn topological(deps: &BTreeMap<Name, BTreeSet<Name>>) -> Vec<Name> {
    let mut order = Vec::new();
    let mut placed: BTreeSet<Name> = BTreeSet::new();
    let mut remaining: Vec<Name> = deps.keys().cloned().collect();
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next_remaining = Vec::new();
        for name in remaining {
            let ready = deps[&name].iter().all(|d| placed.contains(d));
            if ready {
                placed.insert(name.clone());
                order.push(name);
                progressed = true;
            } else {
                next_remaining.push(name);
            }
        }
        if !progressed {
            // Cycle: append what is left deterministically.
            for name in &next_remaining {
                order.push(name.clone());
            }
            break;
        }
        remaining = next_remaining;
    }
    order
}

/// Resolves the clock code of a class from the hierarchy.
fn resolve_class(
    class: ClassId,
    hierarchy: &clocks::ClockHierarchy,
    roots: &[ClassId],
    equalities: &[(ClockExpr, ClockExpr)],
) -> ClockCode {
    if roots.contains(&class) {
        return ClockCode::Always;
    }
    // A sampled class: guarded by the value of the sampling signal.
    for member in hierarchy.class_members(class) {
        match member {
            Clock::True(w) | Clock::False(w) => {
                let sampler_class = hierarchy.class_of(&Clock::tick(w.clone()));
                if sampler_class.map(|c| c != class).unwrap_or(false) {
                    return if matches!(member, Clock::True(_)) {
                        ClockCode::SampleTrue(w.clone())
                    } else {
                        ClockCode::SampleFalse(w.clone())
                    };
                }
            }
            Clock::Tick(_) => {}
        }
    }
    // A derived class: find a binary definition over resolvable operands.
    for (l, r) in equalities {
        for (atom_side, expr_side) in [(l, r), (r, l)] {
            let Some(Clock::Tick(x)) = atom_side.as_atom() else {
                continue;
            };
            if hierarchy.class_of(&Clock::tick(x.clone())) != Some(class) {
                continue;
            }
            if let Some(code) = combine(expr_side, hierarchy, class) {
                return code;
            }
        }
    }
    ClockCode::Always
}

fn combine(
    expr: &ClockExpr,
    hierarchy: &clocks::ClockHierarchy,
    target: ClassId,
) -> Option<ClockCode> {
    match expr {
        ClockExpr::Zero => None,
        ClockExpr::Atom(c) => {
            let class = hierarchy.class_of(c)?;
            if class == target {
                // Referring to the class being defined would be circular.
                return None;
            }
            match c {
                Clock::Tick(y) => Some(ClockCode::SameAs(y.clone())),
                Clock::True(w) => Some(ClockCode::SampleTrue(w.clone())),
                Clock::False(w) => Some(ClockCode::SampleFalse(w.clone())),
            }
        }
        ClockExpr::And(a, b) => {
            Some(combine(a, hierarchy, target)?.and(combine(b, hierarchy, target)?))
        }
        ClockExpr::Or(a, b) => {
            Some(combine(a, hierarchy, target)?.or(combine(b, hierarchy, target)?))
        }
        ClockExpr::Diff(a, b) => {
            Some(combine(a, hierarchy, target)?.diff(combine(b, hierarchy, target)?))
        }
    }
}

/// Convenience: analyze and generate in one call.
pub fn generate_from_kernel(kernel: &signal_lang::KernelProcess) -> StepProgram {
    generate(&ClockAnalysis::analyze(kernel))
}

/// Returns `true` when the equation is a delay (used by the emitter to
/// fetch the register instead of recomputing).
pub fn is_delay(eq: &KernelEq) -> bool {
    eq.is_delay()
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    fn program_of(def: &signal_lang::ProcessDef) -> StepProgram {
        generate_from_kernel(&def.normalize().unwrap())
    }

    #[test]
    fn buffer_program_tests_the_alternating_state() {
        let p = program_of(&stdlib::buffer());
        // x is guarded by the value of t (or an equivalent sample), y by its
        // negation.
        let x_code = p.clock_of("x").expect("x has a clock").to_string();
        let y_code = p.clock_of("y").expect("y has a clock").to_string();
        assert_ne!(x_code, "true");
        assert_ne!(y_code, "true");
        assert_ne!(x_code, y_code);
        // The state signals are at the root: always computed.
        assert_eq!(p.clock_of("t"), Some(&ClockCode::Always));
        // Registers: s and the buffer memory.
        assert_eq!(p.registers.len(), 2);
    }

    #[test]
    fn filter_program_reads_y_every_step() {
        let p = program_of(&stdlib::filter());
        assert_eq!(p.clock_of("y"), Some(&ClockCode::Always));
        assert!(p
            .actions
            .iter()
            .any(|a| matches!(a, Action::ReadInput { signal } if signal.as_str() == "y")));
        assert!(p
            .actions
            .iter()
            .any(|a| matches!(a, Action::WriteOutput { signal } if signal.as_str() == "x")));
    }

    #[test]
    fn producer_branches_on_the_value_of_a() {
        let p = program_of(&stdlib::producer());
        let u = p.clock_of("u").unwrap().to_string();
        let x = p.clock_of("x").unwrap().to_string();
        assert!(u.contains('a'), "u guarded by a: {u}");
        assert!(x.contains('a'), "x guarded by a: {x}");
        assert_ne!(u, x);
    }

    #[test]
    fn evaluation_follows_the_scheduling_order() {
        let p = program_of(&stdlib::buffer());
        let position = |name: &str| {
            p.actions
                .iter()
                .position(|a| matches!(a, Action::Eval { equation } if equation.defined().as_str() == name))
                .unwrap_or(usize::MAX)
        };
        // t (the state) is computed before x (which is sampled by it), and r
        // before x (data dependency).
        assert!(position("t") < position("x"));
        assert!(position("r") < position("x"));
    }

    #[test]
    fn every_paper_process_generates_a_program() {
        for def in stdlib::all_paper_processes() {
            let p = program_of(&def);
            assert!(!p.is_empty(), "{} generated an empty program", def.name);
            // Every signal got a clock.
            for input in &p.inputs {
                assert!(p.clock_of(input.as_str()).is_some());
            }
        }
    }
}
