//! Value-type inference over a step program.
//!
//! The step IR is untyped — a signal carries either a boolean or an
//! integer, and the interpreter discovers which at run time.  The source
//! emitters cannot: C and Rust both need every local declared with a
//! concrete type.  This module recovers the types statically from the
//! program itself: register initial values, operator signatures and the
//! boolean samplers of the clock codes seed the knowledge, and same-type
//! constraints (delays, copies, defaults, comparisons) propagate it to a
//! fixpoint.

use std::collections::BTreeMap;

use signal_lang::{Atom, KernelEq, Name, PrimOp, Value};

use crate::ir::{Action, ClockCode, StepProgram};

/// The value type of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigType {
    /// A boolean signal.
    Bool,
    /// An integer signal.
    Int,
}

impl SigType {
    /// The type of a literal value.
    pub fn of_value(v: &Value) -> SigType {
        match v {
            Value::Bool(_) => SigType::Bool,
            Value::Int(_) => SigType::Int,
        }
    }

    /// The C spelling of the type (`bool` / `long`).
    pub fn c_name(self) -> &'static str {
        match self {
            SigType::Bool => "bool",
            SigType::Int => "long",
        }
    }

    /// The Rust spelling of the type (`bool` / `i64`).
    pub fn rust_name(self) -> &'static str {
        match self {
            SigType::Bool => "bool",
            SigType::Int => "i64",
        }
    }
}

/// One typing fact gathered from the program.
enum Fact {
    Known(Name, SigType),
    Same(Name, Name),
}

/// Infers the value type of every signal of the program.
///
/// Signals the constraints cannot reach (a program with no constants, no
/// registers and no typed operator anywhere on their dataflow) are absent
/// from the map; emitters fall back to [`SigType::Int`] for them.  Every
/// process of the paper resolves completely.
pub fn signal_types(program: &StepProgram) -> BTreeMap<Name, SigType> {
    let mut facts: Vec<Fact> = Vec::new();
    for (register, init) in &program.registers {
        facts.push(Fact::Known(register.clone(), SigType::of_value(init)));
    }
    for action in &program.actions {
        match action {
            Action::ComputeClock { code, .. } => clock_facts(code, &mut facts),
            Action::Eval { equation } => equation_facts(equation, &mut facts),
            Action::UpdateRegister { register, source } => {
                facts.push(Fact::Same(register.clone(), source.clone()));
            }
            Action::ReadInput { .. } | Action::WriteOutput { .. } => {}
        }
    }

    // Propagate to a fixpoint: `Known` seeds, `Same` spreads.  The fact
    // list is tiny (a few per equation), so the quadratic sweep is free.
    let mut types: BTreeMap<Name, SigType> = BTreeMap::new();
    loop {
        let mut changed = false;
        for fact in &facts {
            match fact {
                Fact::Known(n, t) => {
                    // First fact wins: a conflicting second fact would mean
                    // an ill-typed program, and oscillating on it would
                    // never converge.
                    if !types.contains_key(n) {
                        types.insert(n.clone(), *t);
                        changed = true;
                    }
                }
                Fact::Same(a, b) => match (types.get(a).copied(), types.get(b).copied()) {
                    (Some(t), None) => {
                        types.insert(b.clone(), t);
                        changed = true;
                    }
                    (None, Some(t)) => {
                        types.insert(a.clone(), t);
                        changed = true;
                    }
                    _ => {}
                },
            }
        }
        if !changed {
            break;
        }
    }
    types
}

/// A sampler guards a clock with its boolean value: `x when c` types `c`.
fn clock_facts(code: &ClockCode, facts: &mut Vec<Fact>) {
    match code {
        ClockCode::Always | ClockCode::SameAs(_) => {}
        ClockCode::SampleTrue(n) | ClockCode::SampleFalse(n) => {
            facts.push(Fact::Known(n.clone(), SigType::Bool));
        }
        ClockCode::And(a, b) | ClockCode::Or(a, b) | ClockCode::Diff(a, b) => {
            clock_facts(a, facts);
            clock_facts(b, facts);
        }
    }
}

fn atom_fact(out: &Name, atom: &Atom, facts: &mut Vec<Fact>) {
    match atom {
        Atom::Const(v) => facts.push(Fact::Known(out.clone(), SigType::of_value(v))),
        Atom::Var(n) => facts.push(Fact::Same(out.clone(), n.clone())),
    }
}

fn equation_facts(eq: &KernelEq, facts: &mut Vec<Fact>) {
    match eq {
        KernelEq::Delay { out, arg, init } => {
            facts.push(Fact::Known(out.clone(), SigType::of_value(init)));
            facts.push(Fact::Same(out.clone(), arg.clone()));
        }
        KernelEq::When { out, arg, cond } => {
            facts.push(Fact::Known(cond.clone(), SigType::Bool));
            atom_fact(out, arg, facts);
        }
        KernelEq::Default { out, left, right } => {
            atom_fact(out, left, facts);
            atom_fact(out, right, facts);
        }
        KernelEq::Func { out, op, args } => match op {
            PrimOp::Id => {
                if let Some(a) = args.first() {
                    atom_fact(out, a, facts);
                }
            }
            PrimOp::Not | PrimOp::And | PrimOp::Or | PrimOp::Xor => {
                facts.push(Fact::Known(out.clone(), SigType::Bool));
                for a in args {
                    if let Atom::Var(n) = a {
                        facts.push(Fact::Known(n.clone(), SigType::Bool));
                    }
                }
            }
            PrimOp::Neg | PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div => {
                facts.push(Fact::Known(out.clone(), SigType::Int));
                for a in args {
                    if let Atom::Var(n) = a {
                        facts.push(Fact::Known(n.clone(), SigType::Int));
                    }
                }
            }
            PrimOp::Eq | PrimOp::Ne => {
                facts.push(Fact::Known(out.clone(), SigType::Bool));
                // The operands agree with each other, not with the output.
                match args.as_slice() {
                    [Atom::Var(a), Atom::Var(b)] => facts.push(Fact::Same(a.clone(), b.clone())),
                    [Atom::Var(a), Atom::Const(v)] | [Atom::Const(v), Atom::Var(a)] => {
                        facts.push(Fact::Known(a.clone(), SigType::of_value(v)));
                    }
                    _ => {}
                }
            }
            PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => {
                facts.push(Fact::Known(out.clone(), SigType::Bool));
                for a in args {
                    if let Atom::Var(n) = a {
                        facts.push(Fact::Known(n.clone(), SigType::Int));
                    }
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::generate_from_kernel;
    use signal_lang::stdlib;

    #[test]
    fn inference_reaches_every_non_polymorphic_interface_signal() {
        // The routing processes (merge, flip, the LTTA family) carry
        // whatever type flows through them — when/default only, so no
        // constraint reaches their data path and the emitters use the
        // documented Int fallback.  Everything else resolves completely.
        let polymorphic = [
            "merge:y",
            "merge:z",
            "merge:d",
            "flip:x",
            "flip:y",
            "main:b",
            "writer:xw",
            "writer:yw",
            "reader:yr",
            "reader:xr",
            "ltta:cr",
            "ltta:cw",
        ];
        let mut untyped = Vec::new();
        for def in stdlib::all_paper_processes() {
            let program = generate_from_kernel(&def.normalize().unwrap());
            let types = signal_types(&program);
            let mut signals: Vec<Name> = program.inputs.clone();
            signals.extend(program.outputs.iter().cloned());
            for signal in signals {
                if !types.contains_key(&signal) {
                    untyped.push(format!("{}:{signal}", def.name));
                }
            }
        }
        assert_eq!(untyped, polymorphic, "unexpected untyped interface signals");
    }

    #[test]
    fn producer_counts_in_integers_and_branches_on_booleans() {
        let program = generate_from_kernel(&stdlib::producer().normalize().unwrap());
        let types = signal_types(&program);
        assert_eq!(types.get(&Name::from("a")), Some(&SigType::Bool));
        assert_eq!(types.get(&Name::from("u")), Some(&SigType::Int));
        assert_eq!(types.get(&Name::from("x")), Some(&SigType::Int));
    }

    #[test]
    fn buffer_state_is_boolean() {
        let program = generate_from_kernel(&stdlib::buffer().normalize().unwrap());
        let types = signal_types(&program);
        assert_eq!(types.get(&Name::from("t")), Some(&SigType::Bool));
        assert_eq!(types.get(&Name::from("y")), Some(&SigType::Bool));
    }
}
