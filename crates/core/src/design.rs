//! The design API implementing Definition 12 and Theorem 1.

use std::collections::BTreeMap;
use std::fmt;

use clocks::{Clock, ClockAlgebra, ClockAnalysis, ClockExpr};
use codegen::{ClockCode, SequentialRuntime, StepProgram};
use gals_rt::{
    CapacityAnalysis, DeployError, Deployment, EdgeClocks, MachineKind, ReferenceComponent,
};
use signal_lang::{KernelProcess, Name, ProcessBuilder, ProcessDef, SignalError};

use crate::verdict::Verdict;

/// An error raised while assembling a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A component failed to normalize or the composition is ill-formed.
    Signal(SignalError),
    /// The design has no component.
    Empty,
    /// Deployment was requested on a design that fails the static
    /// weak-hierarchy criterion.
    NotVerified(String),
    /// Assembling the deployment itself failed (e.g. the interface-derived
    /// topology is ill-formed).
    Deploy(DeployError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Signal(e) => write!(f, "{e}"),
            DesignError::Empty => write!(f, "a design needs at least one component"),
            DesignError::NotVerified(name) => write!(
                f,
                "design {name} fails the static weak-hierarchy criterion; \
                 only verified designs deploy (use deploy_unchecked to observe \
                 the divergence)"
            ),
            DesignError::Deploy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<SignalError> for DesignError {
    fn from(e: SignalError) -> Self {
        DesignError::Signal(e)
    }
}

impl From<DeployError> for DesignError {
    fn from(e: DeployError) -> Self {
        match e {
            DeployError::NotVerified(name) => DesignError::NotVerified(name),
            other => DesignError::Deploy(other),
        }
    }
}

/// One component of a design: an endochronous (or at least separately
/// analyzable) Signal process with its analysis and generated code.
pub struct Component {
    definition: ProcessDef,
    kernel: KernelProcess,
    analysis: ClockAnalysis,
}

impl Component {
    /// Analyzes a process definition into a component.
    pub fn new(definition: ProcessDef) -> Result<Self, DesignError> {
        let kernel = definition.normalize()?;
        let analysis = ClockAnalysis::analyze(&kernel);
        Ok(Component {
            definition,
            kernel,
            analysis,
        })
    }

    /// The component name.
    pub fn name(&self) -> &str {
        &self.definition.name
    }

    /// The source definition.
    pub fn definition(&self) -> &ProcessDef {
        &self.definition
    }

    /// The kernel form.
    pub fn kernel(&self) -> &KernelProcess {
        &self.kernel
    }

    /// The clock analysis of the component alone.
    pub fn analysis(&self) -> &ClockAnalysis {
        &self.analysis
    }

    /// Is the component endochronous on its own (Property 2)?
    pub fn is_endochronous(&self) -> bool {
        self.analysis.is_endochronous()
    }

    /// The generated sequential step program of the component.
    pub fn step_program(&self) -> StepProgram {
        codegen::seq::generate(&self.analysis)
    }

    /// The generated C text of the component.
    pub fn emit_c(&self) -> String {
        codegen::emit::emit_c(&self.step_program())
    }

    /// The generated Rust module of the component (a self-contained,
    /// compilable step machine — see `codegen::emit_rust`).
    pub fn emit_rust(&self) -> String {
        codegen::emit_rust::emit_rust(&self.step_program())
    }

    /// A ready-to-run sequential runtime interpreting the generated code.
    pub fn runtime(&self) -> SequentialRuntime {
        SequentialRuntime::new(self.step_program())
    }

    /// A ready-to-run compiled runtime (slot-indexed, zero per-step
    /// allocation) executing the generated code.
    pub fn compiled_runtime(&self) -> codegen::CompiledRuntime {
        codegen::CompiledRuntime::from_program(&self.step_program())
    }

    /// Activation signals for the synchronous reference interpreter: one
    /// representative per *autonomous* root of the clock hierarchy — a root
    /// class containing no input signal, whose tick is paced by nothing but
    /// the component itself (the alternating state of the one-place buffer
    /// is the canonical case).
    pub fn activation(&self) -> Vec<Name> {
        let hierarchy = self.analysis.hierarchy();
        let mut activation = Vec::new();
        for class in hierarchy.roots() {
            let mut ticks: Vec<Name> = hierarchy
                .class_members(class)
                .iter()
                .filter_map(|clock| match clock {
                    Clock::Tick(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if ticks.iter().any(|n| self.kernel.is_input(n.as_str())) {
                continue; // the environment paces this root
            }
            ticks.sort();
            if let Some(representative) = ticks.into_iter().next() {
                activation.push(representative);
            }
        }
        activation
    }

    /// The component-local clock expression of one of its signals: what
    /// the component's own inferred relations equate with `^signal` (e.g.
    /// `[not a]` for the producer's emission of `x`), or `^signal` itself
    /// when no richer equality is recorded.  This is the per-side clock
    /// the capacity derivation compares across an edge.
    pub fn clock_expr_of(&self, signal: &Name) -> ClockExpr {
        let tick = ClockExpr::Atom(Clock::Tick(signal.clone()));
        let mut fallback: Option<ClockExpr> = None;
        for (l, r) in &self.analysis.relations().equalities {
            let other = if l == &tick {
                r
            } else if r == &tick {
                l
            } else {
                continue;
            };
            if other == &tick {
                continue;
            }
            // Prefer an expression over *other* signals: it says when the
            // component emits/reads without referring to the edge itself.
            let mut atoms = Vec::new();
            other.atoms(&mut atoms);
            if atoms.iter().all(|c| c.signal() != signal) {
                return other.clone();
            }
            fallback.get_or_insert_with(|| other.clone());
        }
        fallback.unwrap_or(tick)
    }

    /// The synchronous reference of the component, as registered on a
    /// deployment for the dynamic isochrony conformance check.
    pub fn reference(&self) -> ReferenceComponent {
        ReferenceComponent {
            name: self.name().to_string(),
            kernel: self.kernel.clone(),
            activation: self.activation(),
        }
    }
}

impl fmt::Debug for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Component")
            .field("name", &self.name())
            .field("endochronous", &self.is_endochronous())
            .finish()
    }
}

/// A design: a named composition of components, analyzed both per component
/// and globally, on which the weak-hierarchy criterion is evaluated.
pub struct Design {
    name: String,
    components: Vec<Component>,
    composition: KernelProcess,
    composition_analysis: ClockAnalysis,
    incrementally_ok: bool,
}

impl Design {
    /// Builds a design from a single process (a one-component design).
    pub fn new(definition: ProcessDef) -> Result<Self, DesignError> {
        let name = definition.name.clone();
        Design::compose(name, [definition])
    }

    /// Builds a design by composing `components` under `name`, checking the
    /// incremental condition of Definition 12: every prefix of the
    /// composition must be well-clocked and acyclic.
    pub fn compose<I>(name: impl Into<String>, components: I) -> Result<Self, DesignError>
    where
        I: IntoIterator<Item = ProcessDef>,
    {
        let name = name.into();
        let components: Vec<Component> = components
            .into_iter()
            .map(Component::new)
            .collect::<Result<_, _>>()?;
        if components.is_empty() {
            return Err(DesignError::Empty);
        }
        // Incremental composition (Definition 12): compose one component at
        // a time and check well-clockedness and acyclicity of every prefix.
        let mut incrementally_ok = true;
        let mut composition = components[0].kernel().clone();
        for component in &components[1..] {
            composition = composition.compose(component.kernel())?;
            let analysis = ClockAnalysis::analyze(&composition);
            if !(analysis.is_well_clocked() && analysis.is_acyclic()) {
                incrementally_ok = false;
            }
        }
        let composition_analysis = ClockAnalysis::analyze(&composition);
        Ok(Design {
            name,
            components,
            composition,
            composition_analysis,
            incrementally_ok,
        })
    }

    /// Builds a design directly from a composite definition plus the list of
    /// component definitions it was assembled from (used when the composite
    /// hides shared signals, like the paper's `main` process hides `x`).
    pub fn from_parts(
        composite: ProcessDef,
        components: impl IntoIterator<Item = ProcessDef>,
    ) -> Result<Self, DesignError> {
        let name = composite.name.clone();
        let components: Vec<Component> = components
            .into_iter()
            .map(Component::new)
            .collect::<Result<_, _>>()?;
        if components.is_empty() {
            return Err(DesignError::Empty);
        }
        let composition = composite.normalize()?;
        let composition_analysis = ClockAnalysis::analyze(&composition);
        let incrementally_ok =
            composition_analysis.is_well_clocked() && composition_analysis.is_acyclic();
        Ok(Design {
            name,
            components,
            composition,
            composition_analysis,
            incrementally_ok,
        })
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The components of the design.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The kernel form of the global composition.
    pub fn composition(&self) -> &KernelProcess {
        &self.composition
    }

    /// The clock analysis of the global composition.
    pub fn analysis(&self) -> &ClockAnalysis {
        &self.composition_analysis
    }

    /// Is the design weakly hierarchic (Definition 12)?
    ///
    /// Every component must be compilable and hierarchic, and the (prefixes
    /// of the) composition must be well-clocked and acyclic.
    pub fn is_weakly_hierarchic(&self) -> bool {
        self.components.iter().all(Component::is_endochronous)
            && self.incrementally_ok
            && self.composition_analysis.is_well_clocked()
            && self.composition_analysis.is_acyclic()
    }

    /// The aggregated verdict of the design.
    pub fn verdict(&self) -> Verdict {
        let analysis = &self.composition_analysis;
        let weakly_hierarchic = self.is_weakly_hierarchic();
        Verdict {
            name: self.name.clone(),
            component_count: self.components.len(),
            components_endochronous: self.components.iter().all(Component::is_endochronous),
            well_clocked: analysis.is_well_clocked(),
            acyclic: analysis.is_acyclic(),
            compilable: analysis.is_compilable(),
            endochronous: analysis.is_endochronous(),
            weakly_hierarchic,
            // Theorem 1: weakly hierarchic (hence weakly endochronous) and
            // non-blocking composition of endochronous components is
            // isochronous.
            isochronous: weakly_hierarchic,
            roots: analysis.roots().len(),
        }
    }

    /// Assembles the multi-threaded GALS deployment of the design —
    /// Theorem 1 operationalized: each component's generated step program
    /// runs on its own OS thread, connected by bounded channels derived
    /// from the shared signals, and the synchronous reference of every
    /// component is registered so the outcome can check dynamic isochrony
    /// conformance ([`gals_rt::DeploymentOutcome::check_conformance`]).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion: nothing guarantees the flows of an
    /// unverified deployment, so it must be requested explicitly with
    /// [`deploy_unchecked`](Design::deploy_unchecked).
    pub fn deploy(&self) -> Result<Deployment, DesignError> {
        self.deploy_with(MachineKind::default())
    }

    /// [`deploy`](Design::deploy) with an explicit execution strategy for
    /// the component machines: [`MachineKind::Compiled`] (the default —
    /// slot-indexed programs, zero per-step allocation) or
    /// [`MachineKind::Interpreted`] (the `Name`-keyed reference
    /// interpreter).  Both produce identical flows on every verified
    /// design; the conformance suites replay both.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion.
    pub fn deploy_with(&self, kind: MachineKind) -> Result<Deployment, DesignError> {
        if !self.is_weakly_hierarchic() {
            return Err(DesignError::NotVerified(self.name.clone()));
        }
        Ok(self.deploy_unchecked_with(kind))
    }

    /// Assembles the deployment without checking the static criterion —
    /// for experiments that *want* to observe a non-isochronous design
    /// diverge (the conformance checker reports the divergence instead of
    /// silently accepting it).
    pub fn deploy_unchecked(&self) -> Deployment {
        self.deploy_unchecked_with(MachineKind::default())
    }

    /// [`deploy_unchecked`](Design::deploy_unchecked) with an explicit
    /// execution strategy for the component machines.
    pub fn deploy_unchecked_with(&self, kind: MachineKind) -> Deployment {
        let programs: Vec<_> = self.components.iter().map(|c| c.step_program()).collect();
        // Paced marks only make sense on environment inputs (signals no
        // component produces): a channel-fed input is paced by its
        // producer, and the deployment rejects paced marks on it.
        let produced: std::collections::BTreeSet<_> = programs
            .iter()
            .flat_map(|p| p.outputs.iter().cloned())
            .collect();
        let mut deployment = Deployment::new();
        for (component, program) in self.components.iter().zip(programs) {
            // Environment inputs present at every activation of the step
            // function pace their component: the synchronous reference
            // must present them at every attempted reaction too.
            for input in &program.inputs {
                if matches!(program.clock_of(input.as_str()), Some(ClockCode::Always))
                    && !produced.contains(input)
                {
                    deployment.mark_paced(input.clone());
                }
            }
            deployment.add_reference(component.reference());
            deployment.add_machine(codegen::machine_of(kind, program));
        }
        deployment.set_machine_kind(kind);
        deployment
    }

    /// The clock expressions governing every channel signal of the
    /// design: for each signal produced by one component and consumed by
    /// another, the producer-side and consumer-side local clock
    /// expressions ([`Component::clock_expr_of`]) the capacity derivation
    /// compares in the algebra of the global composition — plus, when a
    /// component's kernel exposes a periodic phase system (a one-hot
    /// delay ring or an alternating register), the k-periodic
    /// [`clocks::ClockWord`] of its side of the edge, resolved in the
    /// component's *local* relation.  The words survive interface
    /// abstraction ([`Design::from_parts`]): a composite hiding the
    /// components' internals strips them from the global algebra, but
    /// each component still knows its own phase structure.
    pub fn edge_clocks(&self) -> BTreeMap<Name, EdgeClocks> {
        let mut producer_of: BTreeMap<Name, usize> = BTreeMap::new();
        for (i, component) in self.components.iter().enumerate() {
            for output in component.kernel().outputs() {
                producer_of.insert(output.clone(), i);
            }
        }
        let mut local = LocalWords::new(&self.components);
        let mut edges: BTreeMap<Name, EdgeClocks> = BTreeMap::new();
        for (j, component) in self.components.iter().enumerate() {
            for input in component.kernel().inputs() {
                let Some(&i) = producer_of.get(input) else {
                    continue; // environment input
                };
                if i == j {
                    continue; // self-loop: resolved inside the component
                }
                let consumer = component.clock_expr_of(input);
                let consumer_word = local.word_of(j, &consumer);
                let entry = edges.entry(input.clone()).or_insert_with(|| {
                    let producer = self.components[i].clock_expr_of(input);
                    let producer_word = local.word_of(i, &producer);
                    EdgeClocks {
                        producer,
                        consumers: Vec::new(),
                        producer_word,
                        consumer_words: Vec::new(),
                    }
                });
                entry.consumers.push(consumer);
                entry.consumer_words.push(consumer_word);
            }
        }
        edges
    }

    /// Derives the static performance prediction of the design's
    /// deployment from the same k-periodic clock words that bound its
    /// channels: per-component steady-state reactions per environment
    /// token, per-edge traffic, pipeline-fill latency and the bottleneck
    /// edge — before any reaction runs.  Install it on a deployment with
    /// [`gals_rt::Deployment::set_prediction`] so the run's stats report
    /// predicted and measured paces side by side.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when the interface-derived topology is
    /// ill-formed (e.g. two components produce the same signal).
    pub fn performance_prediction(&self) -> Result<gals_rt::PerformancePrediction, DeployError> {
        // Resolve the topology under derived sizing when the analysis
        // succeeds, so the per-edge capacities in the prediction are the
        // ones a `deploy_derived` run will actually wire; designs the
        // calculus cannot fully bound fall back to the default policy.
        let mut deployment = self.deploy_unchecked();
        if let Ok(analysis) = self.capacity_analysis() {
            if analysis.is_fully_bounded() {
                deployment.set_capacity_analysis(&analysis);
            }
        }
        let topology = deployment.topology()?;
        let edge_clocks = self.edge_clocks();
        let environment: std::collections::BTreeSet<&Name> = topology.environment.iter().collect();
        let mut local = LocalWords::new(&self.components);
        let mut env_reads = Vec::new();
        for (j, component) in self.components.iter().enumerate() {
            for input in component.kernel().inputs() {
                if !environment.contains(input) {
                    continue; // channel-fed: covered by the edge words
                }
                let expr = component.clock_expr_of(input);
                env_reads.push((j, local.word_of(j, &expr)));
            }
        }
        let names: Vec<String> = self
            .components
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        Ok(gals_rt::PerformancePrediction::derive(
            &topology,
            &edge_clocks,
            &env_reads,
            &names,
        ))
    }

    /// Derives a channel capacity bound for every edge of the design's
    /// deployment topology from the clock calculus — the FIFO-sizing half
    /// of the paper's claim that verification makes deployment safe by
    /// construction.  Install the result with
    /// [`Deployment::set_capacity_analysis`] or use
    /// [`deploy_derived`](Design::deploy_derived) directly.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion: the relations of an unverified
    /// design prove nothing, so no bound can be trusted from them.
    /// Returns [`DeployError::UnprimedCycle`] when the priming-liveness
    /// pass proves a feedback loop can never start turning — every
    /// component on it waits on its first read strictly before its first
    /// emission — refusing statically the exact wait cycle the pool
    /// scheduler's dynamic `Deadlocked` detection would otherwise only
    /// report at run time.
    pub fn capacity_analysis(&self) -> Result<CapacityAnalysis, DeployError> {
        if !self.is_weakly_hierarchic() {
            return Err(DeployError::NotVerified(self.name.clone()));
        }
        let topology = self.deploy_unchecked().topology()?;
        // A fresh algebra of the global composition: entailment queries
        // mutate BDD caches, so the shared analysis cannot serve here.
        let relations = clocks::inference::infer(&self.composition);
        let mut algebra = ClockAlgebra::new(&self.composition, &relations);
        let analysis = CapacityAnalysis::derive(
            &topology,
            &self.composition,
            &mut algebra,
            &self.edge_clocks(),
        );
        if let Some(cycle) = analysis.unprimed_cycles().first() {
            return Err(DeployError::UnprimedCycle(cycle.clone()));
        }
        Ok(analysis)
    }

    /// Assembles the deployment of a verified design with **derived**
    /// channel capacities: every edge's FIFO gets the bound the clock
    /// calculus proves sufficient ([`capacity_analysis`](Design::capacity_analysis)),
    /// instead of a hand-tuned default — the last hand-tuned knob of the
    /// runtime turned into an artifact of the verification.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion.
    pub fn deploy_derived(&self) -> Result<Deployment, DesignError> {
        self.deploy_derived_with(MachineKind::default())
    }

    /// [`deploy_derived`](Design::deploy_derived) with an explicit
    /// execution strategy for the component machines.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion.
    pub fn deploy_derived_with(&self, kind: MachineKind) -> Result<Deployment, DesignError> {
        let mut deployment = self.deploy_with(kind)?;
        let analysis = self.capacity_analysis()?;
        deployment.set_capacity_analysis(&analysis);
        Ok(deployment)
    }

    /// Stages the verified design for submission to a shared serving pool
    /// ([`gals_rt::SharedPool::submit`]): the deployment is assembled with
    /// derived channel capacities and the static performance prediction
    /// pre-installed, then wired into a [`gals_rt::StagedDeployment`] —
    /// machines instantiated, internal channels connected, environment
    /// inputs exposed as streaming ingress and external outputs as egress.
    /// This is the entry point `gals-serve` admission prices: the staged
    /// deployment carries the same capacity-and-prediction artifacts the
    /// batch [`deploy_derived`](Design::deploy_derived) run would report.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion, and propagates topology errors
    /// from the wiring step.
    pub fn stage_derived(&self) -> Result<gals_rt::StagedDeployment, DesignError> {
        self.stage_derived_with(MachineKind::default())
    }

    /// [`stage_derived`](Design::stage_derived) with an explicit execution
    /// strategy for the component machines.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NotVerified`] when the design fails the
    /// static weak-hierarchy criterion, and propagates topology errors
    /// from the wiring step.
    pub fn stage_derived_with(
        &self,
        kind: MachineKind,
    ) -> Result<gals_rt::StagedDeployment, DesignError> {
        let mut deployment = self.deploy_derived_with(kind)?;
        if let Ok(prediction) = self.performance_prediction() {
            deployment.set_prediction(prediction);
        }
        Ok(deployment.stage()?)
    }

    /// Composes this design with another component, re-checking the static
    /// criterion — the paper's `main2` extension of Section 5.2.
    pub fn extend(&self, component: ProcessDef) -> Result<Design, DesignError> {
        let mut defs: Vec<ProcessDef> = self
            .components
            .iter()
            .map(|c| c.definition().clone())
            .collect();
        defs.push(component);
        Design::compose(format!("{}+", self.name), defs)
    }
}

/// One phase-system + local-algebra pair per component, built lazily:
/// word resolution mutates BDD caches, so the shared (immutable)
/// component analyses cannot serve, and most components never need one.
struct LocalWords<'a> {
    components: &'a [Component],
    cache: Vec<Option<(Vec<clocks::PeriodicSystem>, ClockAlgebra)>>,
}

impl<'a> LocalWords<'a> {
    fn new(components: &'a [Component]) -> Self {
        LocalWords {
            components,
            cache: components.iter().map(|_| None).collect(),
        }
    }

    /// The k-periodic word of `expr` over component `index`'s local
    /// reactions, when its kernel exposes a periodic phase system that
    /// resolves the expression.
    fn word_of(&mut self, index: usize, expr: &clocks::ClockExpr) -> Option<clocks::ClockWord> {
        let component = &self.components[index];
        let (systems, algebra) = self.cache[index].get_or_insert_with(|| {
            let kernel = component.kernel();
            let relations = clocks::inference::infer(kernel);
            (
                clocks::periodic_systems(kernel),
                ClockAlgebra::new(kernel, &relations),
            )
        });
        clocks::word_of_expr(expr, systems, algebra)
    }
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("components", &self.components.len())
            .field("weakly_hierarchic", &self.is_weakly_hierarchic())
            .finish()
    }
}

/// Builds the paper's synthetic scalability workload: a chain of `n`
/// producer/consumer pairs, pair `i` linking inputs `a_i` / `b_i` through a
/// shared signal `x_i` (used by benchmark E10).
pub fn chain_of_pairs(n: usize) -> Vec<ProcessDef> {
    use signal_lang::stdlib;
    let mut out = Vec::new();
    for i in 0..n {
        let producer = stdlib::producer().instantiate(
            &format!("p{i}"),
            &[
                ("a", &format!("a{i}") as &str),
                ("u", &format!("u{i}")),
                ("x", &format!("x{i}")),
            ],
        );
        let consumer = stdlib::consumer().instantiate(
            &format!("c{i}"),
            &[
                ("b", &format!("b{i}") as &str),
                ("x", &format!("x{i}")),
                ("v", &format!("v{i}")),
            ],
        );
        out.push(producer);
        out.push(consumer);
    }
    out
}

/// Builds a single `ProcessDef` composing an entire chain of pairs, for the
/// monolithic (model-checking) side of the comparison.
pub fn chain_as_single_process(n: usize) -> Result<ProcessDef, SignalError> {
    let mut builder = ProcessBuilder::new(format!("chain{n}"));
    for def in chain_of_pairs(n) {
        builder = builder.include(&def);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    #[test]
    fn producer_consumer_design_satisfies_the_static_criterion() {
        let design =
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("builds");
        let v = design.verdict();
        assert!(v.components_endochronous);
        assert!(v.weakly_hierarchic);
        assert!(v.isochronous);
        assert!(!v.endochronous);
        assert_eq!(v.roots, 2);
        assert!(v.separately_compilable());
    }

    #[test]
    fn ltta_design_is_isochronous_but_not_endochronous() {
        let stage1 = stdlib::buffer_pair().instantiate(
            "bus1",
            &[("y", "yw"), ("b", "bw"), ("yo", "ym"), ("bo", "bm")],
        );
        let stage2 = stdlib::buffer_pair().instantiate(
            "bus2",
            &[("y", "ym"), ("b", "bm"), ("yo", "yr"), ("bo", "br")],
        );
        let design = Design::compose(
            "ltta",
            [stdlib::ltta_writer(), stage1, stage2, stdlib::ltta_reader()],
        )
        .expect("builds");
        let v = design.verdict();
        assert!(v.components_endochronous, "{v}");
        assert!(v.weakly_hierarchic, "{v}");
        assert!(!v.endochronous);
        assert_eq!(v.roots, 4);
    }

    #[test]
    fn a_single_endochronous_component_is_a_trivial_design() {
        let design = Design::new(stdlib::buffer()).expect("builds");
        let v = design.verdict();
        assert!(v.endochronous);
        assert!(v.weakly_hierarchic);
        assert_eq!(v.component_count, 1);
    }

    #[test]
    fn extending_a_design_rechecks_the_criterion() {
        let design =
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("builds");
        // Add a second consumer reading the first consumer's output v
        // through a renamed instance (the paper's main2).
        let extra =
            stdlib::consumer().instantiate("consumer2", &[("b", "c"), ("x", "v"), ("v", "w")]);
        let extended = design.extend(extra).expect("extends");
        assert_eq!(extended.components().len(), 3);
        assert!(
            extended.verdict().weakly_hierarchic,
            "{}",
            extended.verdict()
        );
    }

    #[test]
    fn a_non_endochronous_component_fails_the_criterion() {
        use signal_lang::{Expr, ProcessBuilder};
        // A lone default over unrelated inputs is not hierarchic.
        let loose = ProcessBuilder::new("loose")
            .define("d", Expr::var("y").default(Expr::var("z")))
            .build()
            .unwrap();
        let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
        let v = design.verdict();
        assert!(!v.components_endochronous);
        assert!(!v.weakly_hierarchic);
        assert!(!v.isochronous);
    }

    #[test]
    fn empty_designs_are_rejected() {
        assert!(matches!(
            Design::compose("none", Vec::<ProcessDef>::new()),
            Err(DesignError::Empty)
        ));
    }

    #[test]
    fn chains_scale_and_remain_weakly_hierarchic() {
        let design = Design::compose("chain", chain_of_pairs(3)).expect("builds");
        assert_eq!(design.components().len(), 6);
        assert!(design.is_weakly_hierarchic());
        assert_eq!(design.verdict().roots, 6);
    }

    #[test]
    fn a_verified_design_deploys_on_threads_and_conforms() {
        let design =
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("builds");
        let mut deployment = design.deploy().expect("the design is verified");
        deployment.set_capacity(4).expect("nonzero");
        deployment.feed("a", [true, false, true, false, true]);
        deployment.feed("b", [false, true, false, true, false]);
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().components.len(), 2);
        assert_eq!(
            outcome
                .flow("v")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 6]
        );
        let report = outcome.check_conformance().expect("reference registered");
        assert!(report.is_isochronous(), "{report}");
    }

    #[test]
    fn unverified_designs_are_refused_deployment() {
        use signal_lang::{Expr, ProcessBuilder};
        let loose = ProcessBuilder::new("loose")
            .define("d", Expr::var("y").default(Expr::var("z")))
            .build()
            .unwrap();
        let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
        assert!(matches!(
            design.deploy(),
            Err(DesignError::NotVerified(ref n)) if n == "bad"
        ));
        // The unchecked path still assembles a deployment for divergence
        // experiments.
        assert_eq!(design.deploy_unchecked().machine_count(), 2);
    }

    #[test]
    fn stdlib_designs_derive_finite_bounds_for_every_edge() {
        for design in [
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).unwrap(),
            crate::library::buffer_pipeline_design(3).unwrap(),
            crate::library::ltta_design().unwrap(),
            Design::compose("chain", chain_of_pairs(2)).unwrap(),
        ] {
            let analysis = design.capacity_analysis().expect("verified design");
            assert!(analysis.is_fully_bounded(), "{}: {analysis}", design.name());
            assert!(!analysis.bounds().is_empty(), "{}", design.name());
            for (signal, capacity) in analysis.bounds() {
                assert!(
                    (1..=2).contains(&capacity.bound),
                    "{}: {signal} got bound {}",
                    design.name(),
                    capacity.bound
                );
            }
        }
    }

    #[test]
    fn derived_deployment_reports_provenance_and_conforms() {
        let design =
            Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("builds");
        let mut deployment = design.deploy_derived().expect("verified");
        let topology = deployment.topology().expect("bounded");
        for spec in &topology.channels {
            assert_eq!(spec.source, gals_rt::CapacitySource::Derived);
            assert!(spec.derivation.is_some(), "{}", spec.signal);
        }
        deployment.feed("a", [true, false, true, false, true]);
        deployment.feed("b", [false, true, false, true, false]);
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().sizing, gals_rt::ChannelSizing::Derived);
        let report = outcome.check_conformance().expect("reference registered");
        assert!(report.is_isochronous(), "{report}");
    }

    #[test]
    fn unverified_designs_cannot_derive_capacities() {
        use signal_lang::{Expr, ProcessBuilder};
        let loose = ProcessBuilder::new("loose")
            .define("d", Expr::var("y").default(Expr::var("z")))
            .build()
            .unwrap();
        let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
        assert_eq!(
            design.capacity_analysis().unwrap_err(),
            gals_rt::DeployError::NotVerified("bad".into())
        );
        assert!(matches!(
            design.deploy_derived(),
            Err(DesignError::NotVerified(ref n)) if n == "bad"
        ));
    }

    #[test]
    fn activation_finds_autonomous_roots_only() {
        // The buffer is paced by its own alternating state: one autonomous
        // root, activated through one of its state signals.
        let buffer = Component::new(stdlib::buffer()).expect("builds");
        assert_eq!(buffer.activation().len(), 1);
        // The producer is paced by its input a: no autonomous root.
        let producer = Component::new(stdlib::producer()).expect("builds");
        assert!(producer.activation().is_empty());
    }

    #[test]
    fn components_expose_generated_artefacts() {
        let component = Component::new(stdlib::buffer()).expect("builds");
        assert!(component.is_endochronous());
        assert!(!component.step_program().is_empty());
        assert!(component.emit_c().contains("buffer_iterate"));
        let mut rt = component.runtime();
        rt.feed("y", [true, false]);
        assert!(rt.run(10) >= 2);
    }
}
