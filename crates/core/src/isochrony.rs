//! Dynamic cross-checks of isochrony (Definition 3) on concrete executions.
//!
//! The static criterion of [`crate::Design`] guarantees isochrony by
//! Theorem 1; this module *observes* it: the same input flows are fed to
//! (a) the synchronous composition executed by the reference interpreter
//! and (b) the asynchronous network of separately executed components, and
//! the resulting flows are compared signal per signal.

use std::collections::BTreeMap;

use moc::Value;
use signal_lang::Name;
use sim::{AsyncNetwork, Drive, FlowComparison, Simulator};

use crate::design::Design;

/// The flows observed on the outputs of an execution (re-exported from
/// [`sim::flows`], where the comparison logic lives).
pub type Flows = sim::Flows;

/// The result of comparing the synchronous and asynchronous executions of a
/// design on the same input flows.
#[derive(Debug, Clone)]
pub struct IsochronyObservation {
    /// Output flows of the synchronous composition.
    pub synchronous: Flows,
    /// Output flows of the asynchronous network.
    pub asynchronous: Flows,
}

impl IsochronyObservation {
    /// The signal-per-signal comparison of the two executions.
    pub fn comparison(&self) -> FlowComparison {
        FlowComparison::compare(&self.synchronous, &self.asynchronous)
    }

    /// Returns `true` when both executions produced the same flows on every
    /// compared signal (flow-equivalence of the observable behaviours).
    pub fn flows_match(&self) -> bool {
        self.comparison().flows_match()
    }

    /// The signals whose flows differ.
    pub fn mismatches(&self) -> Vec<Name> {
        self.comparison().mismatching_signals()
    }
}

/// Observes isochrony of the paper's producer/consumer pair for the given
/// input streams `a` and `b` (which must pair every `false` of `a` with a
/// `true` of `b` in order, as the clock constraint requires).
///
/// The synchronous side runs the composition instant by instant; the
/// asynchronous side runs each component at its own pace in an
/// [`AsyncNetwork`] with the interleaving selected by `seed`.
pub fn observe_producer_consumer(
    design: &Design,
    a: &[bool],
    b: &[bool],
    seed: u64,
) -> IsochronyObservation {
    // Synchronous reference: the composition stepped with both inputs
    // present at each instant.
    let mut synchronous: Flows = BTreeMap::new();
    let mut sim = Simulator::new(design.composition());
    let steps = a.len().min(b.len());
    for i in 0..steps {
        let drives = [
            ("a", Drive::Present(Value::Bool(a[i]))),
            ("b", Drive::Present(Value::Bool(b[i]))),
        ];
        if let Ok(reaction) = sim.step(&drives) {
            for (name, value) in reaction.events() {
                if design.composition().is_output(name.as_str()) {
                    synchronous.entry(name.clone()).or_default().push(value);
                }
            }
        }
    }

    // Asynchronous side: one simulator per component, FIFO-connected.
    let mut network = AsyncNetwork::new();
    for component in design.components() {
        network.add_component(component.name(), component.kernel(), Vec::<Name>::new());
    }
    network.feed_paced("a", a.iter().copied());
    network.feed_paced("b", b.iter().copied());
    network.run_random(8 * (a.len() + b.len()), seed);
    let mut asynchronous: Flows = BTreeMap::new();
    for (name, flow) in network.flows() {
        if design.composition().is_output(name.as_str()) {
            asynchronous.insert(name.clone(), flow.clone());
        }
    }
    IsochronyObservation {
        synchronous,
        asynchronous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use signal_lang::stdlib;

    fn design() -> Design {
        Design::compose("main", [stdlib::producer(), stdlib::consumer()]).expect("builds")
    }

    #[test]
    fn synchronous_and_asynchronous_flows_coincide() {
        let design = design();
        let a = [true, false, true, false, true, true, false];
        let b = [false, true, false, true, false, false, true];
        for seed in [3u64, 17, 1234] {
            let obs = observe_producer_consumer(&design, &a, &b, seed);
            assert!(
                obs.flows_match(),
                "seed {seed}: mismatch on {:?}\nsync: {:?}\nasync: {:?}",
                obs.mismatches(),
                obs.synchronous,
                obs.asynchronous
            );
        }
    }

    #[test]
    fn mismatches_are_reported_when_flows_differ() {
        let mut obs = IsochronyObservation {
            synchronous: BTreeMap::new(),
            asynchronous: BTreeMap::new(),
        };
        obs.synchronous.insert(Name::from("u"), vec![Value::Int(1)]);
        assert!(!obs.flows_match());
        assert_eq!(obs.mismatches(), vec![Name::from("u")]);
    }
}
