//! The paper's primary contribution: compositional design of isochronous
//! systems by the *weak hierarchy* criterion.
//!
//! A process is **weakly hierarchic** (Definition 12) when it is the
//! composition of compilable, hierarchic — hence endochronous — components
//! and every intermediate composition is well-clocked and acyclic.
//! Theorem 1 then gives, *statically*:
//!
//! 1. a weakly hierarchic process is weakly endochronous;
//! 2. the composition of weakly hierarchic processes that is well-clocked
//!    and acyclic makes its components **isochronous** — the asynchronous
//!    execution of the separately compiled components produces the same
//!    flows as their synchronous composition.
//!
//! This crate exposes the criterion as a design API ([`Design`],
//! [`Component`]), the per-component artefacts (clock analysis, generated
//! step program, emitted C), dynamic cross-checks of isochrony on concrete
//! executions ([`isochrony`]) and the case studies of the paper
//! ([`library`]).
//!
//! # Example
//!
//! ```
//! use isochron::Design;
//! use signal_lang::stdlib;
//!
//! // The producer and the consumer are endochronous; their composition is
//! // not, but it satisfies the static weak-hierarchy criterion, so the pair
//! // is isochronous and can be compiled separately.
//! let design = Design::compose(
//!     "main",
//!     [stdlib::producer(), stdlib::consumer()],
//! )?;
//! let verdict = design.verdict();
//! assert!(verdict.components_endochronous);
//! assert!(verdict.weakly_hierarchic);
//! assert!(verdict.isochronous);
//! assert!(!verdict.endochronous);
//! # Ok::<(), isochron::DesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod isochrony;
pub mod library;
pub mod verdict;

pub use design::{Component, Design, DesignError};
pub use gals_rt::MachineKind;
pub use verdict::Verdict;
