//! The paper's case studies, packaged as ready-made designs.
//!
//! The underlying Signal sources live in [`signal_lang::stdlib`]; this
//! module assembles them into [`Design`]s so that examples and benchmarks
//! can analyze, compile and execute them in one call.

pub use signal_lang::stdlib::*;

use signal_lang::ProcessDef;

use crate::design::{Design, DesignError};

/// The producer/consumer design of Section 5 (two endochronous components,
/// weakly hierarchic composition, isochronous by Theorem 1).
pub fn producer_consumer_design() -> Result<Design, DesignError> {
    Design::compose("main", [producer(), consumer()])
}

/// The `filter | merge` design of Section 1.
pub fn filter_merge_design() -> Result<Design, DesignError> {
    let filter = filter().instantiate("filter", &[("y", "y"), ("x", "x")]);
    let merge = merge().instantiate("merge", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")]);
    Design::compose("filter_merge", [filter, merge])
}

/// The loosely time-triggered architecture of Section 4.2: writer, the two
/// one-place buffers of the bus, and reader — four endochronous components,
/// each paced by its own clock, exactly as in the paper's four-tree
/// hierarchy figure.
pub fn ltta_design() -> Result<Design, DesignError> {
    let stage1 = buffer_pair().instantiate(
        "bus1",
        &[("y", "yw"), ("b", "bw"), ("yo", "ym"), ("bo", "bm")],
    );
    let stage2 = buffer_pair().instantiate(
        "bus2",
        &[("y", "ym"), ("b", "bm"), ("yo", "yr"), ("bo", "br")],
    );
    Design::compose("ltta", [ltta_writer(), stage1, stage2, ltta_reader()])
}

/// The one-place buffer of Section 3 as a single-component design.
pub fn buffer_design() -> Result<Design, DesignError> {
    Design::new(buffer())
}

/// A chain of `n` one-place buffers: stage `i` reads `p{i}` and writes
/// `p{i+1}` — the canonical GALS pipeline workload of the deployment
/// example, the conformance tests and benchmark E13.
pub fn buffer_pipeline(n: usize) -> Vec<ProcessDef> {
    (0..n)
        .map(|i| {
            buffer().instantiate(
                &format!("stage{i}"),
                &[
                    ("y", &format!("p{i}") as &str),
                    ("x", &format!("p{}", i + 1)),
                ],
            )
        })
        .collect()
}

/// The `n`-stage buffer pipeline composed into a design named `pipe{n}`.
pub fn buffer_pipeline_design(n: usize) -> Result<Design, DesignError> {
    Design::compose(format!("pipe{n}"), buffer_pipeline(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_designs_satisfy_the_static_criterion() {
        for design in [
            producer_consumer_design().unwrap(),
            filter_merge_design().unwrap(),
            ltta_design().unwrap(),
            buffer_design().unwrap(),
        ] {
            let v = design.verdict();
            assert!(v.components_endochronous, "{}:\n{v}", design.name());
            assert!(v.weakly_hierarchic, "{}:\n{v}", design.name());
            assert!(v.isochronous, "{}:\n{v}", design.name());
        }
    }

    #[test]
    fn only_the_buffer_is_globally_endochronous() {
        assert!(buffer_design().unwrap().verdict().endochronous);
        assert!(!producer_consumer_design().unwrap().verdict().endochronous);
        assert!(!ltta_design().unwrap().verdict().endochronous);
        assert!(!filter_merge_design().unwrap().verdict().endochronous);
    }

    #[test]
    fn the_ltta_has_one_root_per_device() {
        let v = ltta_design().unwrap().verdict();
        assert_eq!(v.roots, 4);
        assert_eq!(v.component_count, 4);
    }
}
