//! The paper's case studies, packaged as ready-made designs.
//!
//! The underlying Signal sources live in [`signal_lang::stdlib`]; this
//! module assembles them into [`Design`]s so that examples and benchmarks
//! can analyze, compile and execute them in one call.

pub use signal_lang::stdlib::*;

use signal_lang::ProcessDef;

use crate::design::{Design, DesignError};

/// The producer/consumer design of Section 5 (two endochronous components,
/// weakly hierarchic composition, isochronous by Theorem 1).
pub fn producer_consumer_design() -> Result<Design, DesignError> {
    Design::compose("main", [producer(), consumer()])
}

/// The `filter | merge` design of Section 1.
pub fn filter_merge_design() -> Result<Design, DesignError> {
    let filter = filter().instantiate("filter", &[("y", "y"), ("x", "x")]);
    let merge = merge().instantiate("merge", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")]);
    Design::compose("filter_merge", [filter, merge])
}

/// The loosely time-triggered architecture of Section 4.2: writer, the two
/// one-place buffers of the bus, and reader — four endochronous components,
/// each paced by its own clock, exactly as in the paper's four-tree
/// hierarchy figure.
pub fn ltta_design() -> Result<Design, DesignError> {
    let stage1 = buffer_pair().instantiate(
        "bus1",
        &[("y", "yw"), ("b", "bw"), ("yo", "ym"), ("bo", "bm")],
    );
    let stage2 = buffer_pair().instantiate(
        "bus2",
        &[("y", "ym"), ("b", "bm"), ("yo", "yr"), ("bo", "br")],
    );
    Design::compose("ltta", [ltta_writer(), stage1, stage2, ltta_reader()])
}

/// The one-place buffer of Section 3 as a single-component design.
pub fn buffer_design() -> Result<Design, DesignError> {
    Design::new(buffer())
}

/// A chain of `n` one-place buffers: stage `i` reads `p{i}` and writes
/// `p{i+1}` — the canonical GALS pipeline workload of the deployment
/// example, the conformance tests and benchmark E13.
pub fn buffer_pipeline(n: usize) -> Vec<ProcessDef> {
    (0..n)
        .map(|i| {
            buffer().instantiate(
                &format!("stage{i}"),
                &[
                    ("y", &format!("p{i}") as &str),
                    ("x", &format!("p{}", i + 1)),
                ],
            )
        })
        .collect()
}

/// The `n`-stage buffer pipeline composed into a design named `pipe{n}`.
pub fn buffer_pipeline_design(n: usize) -> Result<Design, DesignError> {
    Design::compose(format!("pipe{n}"), buffer_pipeline(n))
}

/// The multi-rate burst design: a [`burst_source`] emitting `x` on phases
/// 1–3 of its 6-phase ring feeds a [`burst_sink`] reading on phases 4–6,
/// under the [`burst_main`] interface abstraction that hides `x` and both
/// rings.  The global algebra of the composite proves nothing about the
/// edge (the phase registers are hidden), so the channel bound — backlog
/// 3, strictly beyond what the alternation-based rate classes can express
/// — comes entirely from the components' local k-periodic words.
pub fn multirate_design() -> Result<Design, DesignError> {
    Design::from_parts(burst_main(), [burst_source(), burst_sink()])
}

/// Two ordinary one-place buffers in a feedback loop: each waits on its
/// first read strictly before its first emission, so the loop can never
/// start turning.  Every edge still derives a finite bound — the
/// priming-liveness pass is what refuses this design statically
/// ([`gals_rt::DeployError::UnprimedCycle`]) instead of leaving it to the
/// pool scheduler's dynamic `Deadlocked` detection.
pub fn unprimed_loop_design() -> Result<Design, DesignError> {
    let b0 = buffer().instantiate("b0", &[("y", "p0"), ("x", "p1")]);
    let b1 = buffer().instantiate("b1", &[("y", "p1"), ("x", "p0")]);
    Design::compose("unprimed_loop", [b0, b1])
}

/// The same feedback loop with one buffer replaced by a [`primed_buffer`]
/// (its alternating state starts flipped): that component emits before it
/// reads, the loop is primed with a first token, and the design deploys
/// and turns forever — the minimal liveness contrast to
/// [`unprimed_loop_design`].
pub fn primed_loop_design() -> Result<Design, DesignError> {
    let b0 = buffer().instantiate("b0", &[("y", "p0"), ("x", "p1")]);
    let b1 = primed_buffer().instantiate("b1", &[("y", "p1"), ("x", "p0")]);
    Design::compose("primed_loop", [b0, b1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_designs_satisfy_the_static_criterion() {
        for design in [
            producer_consumer_design().unwrap(),
            filter_merge_design().unwrap(),
            ltta_design().unwrap(),
            buffer_design().unwrap(),
        ] {
            let v = design.verdict();
            assert!(v.components_endochronous, "{}:\n{v}", design.name());
            assert!(v.weakly_hierarchic, "{}:\n{v}", design.name());
            assert!(v.isochronous, "{}:\n{v}", design.name());
        }
    }

    #[test]
    fn only_the_buffer_is_globally_endochronous() {
        assert!(buffer_design().unwrap().verdict().endochronous);
        assert!(!producer_consumer_design().unwrap().verdict().endochronous);
        assert!(!ltta_design().unwrap().verdict().endochronous);
        assert!(!filter_merge_design().unwrap().verdict().endochronous);
    }

    #[test]
    fn the_ltta_has_one_root_per_device() {
        let v = ltta_design().unwrap().verdict();
        assert_eq!(v.roots, 4);
        assert_eq!(v.component_count, 4);
    }
}
