//! Aggregated verdicts of the compositional methodology.

use std::fmt;

/// The verdict of analyzing a design with the paper's criteria.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The design name.
    pub name: String,
    /// Number of components of the design.
    pub component_count: usize,
    /// Every component is compilable and hierarchic (hence endochronous).
    pub components_endochronous: bool,
    /// The composition is well-clocked (Definition 7).
    pub well_clocked: bool,
    /// The composition is acyclic (Definition 8).
    pub acyclic: bool,
    /// The composition is compilable (Definition 10).
    pub compilable: bool,
    /// The composition itself has a single-rooted hierarchy (Definition 11).
    pub endochronous: bool,
    /// The composition satisfies the static weak-hierarchy criterion
    /// (Definition 12).
    pub weakly_hierarchic: bool,
    /// By Theorem 1, the components are isochronous: their asynchronous
    /// composition has the same flows as the synchronous one.
    pub isochronous: bool,
    /// Number of roots of the composition's hierarchy.
    pub roots: usize,
}

impl Verdict {
    /// Returns `true` when the design can be compiled by the compositional
    /// scheme of Section 5 (separate compilation plus synthesized
    /// controllers).
    pub fn separately_compilable(&self) -> bool {
        self.weakly_hierarchic
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design {} ({} components)",
            self.name, self.component_count
        )?;
        writeln!(
            f,
            "  components endochronous : {}",
            self.components_endochronous
        )?;
        writeln!(f, "  well-clocked             : {}", self.well_clocked)?;
        writeln!(f, "  acyclic                  : {}", self.acyclic)?;
        writeln!(f, "  compilable               : {}", self.compilable)?;
        writeln!(f, "  endochronous             : {}", self.endochronous)?;
        writeln!(f, "  weakly hierarchic        : {}", self.weakly_hierarchic)?;
        writeln!(f, "  isochronous (Theorem 1)  : {}", self.isochronous)?;
        writeln!(f, "  hierarchy roots          : {}", self.roots)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Verdict {
        Verdict {
            name: "main".into(),
            component_count: 2,
            components_endochronous: true,
            well_clocked: true,
            acyclic: true,
            compilable: true,
            endochronous: false,
            weakly_hierarchic: true,
            isochronous: true,
            roots: 2,
        }
    }

    #[test]
    fn separate_compilation_follows_weak_hierarchy() {
        let mut v = sample();
        assert!(v.separately_compilable());
        v.weakly_hierarchic = false;
        assert!(!v.separately_compilable());
    }

    #[test]
    fn display_reports_every_field() {
        let text = sample().to_string();
        assert!(text.contains("design main (2 components)"));
        assert!(text.contains("weakly hierarchic        : true"));
        assert!(text.contains("hierarchy roots          : 2"));
    }
}
