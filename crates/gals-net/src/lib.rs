//! `gals-net` — distributed GALS: the "G" made literal.
//!
//! The paper's Theorem 1 says a verified (weakly hierarchic) design keeps
//! its synchronous semantics over *any* reliable order-preserving FIFO
//! medium.  `gals-rt` proved that in-process (threads, mpsc, lock-free
//! rings); this crate leaves the process:
//!
//! * **Transports** — a shared-file SPSC ring ([`shm`]: the `ring.rs`
//!   head/tail layout lifted onto a file two processes open) and a Unix
//!   domain socket backend ([`net`]), both minting endpoints behind the
//!   existing [`gals_rt::Transport`] trait so `Deployment`, the pool
//!   scheduler and tracing work unchanged.
//! * **A wire protocol** ([`wire`]) — length-prefixed token frames with a
//!   version handshake, explicit close-then-drain semantics (matching the
//!   ring), credit-based flow control whose per-edge window is exactly the
//!   derived [`gals_rt::CapacityAnalysis`] bound, and bounded-retry
//!   reconnect with idempotent resume via per-edge sequence numbers.
//! * **A partitioner** ([`partition`]) — splits a verified
//!   [`isochron::Design`] into per-process sub-deployments, replacing each
//!   cut edge with boundary components bridging to the transport, and a
//!   small [`runner`] that launches partitions and merges their flows and
//!   stats so the end-to-end isochrony conformance check still runs.
//!
//! The clock calculus pays for the networking: an edge the analysis cannot
//! bound (and no override covers) is refused at partition time, the same
//! refusal as `DeployError::UnboundedEdge` in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod net;
pub mod partition;
pub mod runner;
pub mod shm;
pub mod wire;

pub use net::{NetReceiver, NetSender, NetTransport, RetryPolicy};
pub use partition::{
    merge_flows, merged_conformance, plan, plan_with_overrides, CutEdge, LinkFactory,
    PartitionError, PartitionPlan,
};
pub use runner::{run_partition, MergedStats, PartitionReport, UdsLinks};
pub use shm::{FileRingReceiver, FileRingSender, ShmTransport};
pub use wire::{Frame, FrameReader, PROTOCOL_VERSION};

/// An error raised by the wire protocol or a cross-process transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An I/O operation on the medium failed (connect, read, write, file
    /// creation); the message carries the OS error text.
    Io(String),
    /// The peer sent bytes that do not decode as a protocol frame: an
    /// unknown frame kind, an impossible length, a truncated payload, a
    /// bad value tag.  A malformed peer is a typed outcome, not a panic.
    MalformedFrame(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version this endpoint implements.
        ours: u16,
        /// The version the peer announced in its `Hello`.
        theirs: u16,
    },
    /// The peer's handshake names a different edge signal than this
    /// endpoint serves — two partitions wired to the wrong socket.
    SignalMismatch {
        /// The signal this endpoint serves.
        expected: String,
        /// The signal the peer announced.
        got: String,
    },
    /// The peer's announced flow-control window disagrees with ours: both
    /// sides derive it from the same capacity analysis, so a mismatch
    /// means the partitions were built from different designs.
    WindowMismatch {
        /// The window this endpoint derived.
        ours: u64,
        /// The window the peer announced.
        theirs: u64,
    },
    /// The connection (and its bounded-retry reconnect budget) is
    /// exhausted: the peer is gone for good.
    PeerGone(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(message) => write!(f, "i/o failure: {message}"),
            NetError::MalformedFrame(message) => write!(f, "malformed frame: {message}"),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer announced v{theirs}"
            ),
            NetError::SignalMismatch { expected, got } => write!(
                f,
                "edge signal mismatch: this endpoint serves {expected}, peer announced {got}"
            ),
            NetError::WindowMismatch { ours, theirs } => write!(
                f,
                "flow-control window mismatch: ours {ours}, peer announced {theirs} \
                 (partitions built from different designs?)"
            ),
            NetError::PeerGone(message) => write!(f, "peer gone: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Io(err.to_string())
    }
}

impl From<NetError> for gals_rt::TransportError {
    fn from(err: NetError) -> Self {
        gals_rt::TransportError::new(err.to_string())
    }
}
