//! A Unix-domain-socket transport speaking the [`crate::wire`] protocol.
//!
//! One socket carries one edge.  The consumer side ([`NetReceiver`])
//! binds and accepts; the producer side ([`NetSender`]) dials and opens
//! with a `Hello` carrying the protocol version, the edge signal and the
//! flow-control window.  The receiver refuses a peer whose version,
//! signal or window disagrees — both sides derive the window from the
//! same capacity analysis, so a mismatch means the partitions were built
//! from different designs.
//!
//! **Credit flow control.**  The sender may have at most `window`
//! unconsumed tokens outstanding: `next_seq − consumed < window`, where
//! `consumed` is the receiver's cumulative *consumption* watermark
//! (advanced when the worker pops a token, not when the frame arrives,
//! and acknowledged with `Ack` frames).  Because delivery precedes
//! consumption, the receiver's queue occupancy never exceeds the window
//! — the socket inherits exactly the bound the clock calculus derived
//! for the edge, and the receiver enforces it against a buggy peer by
//! dropping any connection that overruns its credit.
//!
//! **Close-then-drain.**  A finished sender emits `Close` and the
//! receiver keeps serving its buffered tokens, reporting the channel
//! closed only once drained — the same contract as the in-process ring.
//!
//! **Reconnect and idempotent resume.**  Sequence numbers are assigned
//! once, when the application pushes a token.  If the connection drops,
//! the sender redials (bounded by its [`RetryPolicy`]); the fresh
//! handshake returns the receiver's `next_expected` watermark, the
//! sender discards retained tokens below it and retransmits the rest.  A
//! *restarted* sender that replays its stream from the beginning skips
//! every sequence number below the watermark locally, so the receiver
//! sees each token exactly once: no loss, no duplication.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io;
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gals_rt::{
    ChannelClosed, Endpoints, TokenRx, TokenTx, Transport, TransportError, TryRecvError,
    TrySendError,
};
use signal_lang::Value;

use crate::wire::{Frame, FrameReader, PROTOCOL_VERSION};
use crate::NetError;

/// How a [`NetSender`] behaves when its connection fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts before the peer is declared gone for good.
    pub max_attempts: u32,
    /// Base delay between attempts; attempt `n` sleeps `n × backoff`.
    pub backoff: Duration,
    /// How long the *initial* dial waits for the receiver to start
    /// listening — partitions are separate processes with independent
    /// startup latencies.
    pub connect_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            backoff: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

struct RxState {
    queue: VecDeque<Value>,
    /// Next sequence number expected — everything below it was delivered.
    delivered: u64,
    /// Cumulative tokens popped by the consuming worker.
    consumed: u64,
    /// Write half of the live connection, for `Ack` frames.
    ack_stream: Option<UnixStream>,
    /// `Close` observed (or a fatal fault): drain, then report closed.
    closed: bool,
    fault: Option<NetError>,
    shutdown: bool,
}

struct RxShared {
    state: Mutex<RxState>,
    ready: Condvar,
}

enum ConnExit {
    /// Clean `Close`: stop accepting, the edge is finished.
    Finished,
    /// Connection lost mid-stream: go back to `accept` for a reconnect.
    Lost,
    /// Handshake refused: the fault is recorded, stop accepting.
    Refused,
}

/// The consuming endpoint of a socket edge.  Binds the socket path,
/// accepts (re)connections on a background thread and hands tokens to
/// the worker through the ordinary [`TokenRx`] interface.
pub struct NetReceiver {
    shared: Arc<RxShared>,
    path: PathBuf,
    acceptor: Option<JoinHandle<()>>,
}

impl NetReceiver {
    /// Binds `path` and starts accepting senders for `signal` with the
    /// given flow-control `window` (the edge's derived capacity bound).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the socket cannot be bound.
    pub fn bind(path: &Path, signal: &str, window: u64) -> Result<Self, NetError> {
        // A stale socket file from a crashed previous run refuses binds.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let shared = Arc::new(RxShared {
            state: Mutex::new(RxState {
                queue: VecDeque::new(),
                delivered: 0,
                consumed: 0,
                ack_stream: None,
                closed: false,
                fault: None,
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_signal = signal.to_string();
        let acceptor = std::thread::spawn(move || {
            accept_loop(&listener, &thread_shared, &thread_signal, window);
        });
        Ok(NetReceiver {
            shared,
            path: path.to_path_buf(),
            acceptor: Some(acceptor),
        })
    }

    /// The typed fault recorded by the acceptor, if any — a version,
    /// signal or window mismatch, or a malformed peer.
    pub fn fault(&self) -> Option<NetError> {
        self.shared
            .state
            .lock()
            .expect("receiver state")
            .fault
            .clone()
    }
}

fn accept_loop(listener: &UnixListener, shared: &Arc<RxShared>, signal: &str, window: u64) {
    loop {
        if shared.state.lock().expect("receiver state").shutdown {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if shared.state.lock().expect("receiver state").shutdown {
            return;
        }
        match serve_connection(stream, shared, signal, window) {
            ConnExit::Lost => continue,
            ConnExit::Finished | ConnExit::Refused => return,
        }
    }
}

/// Runs one sender connection: handshake, then `Data`/`Close` frames.
fn serve_connection(
    mut stream: UnixStream,
    shared: &Arc<RxShared>,
    signal: &str,
    window: u64,
) -> ConnExit {
    let mut reader = FrameReader::new();
    let hello = match reader.read_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        Ok(None) | Err(_) => return ConnExit::Lost,
    };
    let refusal = match hello {
        Frame::Hello {
            version,
            signal: theirs,
            window: their_window,
            ..
        } => {
            if version != PROTOCOL_VERSION {
                Some(NetError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                })
            } else if theirs != signal {
                Some(NetError::SignalMismatch {
                    expected: signal.to_string(),
                    got: theirs,
                })
            } else if their_window != window {
                Some(NetError::WindowMismatch {
                    ours: window,
                    theirs: their_window,
                })
            } else {
                None
            }
        }
        other => Some(NetError::MalformedFrame(format!(
            "expected Hello to open the connection, got {other:?}"
        ))),
    };
    if let Some(fault) = refusal {
        let mut st = shared.state.lock().expect("receiver state");
        st.fault.get_or_insert(fault);
        st.closed = true;
        shared.ready.notify_all();
        return ConnExit::Refused;
    }
    {
        let mut st = shared.state.lock().expect("receiver state");
        let ack = Frame::HelloAck {
            next_expected: st.delivered,
            consumed: st.consumed,
        };
        if ack.write_to(&mut stream).is_err() {
            return ConnExit::Lost;
        }
        st.ack_stream = stream.try_clone().ok();
    }
    loop {
        let frame = match reader.read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => {
                shared.state.lock().expect("receiver state").ack_stream = None;
                return ConnExit::Lost;
            }
        };
        match frame {
            Frame::Data { seq, value } => {
                let mut st = shared.state.lock().expect("receiver state");
                if seq < st.delivered {
                    // A retransmission of something already delivered.
                    continue;
                }
                if seq > st.delivered || st.queue.len() as u64 >= window {
                    // A sequence gap (the stream lost tokens?) or a
                    // credit overrun: drop the connection and let the
                    // sender redo the handshake from our watermark.
                    st.ack_stream = None;
                    return ConnExit::Lost;
                }
                st.queue.push_back(value);
                st.delivered += 1;
                shared.ready.notify_all();
            }
            Frame::Close { final_seq } => {
                let mut st = shared.state.lock().expect("receiver state");
                let delivered = st.delivered;
                if delivered != final_seq {
                    st.fault.get_or_insert(NetError::MalformedFrame(format!(
                        "Close watermark {final_seq} but {delivered} tokens delivered"
                    )));
                }
                st.closed = true;
                st.ack_stream = None;
                shared.ready.notify_all();
                return ConnExit::Finished;
            }
            // `Ack` and further handshake frames have no business
            // arriving here; a confused peer loses its connection.
            _ => {
                shared.state.lock().expect("receiver state").ack_stream = None;
                return ConnExit::Lost;
            }
        }
    }
}

impl TokenRx for NetReceiver {
    fn recv(&self) -> Result<Value, ChannelClosed> {
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Closed) => return Err(ChannelClosed),
                Err(TryRecvError::Empty) => {
                    let st = self.shared.state.lock().expect("receiver state");
                    if st.queue.is_empty() && !st.closed {
                        // Bounded nap: re-check even if a notify races us.
                        let _ = self
                            .shared
                            .ready
                            .wait_timeout(st, Duration::from_millis(50))
                            .expect("receiver state");
                    }
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Value, TryRecvError> {
        let mut st = self.shared.state.lock().expect("receiver state");
        if let Some(value) = st.queue.pop_front() {
            st.consumed += 1;
            let ack = Frame::Ack {
                consumed: st.consumed,
            };
            // Credit is advisory for us (the sender blocks on it); if the
            // ack cannot be written the reconnect handshake will carry
            // the watermark instead.
            let lost = match st.ack_stream.as_mut() {
                Some(stream) => ack.write_to(stream).is_err(),
                None => false,
            };
            if lost {
                st.ack_stream = None;
            }
            return Ok(value);
        }
        if st.closed {
            return Err(TryRecvError::Closed);
        }
        Err(TryRecvError::Empty)
    }

    fn occupancy(&self) -> Option<usize> {
        Some(
            self.shared
                .state
                .lock()
                .expect("receiver state")
                .queue
                .len(),
        )
    }
}

impl Drop for NetReceiver {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("receiver state");
            st.shutdown = true;
            st.closed = true;
            if let Some(stream) = st.ack_stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            shared_notify(&self.shared);
        }
        // Wake the acceptor if it is parked in `accept`.
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn shared_notify(shared: &RxShared) {
    shared.ready.notify_all();
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

struct TxState {
    /// Receiver's cumulative consumption watermark (from `Ack` frames).
    consumed: u64,
    /// The live connection died; the next send redials.
    broken: bool,
}

struct TxShared {
    state: Mutex<TxState>,
    credit: Condvar,
    /// Bumped on every successful (re)connect so a stale ack-reader
    /// thread cannot mark the *new* connection broken.
    generation: AtomicU64,
}

/// The producing endpoint of a socket edge.  Dials the receiver, opens
/// with the protocol handshake and enforces the credit window on every
/// send; a lost connection is redialed (bounded by the [`RetryPolicy`])
/// with retained unacknowledged tokens retransmitted from the
/// receiver's watermark.
pub struct NetSender {
    path: PathBuf,
    signal: String,
    window: u64,
    retry: RetryPolicy,
    shared: Arc<TxShared>,
    conn: RefCell<Option<UnixStream>>,
    next_seq: Cell<u64>,
    /// Sequence numbers below this were delivered before this sender
    /// existed (a restarted process): skipped locally, never re-sent.
    resume_floor: Cell<u64>,
    /// Sent but not yet consumed tokens, retained for retransmission.
    /// Never longer than `window` — that is what the credit check means.
    unacked: RefCell<VecDeque<(u64, Value)>>,
    /// Gone for good: the retry budget is spent or `abandon` was called.
    defunct: Cell<bool>,
}

impl NetSender {
    /// Dials the receiver at `path` and performs the opening handshake
    /// for `signal` with the given flow-control `window`.
    ///
    /// # Errors
    ///
    /// [`NetError::PeerGone`] when no receiver appears within the
    /// policy's connect timeout or the handshake is refused; I/O and
    /// malformed-frame errors from the handshake itself.
    pub fn connect(
        path: &Path,
        signal: &str,
        window: u64,
        retry: RetryPolicy,
    ) -> Result<Self, NetError> {
        let sender = NetSender {
            path: path.to_path_buf(),
            signal: signal.to_string(),
            window,
            retry,
            shared: Arc::new(TxShared {
                state: Mutex::new(TxState {
                    consumed: 0,
                    broken: true,
                }),
                credit: Condvar::new(),
                generation: AtomicU64::new(0),
            }),
            conn: RefCell::new(None),
            next_seq: Cell::new(0),
            resume_floor: Cell::new(0),
            unacked: RefCell::new(VecDeque::new()),
            defunct: Cell::new(false),
        };
        sender.establish()?;
        Ok(sender)
    }

    /// Dials, handshakes, retransmits retained tokens.  On success the
    /// connection is live and the ack-reader thread is running.
    fn establish(&self) -> Result<(), NetError> {
        let deadline = Instant::now() + self.retry.connect_timeout;
        let mut stream = loop {
            match UnixStream::connect(&self.path) {
                Ok(stream) => break stream,
                Err(err) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::PeerGone(format!(
                            "no receiver at {}: {err}",
                            self.path.display()
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            signal: self.signal.clone(),
            window: self.window,
            start_seq: self.next_seq.get(),
        };
        hello.write_to(&mut stream)?;
        let mut reader = FrameReader::new();
        let (next_expected, consumed) = match reader.read_frame(&mut stream)? {
            Some(Frame::HelloAck {
                next_expected,
                consumed,
            }) => (next_expected, consumed),
            Some(other) => {
                return Err(NetError::MalformedFrame(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
            None => {
                return Err(NetError::PeerGone(
                    "receiver refused the handshake".to_string(),
                ))
            }
        };
        // Everything below the watermark was delivered in a previous
        // life: drop retained copies, and if the watermark is ahead of
        // our own counter we are a restarted sender replaying its stream
        // — skip those sequence numbers locally as they come.
        let mut unacked = self.unacked.borrow_mut();
        while unacked.front().is_some_and(|(seq, _)| *seq < next_expected) {
            unacked.pop_front();
        }
        if next_expected > self.next_seq.get() {
            self.resume_floor.set(next_expected);
        }
        // Retransmit the survivors in order (idempotent: the receiver
        // ignores anything its watermark already covers).
        for (seq, value) in unacked.iter() {
            Frame::Data {
                seq: *seq,
                value: *value,
            }
            .write_to(&mut stream)?;
        }
        drop(unacked);
        let generation = self.shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut st = self.shared.state.lock().expect("sender state");
            st.consumed = st.consumed.max(consumed);
            st.broken = false;
        }
        let reader_stream = stream.try_clone()?;
        let shared = Arc::clone(&self.shared);
        std::thread::spawn(move || ack_reader(reader_stream, &shared, generation));
        *self.conn.borrow_mut() = Some(stream);
        Ok(())
    }

    /// Redials within the retry budget.  Failure is permanent: the
    /// sender becomes defunct and every later send reports closed.
    fn reestablish(&self) -> Result<(), NetError> {
        let mut last = NetError::PeerGone("no reconnect attempted".to_string());
        for attempt in 1..=self.retry.max_attempts {
            std::thread::sleep(self.retry.backoff * attempt);
            match self.establish() {
                Ok(()) => return Ok(()),
                Err(err) => last = err,
            }
        }
        self.defunct.set(true);
        Err(NetError::PeerGone(format!(
            "retry budget ({} attempts) spent: {last}",
            self.retry.max_attempts
        )))
    }

    fn connection_is_broken(&self) -> bool {
        self.shared.state.lock().expect("sender state").broken
    }

    /// Severs the connection *without* the closing handshake — the wire
    /// equivalent of `SIGKILL`.  A test hook: the receiver observes a
    /// mid-stream loss, and a fresh sender (or process) can resume from
    /// the receiver's watermark.
    pub fn abandon(&self) {
        self.defunct.set(true);
        if let Some(stream) = self.conn.borrow_mut().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

fn ack_reader(mut stream: UnixStream, shared: &Arc<TxShared>, generation: u64) {
    let mut reader = FrameReader::new();
    loop {
        match reader.read_frame(&mut stream) {
            Ok(Some(Frame::Ack { consumed })) => {
                let mut st = shared.state.lock().expect("sender state");
                st.consumed = st.consumed.max(consumed);
                shared.credit.notify_all();
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                // Only the *current* connection's reader may declare it
                // broken; a stale thread draining a dead socket must not
                // poison its successor.
                if shared.generation.load(Ordering::SeqCst) == generation {
                    let mut st = shared.state.lock().expect("sender state");
                    st.broken = true;
                    shared.credit.notify_all();
                    drop(st);
                }
                return;
            }
        }
    }
}

impl TokenTx for NetSender {
    fn send(&self, token: Value) -> Result<(), ChannelClosed> {
        loop {
            match self.try_send(token) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed) => return Err(ChannelClosed),
                Err(TrySendError::Full) => {
                    let st = self.shared.state.lock().expect("sender state");
                    if !st.broken && self.next_seq.get() - st.consumed >= self.window {
                        // Bounded nap: woken by the next Ack, or re-check.
                        let _ = self
                            .shared
                            .credit
                            .wait_timeout(st, Duration::from_millis(50))
                            .expect("sender state");
                    }
                }
            }
        }
    }

    fn try_send(&self, token: Value) -> Result<(), TrySendError> {
        if self.defunct.get() {
            return Err(TrySendError::Closed);
        }
        let seq = self.next_seq.get();
        if seq < self.resume_floor.get() {
            // Replayed prefix of a restarted stream: the receiver already
            // delivered this token in a previous life.
            self.next_seq.set(seq + 1);
            return Ok(());
        }
        if self.conn.borrow().is_none() || self.connection_is_broken() {
            self.conn.borrow_mut().take();
            if self.reestablish().is_err() {
                return Err(TrySendError::Closed);
            }
            // A fresh watermark may swallow this very token.
            if seq < self.resume_floor.get() {
                self.next_seq.set(seq + 1);
                return Ok(());
            }
        }
        {
            let st = self.shared.state.lock().expect("sender state");
            if seq - st.consumed >= self.window {
                return Err(TrySendError::Full);
            }
            // Retained copies the receiver has consumed are dead weight.
            let mut unacked = self.unacked.borrow_mut();
            while unacked.front().is_some_and(|(s, _)| *s < st.consumed) {
                unacked.pop_front();
            }
        }
        let frame = Frame::Data { seq, value: token };
        let wrote = match self.conn.borrow_mut().as_mut() {
            Some(stream) => frame.write_to(stream).is_ok(),
            None => false,
        };
        if !wrote {
            // The connection died under us; reconnect (which retransmits
            // the retained window) and try this token on the new stream.
            self.conn.borrow_mut().take();
            if self.reestablish().is_err() {
                return Err(TrySendError::Closed);
            }
            if seq < self.resume_floor.get() {
                self.next_seq.set(seq + 1);
                return Ok(());
            }
            let retried = match self.conn.borrow_mut().as_mut() {
                Some(stream) => frame.write_to(stream).is_ok(),
                None => false,
            };
            if !retried {
                self.defunct.set(true);
                return Err(TrySendError::Closed);
            }
        }
        self.unacked.borrow_mut().push_back((seq, token));
        self.next_seq.set(seq + 1);
        Ok(())
    }

    fn occupancy(&self) -> Option<usize> {
        let st = self.shared.state.lock().expect("sender state");
        let in_flight = self.next_seq.get().saturating_sub(st.consumed);
        Some(
            usize::try_from(in_flight)
                .unwrap_or(usize::MAX)
                .min(self.window as usize),
        )
    }
}

impl Drop for NetSender {
    fn drop(&mut self) {
        if self.defunct.get() {
            return;
        }
        if let Some(stream) = self.conn.borrow_mut().as_mut() {
            let close = Frame::Close {
                final_seq: self.next_seq.get(),
            };
            let _ = close.write_to(stream);
        }
        // Dropping the stream EOFs the ack-reader thread, which exits.
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A [`Transport`] minting connected socket pairs: every channel of a
/// deployment becomes a Unix domain socket in the transport's directory,
/// its flow-control window set to the channel's resolved capacity.  Used
/// in-process it is the protocol witness — same deployment, every token
/// framed, sequenced and credit-controlled; across processes the two
/// halves are [`NetReceiver::bind`] and [`NetSender::connect`].
pub struct NetTransport {
    dir: PathBuf,
    counter: AtomicU64,
    retry: RetryPolicy,
}

impl NetTransport {
    /// The backend name reported in topologies and statistics.
    pub const NAME: &'static str = "uds";

    /// A transport minting sockets in a fresh per-process subdirectory
    /// of the system temp directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new() -> io::Result<Self> {
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let n = INSTANCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gals-uds-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&dir)?;
        Ok(NetTransport {
            dir,
            counter: AtomicU64::new(0),
            retry: RetryPolicy::default(),
        })
    }

    /// A transport minting sockets inside an existing directory.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        NetTransport {
            dir: dir.into(),
            counter: AtomicU64::new(0),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the reconnect policy used by minted senders.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The directory the socket files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Transport for NetTransport {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn open(&self, capacity: usize) -> Result<Endpoints, TransportError> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("edge-{n}.sock"));
        let signal = format!("edge-{n}");
        let window = capacity as u64;
        let rx = NetReceiver::bind(&path, &signal, window).map_err(TransportError::from)?;
        let tx =
            NetSender::connect(&path, &signal, window, self.retry).map_err(TransportError::from)?;
        Ok((Box::new(tx), Box::new(rx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sock(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gals-net-test-{}-{}-{tag}.sock",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn tokens_round_trip_in_order() {
        let path = temp_sock("roundtrip");
        let rx = NetReceiver::bind(&path, "x", 4).unwrap();
        let tx = NetSender::connect(&path, "x", 4, RetryPolicy::default()).unwrap();
        for i in 0..50 {
            tx.send(Value::Int(i)).unwrap();
            assert_eq!(rx.recv(), Ok(Value::Int(i)));
        }
        drop(tx);
        assert_eq!(rx.recv(), Err(ChannelClosed));
    }

    #[test]
    fn the_credit_window_limits_tokens_in_flight() {
        let path = temp_sock("credit");
        let rx = NetReceiver::bind(&path, "x", 2).unwrap();
        let tx = NetSender::connect(&path, "x", 2, RetryPolicy::default()).unwrap();
        tx.send(Value::Int(0)).unwrap();
        tx.send(Value::Int(1)).unwrap();
        // Two unconsumed tokens: the window is spent.
        assert_eq!(tx.try_send(Value::Int(2)), Err(TrySendError::Full));
        assert!(rx.occupancy().unwrap() <= 2);
        assert_eq!(rx.recv(), Ok(Value::Int(0)));
        // Consumption restores credit (the ack needs a moment to travel).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match tx.try_send(Value::Int(2)) {
                Ok(()) => break,
                Err(TrySendError::Full) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("expected credit to return, got {other:?}"),
            }
        }
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(rx.recv(), Ok(Value::Int(2)));
    }

    #[test]
    fn a_mismatched_handshake_is_refused_with_a_typed_fault() {
        let path = temp_sock("mismatch");
        let rx = NetReceiver::bind(&path, "x", 4).unwrap();
        // Window disagrees: the receiver refuses, the sender's retry
        // budget drains against a peer that keeps hanging up.
        let retry = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            connect_timeout: Duration::from_secs(2),
        };
        let err = match NetSender::connect(&path, "x", 3, retry) {
            Err(err) => err,
            Ok(_) => panic!("a mismatched window must be refused"),
        };
        assert!(matches!(err, NetError::PeerGone(_)), "got {err:?}");
        assert_eq!(
            rx.fault(),
            Some(NetError::WindowMismatch { ours: 4, theirs: 3 })
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn an_abandoned_sender_is_resumed_without_loss_or_duplication() {
        let path = temp_sock("resume");
        let rx = NetReceiver::bind(&path, "x", 3).unwrap();
        let tx = NetSender::connect(&path, "x", 3, RetryPolicy::default()).unwrap();
        tx.send(Value::Int(0)).unwrap();
        tx.send(Value::Int(1)).unwrap();
        assert_eq!(rx.recv(), Ok(Value::Int(0)));
        // The wire's SIGKILL: no Close frame, connection just dies.
        tx.abandon();
        assert_eq!(tx.try_send(Value::Int(9)), Err(TrySendError::Closed));
        drop(tx);
        // A restarted producer replays its stream from the beginning; the
        // consumer drains concurrently (the credit window is smaller than
        // the stream, so the producer must block on it mid-way).
        let tx2 = NetSender::connect(&path, "x", 3, RetryPolicy::default()).unwrap();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                tx2.send(Value::Int(i)).unwrap();
            }
        });
        // Exactly the unseen suffix arrives: 1 was delivered before the
        // crash (never consumed), 0 is skipped at the resume floor.
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (1..5).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn the_transport_mints_working_pairs() {
        let transport = NetTransport::new().unwrap();
        let (tx, rx) = transport.open(2).unwrap();
        tx.send(Value::Bool(true)).unwrap();
        assert_eq!(rx.recv(), Ok(Value::Bool(true)));
        assert_eq!(transport.name(), "uds");
        drop(tx);
        assert_eq!(rx.recv(), Err(ChannelClosed));
        let _ = std::fs::remove_dir_all(transport.dir());
    }
}
