//! Splitting a verified design into per-process sub-deployments.
//!
//! A [`PartitionPlan`] assigns every component of an [`isochron::Design`]
//! to a process.  Each edge whose producer and consumer land in different
//! processes is *cut*: the producer's partition gains a boundary machine
//! that forwards the signal's tokens into a cross-process link, and the
//! consumer's partition gains one that replays them from the link as a
//! local producer.  Everything else — channel wiring, the scheduler, the
//! per-component stats, tracing — is the ordinary [`gals_rt::Deployment`]
//! machinery, run once per process.
//!
//! Theorem 1 is what makes this sound: a verified (weakly hierarchic)
//! design keeps its synchronous semantics over any reliable
//! order-preserving FIFO medium, so cutting an edge and re-routing it
//! through a socket or a shared file cannot change the flows.  The
//! conformance half lives in [`merge_flows`] / [`merged_conformance`]:
//! the partitions' observed flows are merged (cross-checking the
//! producer- and consumer-side copies of every cut signal) and compared
//! against the synchronous reference replay of the *whole* design.
//!
//! The clock calculus pays for the networking: every cut edge's
//! flow-control window is exactly the derived capacity bound of the
//! edge, and an edge the analysis cannot bound (with no explicit
//! override) is refused at planning time — the cross-process twin of
//! `DeployError::UnboundedEdge`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use gals_rt::{
    replay_reference, CapacityAnalysis, ConformanceReport, Deployment, StepFault, StepMachine,
    TokenRx, TokenTx, TransportError,
};
use isochron::Design;
use signal_lang::{Name, Value};
use sim::Flows;

/// An error raised while planning or assembling a partitioned deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The design fails the static weak-hierarchy criterion: Theorem 1
    /// guarantees nothing about its flows, so no medium may carry them.
    NotVerified(String),
    /// The component-to-process assignment is ill-formed (wrong length,
    /// or a process that owns no component).
    BadAssignment(String),
    /// A cut edge has neither a derived capacity bound nor an explicit
    /// override: no finite flow-control window exists for it.
    UnboundedEdge(Name),
    /// The capacity analysis itself failed (e.g. an unprimed cycle).
    Analysis(String),
    /// Creating a cross-process link failed.
    Transport(String),
    /// Building or running a partition's deployment failed.
    Deploy(String),
    /// The producer- and consumer-side copies of a cut signal disagree:
    /// the medium lost or reordered tokens.
    MergeMismatch {
        /// The cut signal whose two observations disagree.
        signal: Name,
        /// What disagreed, rendered for the report.
        detail: String,
    },
    /// A partition report file could not be encoded or decoded.
    Report(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NotVerified(name) => {
                write!(f, "design {name} is not verified; nothing bounds its flows")
            }
            PartitionError::BadAssignment(detail) => write!(f, "bad assignment: {detail}"),
            PartitionError::UnboundedEdge(signal) => write!(
                f,
                "cut edge {signal} has no derived capacity bound and no override: \
                 no finite flow-control window exists"
            ),
            PartitionError::Analysis(detail) => write!(f, "capacity analysis failed: {detail}"),
            PartitionError::Transport(detail) => write!(f, "transport failure: {detail}"),
            PartitionError::Deploy(detail) => write!(f, "deployment failure: {detail}"),
            PartitionError::MergeMismatch { signal, detail } => write!(
                f,
                "cut signal {signal} observed differently on its two sides: {detail}"
            ),
            PartitionError::Report(detail) => write!(f, "partition report: {detail}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<TransportError> for PartitionError {
    fn from(err: TransportError) -> Self {
        PartitionError::Transport(err.to_string())
    }
}

impl From<gals_rt::DeployError> for PartitionError {
    fn from(err: gals_rt::DeployError) -> Self {
        PartitionError::Deploy(err.to_string())
    }
}

/// One design edge whose producer and consumer live in different
/// processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutEdge {
    /// The signal carried across the process boundary.
    pub signal: Name,
    /// The process owning the producing component.
    pub producer: usize,
    /// The process owning the consuming component(s).
    pub consumer: usize,
    /// The flow-control window of the link — the edge's derived capacity
    /// bound (or its explicit override).
    pub window: usize,
    /// Where the window came from, for reports.
    pub provenance: String,
}

/// Mints the two halves of a cross-process link for a cut edge.  The
/// [`crate::runner::UdsLinks`] implementation binds/dials Unix domain
/// sockets; tests can substitute in-process media.
pub trait LinkFactory {
    /// The producing half of the edge's link (dials, in socket terms).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when the link cannot be established.
    fn sender(&self, edge: &CutEdge) -> Result<Box<dyn TokenTx>, TransportError>;

    /// The consuming half of the edge's link (binds, in socket terms).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when the link cannot be established.
    fn receiver(&self, edge: &CutEdge) -> Result<Box<dyn TokenRx>, TransportError>;
}

/// How a verified design splits across processes: the assignment, the
/// cut edges with their windows, and the capacity analysis the partition
/// deployments re-use for their local channels.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    processes: usize,
    assignment: Vec<usize>,
    cuts: Vec<CutEdge>,
    analysis: CapacityAnalysis,
    paced: BTreeSet<Name>,
}

/// Plans the partitioning of `design` under `assignment` (one process id
/// per component, in component order); every cut edge's window is its
/// derived capacity bound.
///
/// # Errors
///
/// [`PartitionError::NotVerified`] for an unverified design,
/// [`PartitionError::BadAssignment`] for a malformed assignment,
/// [`PartitionError::UnboundedEdge`] when a cut edge has no derived
/// bound, [`PartitionError::Analysis`] when the capacity analysis fails.
pub fn plan(design: &Design, assignment: &[usize]) -> Result<PartitionPlan, PartitionError> {
    plan_with_overrides(design, assignment, &BTreeMap::new())
}

/// [`plan`], with explicit per-signal window overrides taking precedence
/// over the derived bounds — the same override-beats-derivation rule the
/// in-process channel policy applies.
///
/// # Errors
///
/// As [`plan`]; an edge covered by an override cannot be unbounded.
pub fn plan_with_overrides(
    design: &Design,
    assignment: &[usize],
    overrides: &BTreeMap<Name, usize>,
) -> Result<PartitionPlan, PartitionError> {
    if !design.is_weakly_hierarchic() {
        return Err(PartitionError::NotVerified(design.name().to_string()));
    }
    let components = design.components();
    if assignment.len() != components.len() {
        return Err(PartitionError::BadAssignment(format!(
            "{} components, {} assignments",
            components.len(),
            assignment.len()
        )));
    }
    let processes = assignment.iter().copied().max().unwrap_or(0) + 1;
    for p in 0..processes {
        if !assignment.contains(&p) {
            return Err(PartitionError::BadAssignment(format!(
                "process {p} owns no component"
            )));
        }
    }
    let analysis = design
        .capacity_analysis()
        .map_err(|e| PartitionError::Analysis(e.to_string()))?;
    let mut producer_of: BTreeMap<Name, usize> = BTreeMap::new();
    for (i, component) in components.iter().enumerate() {
        for output in component.kernel().outputs() {
            producer_of.insert(output.clone(), i);
        }
    }
    let mut cuts: Vec<CutEdge> = Vec::new();
    for (j, component) in components.iter().enumerate() {
        for input in component.kernel().inputs() {
            let Some(&i) = producer_of.get(input) else {
                continue; // environment input, fed locally
            };
            if assignment[i] == assignment[j] {
                continue; // stays an in-process channel
            }
            let (producer, consumer) = (assignment[i], assignment[j]);
            if cuts
                .iter()
                .any(|c| c.signal == *input && c.producer == producer && c.consumer == consumer)
            {
                continue; // several consumers in one process share a link
            }
            let (window, provenance) = match overrides.get(input) {
                Some(&window) => (window, "explicit override".to_string()),
                None => match analysis.bound_for(input) {
                    Some(derived) => (derived.bound, derived.provenance.clone()),
                    None => return Err(PartitionError::UnboundedEdge(input.clone())),
                },
            };
            cuts.push(CutEdge {
                signal: input.clone(),
                producer,
                consumer,
                window,
                provenance,
            });
        }
    }
    // Global paced marks: environment inputs present at every activation
    // of their component pace the synchronous reference (the rule of
    // `Design::deploy_unchecked`, computed over the *whole* design so a
    // cut signal — produced by a remote component — is never paced).
    let produced: BTreeSet<Name> = producer_of.keys().cloned().collect();
    let mut paced = BTreeSet::new();
    for component in components {
        let program = component.step_program();
        for input in &program.inputs {
            if matches!(
                program.clock_of(input.as_str()),
                Some(codegen::ClockCode::Always)
            ) && !produced.contains(input)
            {
                paced.insert(input.clone());
            }
        }
    }
    Ok(PartitionPlan {
        processes,
        assignment: assignment.to_vec(),
        cuts,
        analysis,
        paced,
    })
}

impl PartitionPlan {
    /// How many processes the plan spans.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// The component-to-process assignment, in component order.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The edges crossing process boundaries, with their windows.
    pub fn cuts(&self) -> &[CutEdge] {
        &self.cuts
    }

    /// The capacity analysis the plan was derived from.
    pub fn analysis(&self) -> &CapacityAnalysis {
        &self.analysis
    }

    /// The environment inputs consumed by `process`'s components — the
    /// feeds its partition needs.
    pub fn env_inputs(&self, design: &Design, process: usize) -> BTreeSet<Name> {
        let produced: BTreeSet<&Name> = design
            .components()
            .iter()
            .flat_map(|c| c.kernel().outputs())
            .collect();
        let mut inputs = BTreeSet::new();
        for (i, component) in design.components().iter().enumerate() {
            if self.assignment[i] != process {
                continue;
            }
            for input in component.kernel().inputs() {
                if !produced.contains(input) {
                    inputs.insert(input.clone());
                }
            }
        }
        inputs
    }

    /// Assembles the deployment of one partition: the process's
    /// components, a boundary source per incoming cut edge, a boundary
    /// forwarder per outgoing one, local channels sized by the derived
    /// analysis, references registered and paced marks applied.
    ///
    /// All incoming links are opened (bound) *before* any outgoing link
    /// dials, so two partitions dialing each other cannot deadlock in
    /// the handshake.  Partitions run components on dedicated threads
    /// (the default mode): boundary machines block inside their step on
    /// the medium, which a pooled scheduler must not do.
    ///
    /// # Errors
    ///
    /// [`PartitionError::BadAssignment`] for an out-of-range process;
    /// [`PartitionError::Transport`] when a link cannot be established.
    pub fn deployment(
        &self,
        design: &Design,
        process: usize,
        links: &dyn LinkFactory,
    ) -> Result<Deployment, PartitionError> {
        self.deployment_with(design, process, links, gals_rt::MachineKind::default())
    }

    /// [`deployment`](PartitionPlan::deployment) with an explicit
    /// execution strategy for the component machines (the boundary
    /// sources/forwarders are medium adapters either way).
    ///
    /// # Errors
    ///
    /// [`PartitionError::BadAssignment`] for an out-of-range process;
    /// [`PartitionError::Transport`] when a link cannot be established.
    pub fn deployment_with(
        &self,
        design: &Design,
        process: usize,
        links: &dyn LinkFactory,
        kind: gals_rt::MachineKind,
    ) -> Result<Deployment, PartitionError> {
        if process >= self.processes {
            return Err(PartitionError::BadAssignment(format!(
                "process {process} out of range (plan spans {})",
                self.processes
            )));
        }
        let mut deployment = Deployment::new();
        deployment.set_capacity_analysis(&self.analysis);
        // Incoming edges first: bind every listener before dialing out.
        for cut in self.cuts.iter().filter(|c| c.consumer == process) {
            let rx = links.receiver(cut)?;
            deployment.add_machine(Box::new(BoundarySrc::new(cut.signal.clone(), rx)));
        }
        for (i, component) in design.components().iter().enumerate() {
            if self.assignment[i] != process {
                continue;
            }
            let program = component.step_program();
            for input in &program.inputs {
                if self.paced.contains(input) {
                    deployment.mark_paced(input.clone());
                }
            }
            deployment.add_reference(component.reference());
            deployment.add_machine(codegen::machine_of(kind, program));
        }
        for cut in self.cuts.iter().filter(|c| c.producer == process) {
            let tx = links.sender(cut)?;
            deployment.add_machine(Box::new(BoundaryTx::new(cut.signal.clone(), tx)));
        }
        deployment.set_machine_kind(kind);
        Ok(deployment)
    }
}

/// Merges per-partition observed flows into one global flow map.
///
/// A cut signal is observed twice — as the producing component's output
/// in one partition and as the boundary source's replay in the other —
/// and the two copies must agree token for token (the shorter may be a
/// prefix of the longer when a partition stopped first): any
/// disagreement means the medium lost, duplicated or reordered tokens.
///
/// # Errors
///
/// [`PartitionError::MergeMismatch`] when the two observations of a cut
/// signal disagree.
pub fn merge_flows(parts: &[Flows]) -> Result<Flows, PartitionError> {
    let mut merged: Flows = BTreeMap::new();
    for flows in parts {
        for (signal, values) in flows {
            match merged.get_mut(signal) {
                None => {
                    merged.insert(signal.clone(), values.clone());
                }
                Some(existing) => {
                    let n = existing.len().min(values.len());
                    if existing[..n] != values[..n] {
                        return Err(PartitionError::MergeMismatch {
                            signal: signal.clone(),
                            detail: format!(
                                "prefixes diverge within the first {n} tokens \
                                 ({existing:?} vs {values:?})"
                            ),
                        });
                    }
                    if values.len() > existing.len() {
                        *existing = values.clone();
                    }
                }
            }
        }
    }
    Ok(merged)
}

/// Replays the synchronous reference of the *whole* design against the
/// merged cross-process flows — the end-to-end isochrony conformance
/// check of a distributed run (Theorem 1's conclusion, observed over a
/// real inter-process medium).
pub fn merged_conformance(
    design: &Design,
    feeds: &BTreeMap<Name, Vec<Value>>,
    merged: &Flows,
) -> ConformanceReport {
    let components: Vec<_> = design.components().iter().map(|c| c.reference()).collect();
    let produced: BTreeSet<Name> = design
        .components()
        .iter()
        .flat_map(|c| c.kernel().outputs().cloned())
        .collect();
    let mut paced = BTreeSet::new();
    for component in design.components() {
        let program = component.step_program();
        for input in &program.inputs {
            if matches!(
                program.clock_of(input.as_str()),
                Some(codegen::ClockCode::Always)
            ) && !produced.contains(input)
            {
                paced.insert(input.clone());
            }
        }
    }
    let tokens: usize = feeds.values().map(Vec::len).sum();
    let budget = (tokens + 16) * 16 * components.len().max(1);
    let reference = replay_reference(&components, feeds, &paced, budget);
    ConformanceReport::compare(&reference, merged)
}

/// The outgoing boundary of a partition: consumes a cut signal from its
/// local channel (fed by the worker loop like any input) and forwards
/// every token into the cross-process link.  Blocks inside the step when
/// the link's credit window is spent — the derived bound applying its
/// back-pressure across the process boundary.
struct BoundaryTx {
    name: String,
    signal: Name,
    queue: VecDeque<Value>,
    tx: Box<dyn TokenTx>,
}

impl BoundaryTx {
    fn new(signal: Name, tx: Box<dyn TokenTx>) -> Self {
        BoundaryTx {
            name: format!("net-tx:{signal}"),
            signal,
            queue: VecDeque::new(),
            tx,
        }
    }
}

impl StepMachine for BoundaryTx {
    fn machine_name(&self) -> &str {
        &self.name
    }

    fn input_signals(&self) -> Vec<Name> {
        vec![self.signal.clone()]
    }

    fn output_signals(&self) -> Vec<Name> {
        Vec::new()
    }

    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push_back(value);
    }

    fn try_step(&mut self) -> Result<(), StepFault> {
        let Some(value) = self.queue.pop_front() else {
            return Err(StepFault::NeedInput(self.signal.clone()));
        };
        self.tx.send(value).map_err(|_| {
            StepFault::Fault(format!(
                "remote consumer of {} is gone (link closed)",
                self.signal
            ))
        })
    }

    fn produced(&self, _signal: &str) -> &[Value] {
        &[]
    }
}

/// The incoming boundary of a partition: replays a cut signal from the
/// cross-process link as a local producer.  When the link closes (the
/// remote producer finished and the buffer drained — close-then-drain),
/// the machine reports `NeedInput` on a signal it has no local source
/// for, which the worker loop resolves as the clean
/// environment-exhausted stop.
struct BoundarySrc {
    name: String,
    signal: Name,
    rx: Box<dyn TokenRx>,
    flow: Vec<Value>,
    closed: bool,
}

impl BoundarySrc {
    fn new(signal: Name, rx: Box<dyn TokenRx>) -> Self {
        BoundarySrc {
            name: format!("net-src:{signal}"),
            signal,
            rx,
            flow: Vec::new(),
            closed: false,
        }
    }
}

impl StepMachine for BoundarySrc {
    fn machine_name(&self) -> &str {
        &self.name
    }

    fn input_signals(&self) -> Vec<Name> {
        Vec::new()
    }

    fn output_signals(&self) -> Vec<Name> {
        vec![self.signal.clone()]
    }

    fn feed_value(&mut self, _signal: &str, _value: Value) {}

    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.closed {
            return Err(StepFault::NeedInput(self.signal.clone()));
        }
        match self.rx.recv() {
            Ok(value) => {
                self.flow.push(value);
                Ok(())
            }
            Err(_) => {
                self.closed = true;
                Err(StepFault::NeedInput(self.signal.clone()))
            }
        }
    }

    fn produced(&self, _signal: &str) -> &[Value] {
        &self.flow
    }
}
