//! Launching partitions and merging what they observed.
//!
//! One process calls [`run_partition`] per partition (typically each call
//! lives in its own OS process — see `examples/distributed.rs` for the
//! fork-style layout): the partition's deployment is assembled from the
//! shared [`PartitionPlan`], fed its slice of the environment, run, and
//! its observations written out as a [`PartitionReport`] — a small
//! line-based file a parent process reads back without any serialization
//! dependency.  [`MergedStats::merge`] then folds the reports into one
//! cross-process view: merged flows (cross-checked on every cut signal),
//! per-process reaction counters, and per-process epoch offsets so the
//! partitions' wall-clock timelines can be laid on one axis.
//!
//! When `GALS_TRACE_DIR` is set, every partition run is traced and its
//! event timeline written to `<dir>/partition-<p>.trace.json` (Chrome
//! `about:tracing` format, like the in-process stress lane).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use gals_rt::{TokenRx, TokenTx, TransportError};
use isochron::Design;
use signal_lang::{Name, Value};
use sim::Flows;

use crate::net::{NetReceiver, NetSender, RetryPolicy};
use crate::partition::{CutEdge, LinkFactory, PartitionError, PartitionPlan};

/// A [`LinkFactory`] wiring every cut edge through a Unix domain socket
/// in a shared directory: the consumer binds
/// `<dir>/<signal>-<p>to<c>.sock`, the producer dials it, and the link's
/// flow-control window is the edge's derived bound.
pub struct UdsLinks {
    dir: PathBuf,
    retry: RetryPolicy,
}

impl UdsLinks {
    /// Links living in `dir` (shared between the partition processes).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        UdsLinks {
            dir: dir.into(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the reconnect policy used by minted senders.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The socket path of a cut edge — stable across processes, so both
    /// sides of the link find each other by plan alone.
    pub fn socket_path(&self, edge: &CutEdge) -> PathBuf {
        self.dir.join(format!(
            "{}-{}to{}.sock",
            edge.signal, edge.producer, edge.consumer
        ))
    }
}

impl LinkFactory for UdsLinks {
    fn sender(&self, edge: &CutEdge) -> Result<Box<dyn TokenTx>, TransportError> {
        let path = self.socket_path(edge);
        let tx = NetSender::connect(&path, edge.signal.as_str(), edge.window as u64, self.retry)
            .map_err(TransportError::from)?;
        Ok(Box::new(tx))
    }

    fn receiver(&self, edge: &CutEdge) -> Result<Box<dyn TokenRx>, TransportError> {
        let path = self.socket_path(edge);
        let rx = NetReceiver::bind(&path, edge.signal.as_str(), edge.window as u64)
            .map_err(TransportError::from)?;
        Ok(Box::new(rx))
    }
}

/// What one partition observed: its flows, its per-component reaction
/// counters, and its wall-clock epoch — everything the parent needs to
/// merge the distributed run back into one view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// The partition's process id in the plan.
    pub process: usize,
    /// Microseconds since the Unix epoch when the partition's run
    /// started — the per-process epoch the merge offsets against.
    pub started_micros: u64,
    /// Wall-clock duration of the run, in microseconds.
    pub elapsed_micros: u64,
    /// Per-component `(name, completed reactions)`, in deployment order
    /// (boundary machines included).
    pub components: Vec<(String, u64)>,
    /// The flows observed by this partition — its components' outputs
    /// plus the boundary sources' replays of incoming cut signals.
    pub flows: Flows,
}

fn encode_value(value: Value) -> String {
    match value {
        Value::Bool(b) => format!("b{}", u8::from(b)),
        Value::Int(i) => format!("i{i}"),
    }
}

fn decode_value(text: &str) -> Result<Value, PartitionError> {
    let bad = || PartitionError::Report(format!("unreadable value {text:?}"));
    match text.as_bytes().first() {
        Some(b'b') => match &text[1..] {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            _ => Err(bad()),
        },
        Some(b'i') => text[1..].parse().map(Value::Int).map_err(|_| bad()),
        _ => Err(bad()),
    }
}

impl PartitionReport {
    /// Renders the report as its line-based file format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("process {}\n", self.process));
        out.push_str(&format!("started {}\n", self.started_micros));
        out.push_str(&format!("elapsed {}\n", self.elapsed_micros));
        for (name, reactions) in &self.components {
            out.push_str(&format!("component {name} {reactions}\n"));
        }
        for (signal, values) in &self.flows {
            out.push_str(&format!("flow {signal}"));
            for value in values {
                out.push(' ');
                out.push_str(&encode_value(*value));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the line-based file format back into a report.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Report`] for any line that does not decode.
    pub fn decode(text: &str) -> Result<Self, PartitionError> {
        let mut report = PartitionReport {
            process: 0,
            started_micros: 0,
            elapsed_micros: 0,
            components: Vec::new(),
            flows: BTreeMap::new(),
        };
        let field = |line: &str, what: &str| -> Result<u64, PartitionError> {
            line.parse()
                .map_err(|_| PartitionError::Report(format!("unreadable {what}: {line:?}")))
        };
        for line in text.lines() {
            let mut words = line.split_whitespace();
            match words.next() {
                Some("process") => {
                    report.process = field(words.next().unwrap_or(""), "process id")? as usize;
                }
                Some("started") => {
                    report.started_micros = field(words.next().unwrap_or(""), "epoch")?;
                }
                Some("elapsed") => {
                    report.elapsed_micros = field(words.next().unwrap_or(""), "elapsed")?;
                }
                Some("component") => {
                    let name = words
                        .next()
                        .ok_or_else(|| PartitionError::Report("component without name".into()))?;
                    let reactions = field(words.next().unwrap_or(""), "reaction count")?;
                    report.components.push((name.to_string(), reactions));
                }
                Some("flow") => {
                    let signal = words
                        .next()
                        .ok_or_else(|| PartitionError::Report("flow without signal".into()))?;
                    let values: Result<Vec<Value>, _> = words.map(decode_value).collect();
                    report.flows.insert(Name::from(signal), values?);
                }
                Some(other) => {
                    return Err(PartitionError::Report(format!(
                        "unknown line kind {other:?}"
                    )));
                }
                None => {}
            }
        }
        Ok(report)
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Report`] on I/O failure.
    pub fn write(&self, path: &Path) -> Result<(), PartitionError> {
        std::fs::write(path, self.encode())
            .map_err(|e| PartitionError::Report(format!("writing {}: {e}", path.display())))
    }

    /// Reads a report back from `path`.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Report`] on I/O or parse failure.
    pub fn read(path: &Path) -> Result<Self, PartitionError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PartitionError::Report(format!("reading {}: {e}", path.display())))?;
        PartitionReport::decode(&text)
    }
}

/// Runs one partition of the plan to completion: assembles its
/// deployment over `links`, applies its slice of `feeds` (the
/// environment inputs its components consume), runs it and reports the
/// observed flows and counters.  With `GALS_TRACE_DIR` set the run is
/// traced and the timeline written to
/// `<dir>/partition-<process>.trace.json`.
///
/// # Errors
///
/// Propagates planning, transport and deployment errors.
pub fn run_partition(
    design: &Design,
    plan: &PartitionPlan,
    process: usize,
    links: &dyn LinkFactory,
    feeds: &BTreeMap<Name, Vec<Value>>,
) -> Result<PartitionReport, PartitionError> {
    let mut deployment = plan.deployment(design, process, links)?;
    let wanted = plan.env_inputs(design, process);
    for (signal, values) in feeds {
        if wanted.contains(signal) {
            deployment.feed(signal.clone(), values.iter().copied());
        }
    }
    let trace_dir = std::env::var_os("GALS_TRACE_DIR").map(PathBuf::from);
    deployment.set_tracing(trace_dir.is_some());
    let started_micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64;
    let outcome = deployment.run()?;
    if let (Some(dir), Some(trace)) = (trace_dir, outcome.trace()) {
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("partition-{process}.trace.json"));
        if let Ok(mut file) = std::fs::File::create(&path) {
            let _ = file.write_all(trace.to_chrome_json().as_bytes());
        }
    }
    let stats = outcome.stats();
    Ok(PartitionReport {
        process,
        started_micros,
        elapsed_micros: stats.elapsed.as_micros() as u64,
        components: stats
            .components
            .iter()
            .map(|c| (c.name.clone(), c.reactions))
            .collect(),
        flows: outcome.flows().clone(),
    })
}

/// The partitions' reports folded into one cross-process view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedStats {
    /// The reports, sorted by process id.
    pub reports: Vec<PartitionReport>,
    /// Per-process start offset (microseconds) relative to the earliest
    /// partition's epoch — the handshake-style normalization that lays
    /// the per-process timelines on one axis.
    pub epoch_offsets_micros: Vec<u64>,
    /// The union of the partitions' flows, cross-checked on cut signals.
    pub flows: Flows,
}

impl MergedStats {
    /// Merges the partitions' reports: sorts by process, offsets every
    /// epoch against the earliest one, and merges the flows
    /// ([`crate::merge_flows`] — any disagreement on a cut signal is a
    /// loss/duplication detector firing).
    ///
    /// # Errors
    ///
    /// [`PartitionError::Report`] when `reports` is empty;
    /// [`PartitionError::MergeMismatch`] when two partitions disagree on
    /// a cut signal's tokens.
    pub fn merge(mut reports: Vec<PartitionReport>) -> Result<Self, PartitionError> {
        if reports.is_empty() {
            return Err(PartitionError::Report(
                "no partition reports to merge".into(),
            ));
        }
        reports.sort_by_key(|r| r.process);
        let origin = reports
            .iter()
            .map(|r| r.started_micros)
            .min()
            .unwrap_or_default();
        let epoch_offsets_micros = reports
            .iter()
            .map(|r| r.started_micros.saturating_sub(origin))
            .collect();
        let flows = crate::partition::merge_flows(
            &reports.iter().map(|r| r.flows.clone()).collect::<Vec<_>>(),
        )?;
        Ok(MergedStats {
            reports,
            epoch_offsets_micros,
            flows,
        })
    }

    /// Total completed reactions across every partition.
    pub fn total_reactions(&self) -> u64 {
        self.reports
            .iter()
            .flat_map(|r| r.components.iter().map(|(_, n)| n))
            .sum()
    }
}

impl fmt::Display for MergedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "distributed run over {} processes:", self.reports.len())?;
        for (report, offset) in self.reports.iter().zip(&self.epoch_offsets_micros) {
            writeln!(
                f,
                "  process {}: started +{}us, ran {}us",
                report.process, offset, report.elapsed_micros
            )?;
            for (name, reactions) in &report.components {
                writeln!(f, "    {name}: {reactions} reactions")?;
            }
        }
        write!(f, "  {} reactions total", self.total_reactions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_report_survives_its_file_format() {
        let mut flows: Flows = BTreeMap::new();
        flows.insert(
            Name::from("x"),
            vec![Value::Bool(true), Value::Bool(false), Value::Int(-42)],
        );
        flows.insert(Name::from("empty"), Vec::new());
        let report = PartitionReport {
            process: 1,
            started_micros: 1_000_000,
            elapsed_micros: 250,
            components: vec![("stage0".into(), 8), ("net-tx:x".into(), 8)],
            flows,
        };
        let decoded = PartitionReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn merged_stats_offset_epochs_against_the_earliest() {
        let mk = |process: usize, started: u64| PartitionReport {
            process,
            started_micros: started,
            elapsed_micros: 10,
            components: vec![(format!("c{process}"), 4)],
            flows: BTreeMap::new(),
        };
        let merged = MergedStats::merge(vec![mk(1, 500), mk(0, 200)]).unwrap();
        assert_eq!(merged.epoch_offsets_micros, vec![0, 300]);
        assert_eq!(merged.reports[0].process, 0);
        assert_eq!(merged.total_reactions(), 8);
    }

    #[test]
    fn a_flow_disagreement_is_a_merge_mismatch() {
        let mut a: Flows = BTreeMap::new();
        a.insert(Name::from("x"), vec![Value::Int(1), Value::Int(2)]);
        let mut b: Flows = BTreeMap::new();
        b.insert(Name::from("x"), vec![Value::Int(1), Value::Int(9)]);
        let err = crate::partition::merge_flows(&[a, b]).unwrap_err();
        assert!(matches!(err, PartitionError::MergeMismatch { .. }), "{err}");
    }
}
