//! A shared-memory transport: the SPSC ring lifted onto a file.
//!
//! `gals-rt`'s in-process ring is index-based — two monotonic head/tail
//! counters over a fixed slot array, each slot a `(tag, bits)` word pair.
//! That layout needs nothing but loads and stores on shared memory, so
//! this module lifts it verbatim onto a *file* two processes open: the
//! producer publishes a token by writing the slot payload and then
//! advancing the head word; the consumer pops by reading the slot and
//! advancing the tail word.
//!
//! The workspace forbids `unsafe` and vendors no `libc`, so the file is
//! shared through `pread`/`pwrite` ([`std::os::unix::fs::FileExt`])
//! rather than `mmap`.  On Linux both go through the same page cache, so
//! the two processes observe one coherent byte array — the same
//! coherence domain an `mmap` of the file would give — at the price of a
//! syscall per access instead of a load.  The ordering argument is the
//! ring's: the payload `pwrite` returns (the bytes are in the shared
//! page) before the head-advancing `pwrite` starts, so a consumer that
//! observes the new head also observes the payload.  8-byte counter
//! reads are not formally atomic across processes, but the counters are
//! monotonic and single-writer, so a torn read can only look stale —
//! which fails safe into a retry.
//!
//! Close semantics match the in-process ring exactly: each side owns a
//! closed flag in the header; a closed producer is observed only after
//! the buffer is drained (close-then-drain), a closed consumer fails the
//! producer's sends immediately.
//!
//! [`ShmTransport`] mints connected pairs over fresh files in a
//! directory, so an ordinary in-process `Deployment` can run every edge
//! through the file ring (the medium witness); [`FileRingSender::open`] /
//! [`FileRingReceiver::open`] attach the two halves from *different*
//! processes to one ring created with [`create`].

use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use gals_rt::{
    ChannelClosed, Endpoints, TokenRx, TokenTx, Transport, TransportError, TryRecvError,
    TrySendError,
};
use signal_lang::Value;

/// "GALSRING" — written last during [`create`], so an opener that sees it
/// knows every other header word is already in place.
const MAGIC: u64 = 0x4741_4C53_5249_4E47;
const LAYOUT_VERSION: u64 = 1;

const OFF_MAGIC: u64 = 0;
const OFF_VERSION: u64 = 8;
const OFF_CAPACITY: u64 = 16;
const OFF_HEAD: u64 = 24;
const OFF_TAIL: u64 = 32;
const OFF_TX_CLOSED: u64 = 40;
const OFF_RX_CLOSED: u64 = 48;
const HEADER_LEN: u64 = 64;
const SLOT_LEN: u64 = 16;

const TAG_BOOL: u64 = 0;
const TAG_INT: u64 = 1;

/// How long an opener waits for the creator to finish writing the magic.
const OPEN_TIMEOUT: Duration = Duration::from_secs(10);

fn read_word(file: &File, offset: u64) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    file.read_exact_at(&mut buf, offset)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_word(file: &File, offset: u64, value: u64) -> io::Result<()> {
    file.write_all_at(&value.to_le_bytes(), offset)
}

fn encode(value: Value) -> (u64, u64) {
    match value {
        Value::Bool(b) => (TAG_BOOL, u64::from(b)),
        Value::Int(i) => (TAG_INT, i as u64),
    }
}

fn decode(tag: u64, bits: u64) -> io::Result<Value> {
    match tag {
        TAG_BOOL => Ok(Value::Bool(bits != 0)),
        TAG_INT => Ok(Value::Int(bits as i64)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("ring slot with unknown tag {other}"),
        )),
    }
}

/// The spin → yield → sleep wait of the in-process ring, syscall-flavored:
/// a blocked endpoint burns a few retries, yields, then naps briefly so a
/// slow peer process (or one not even started yet) costs microseconds,
/// not a core.
struct Backoff {
    rounds: u32,
}

impl Backoff {
    fn new() -> Self {
        Backoff { rounds: 0 }
    }

    fn wait(&mut self) {
        self.rounds += 1;
        if self.rounds < 32 {
            std::hint::spin_loop();
        } else if self.rounds < 64 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Initializes a fresh ring file at `path` with `capacity` slots.
///
/// The header is written with the magic word *last*, so a concurrent
/// [`FileRingSender::open`] / [`FileRingReceiver::open`] polling for the
/// magic never observes a half-initialized ring.
///
/// # Errors
///
/// Propagates file-creation I/O errors.
///
/// # Panics
///
/// Panics on `capacity == 0`, like the in-process ring — the deployment
/// layer rejects zero capacities long before a transport sees them.
pub fn create(path: &Path, capacity: usize) -> io::Result<()> {
    assert!(capacity > 0, "a bounded channel needs at least one slot");
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    let len = HEADER_LEN + SLOT_LEN * capacity as u64;
    file.set_len(len)?;
    write_word(&file, OFF_VERSION, LAYOUT_VERSION)?;
    write_word(&file, OFF_CAPACITY, capacity as u64)?;
    file.sync_data()?;
    write_word(&file, OFF_MAGIC, MAGIC)?;
    file.sync_data()
}

/// Opens `path` and waits (bounded) for the creator's magic word.
fn open_ring(path: &Path) -> io::Result<(File, usize)> {
    let deadline = std::time::Instant::now() + OPEN_TIMEOUT;
    let mut backoff = Backoff::new();
    loop {
        match OpenOptions::new().read(true).write(true).open(path) {
            Ok(file) => {
                if read_word(&file, OFF_MAGIC)? == MAGIC {
                    let version = read_word(&file, OFF_VERSION)?;
                    if version != LAYOUT_VERSION {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("ring layout v{version}, this build speaks v{LAYOUT_VERSION}"),
                        ));
                    }
                    let capacity = read_word(&file, OFF_CAPACITY)? as usize;
                    if capacity == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "ring file declares capacity 0",
                        ));
                    }
                    return Ok((file, capacity));
                }
            }
            Err(err) if err.kind() == io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
        if std::time::Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no initialized ring appeared at {}", path.display()),
            ));
        }
        backoff.wait();
    }
}

/// The producing half of a file ring.  Dropping it closes the channel:
/// the consumer drains the buffer, then observes the close.
///
/// The endpoint traits take `&self` (the in-process ring keeps its
/// cursors in atomics), so the local counter caches live in [`Cell`]s —
/// the endpoint is `Send` and owned by one worker at a time, never
/// shared, and the genuinely shared state is the file itself.
pub struct FileRingSender {
    file: File,
    capacity: usize,
    /// Local copy of the head counter (this side is its only writer).
    head: Cell<u64>,
    /// Cached tail observation; refreshed only when the ring looks full.
    tail_cache: Cell<u64>,
    closed_hint: Cell<bool>,
}

impl FileRingSender {
    /// Attaches the producer side to a ring created with [`create`],
    /// waiting (bounded) for the creator to finish initialization.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; times out when no initialized ring appears.
    pub fn open(path: &Path) -> io::Result<Self> {
        let (file, capacity) = open_ring(path)?;
        let head = read_word(&file, OFF_HEAD)?;
        let tail_cache = read_word(&file, OFF_TAIL)?;
        Ok(FileRingSender {
            file,
            capacity,
            head: Cell::new(head),
            tail_cache: Cell::new(tail_cache),
            closed_hint: Cell::new(false),
        })
    }

    fn slot_offset(&self, position: u64) -> u64 {
        HEADER_LEN + SLOT_LEN * (position % self.capacity as u64)
    }
}

impl TokenTx for FileRingSender {
    fn send(&self, token: Value) -> Result<(), ChannelClosed> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_send(token) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed) => return Err(ChannelClosed),
                Err(TrySendError::Full) => backoff.wait(),
            }
        }
    }

    fn try_send(&self, token: Value) -> Result<(), TrySendError> {
        // An I/O error on the shared file (deleted underneath us, device
        // gone) is indistinguishable from a vanished peer: report closed.
        if self.closed_hint.get() {
            return Err(TrySendError::Closed);
        }
        if read_word(&self.file, OFF_RX_CLOSED).map_err(|_| TrySendError::Closed)? != 0 {
            self.closed_hint.set(true);
            return Err(TrySendError::Closed);
        }
        let head = self.head.get();
        if head - self.tail_cache.get() >= self.capacity as u64 {
            let tail = read_word(&self.file, OFF_TAIL).map_err(|_| TrySendError::Closed)?;
            self.tail_cache.set(tail);
            if head - tail >= self.capacity as u64 {
                return Err(TrySendError::Full);
            }
        }
        let (tag, bits) = encode(token);
        let offset = self.slot_offset(head);
        write_word(&self.file, offset, tag).map_err(|_| TrySendError::Closed)?;
        write_word(&self.file, offset + 8, bits).map_err(|_| TrySendError::Closed)?;
        // Publish: the payload pwrites returned before this one starts,
        // so a consumer observing the new head observes the payload.
        write_word(&self.file, OFF_HEAD, head + 1).map_err(|_| TrySendError::Closed)?;
        self.head.set(head + 1);
        Ok(())
    }

    fn occupancy(&self) -> Option<usize> {
        let tail = read_word(&self.file, OFF_TAIL).ok()?;
        let occupied = self.head.get().saturating_sub(tail);
        Some(
            usize::try_from(occupied)
                .unwrap_or(usize::MAX)
                .min(self.capacity),
        )
    }
}

impl Drop for FileRingSender {
    fn drop(&mut self) {
        let _ = write_word(&self.file, OFF_TX_CLOSED, 1);
    }
}

/// The consuming half of a file ring.  Dropping it closes the channel:
/// the producer's next send observes the close.
pub struct FileRingReceiver {
    file: File,
    capacity: usize,
    /// Local copy of the tail counter (this side is its only writer).
    tail: Cell<u64>,
    /// Cached head observation; refreshed only when the ring looks empty.
    head_cache: Cell<u64>,
}

impl FileRingReceiver {
    /// Attaches the consumer side to a ring created with [`create`],
    /// waiting (bounded) for the creator to finish initialization.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; times out when no initialized ring appears.
    pub fn open(path: &Path) -> io::Result<Self> {
        let (file, capacity) = open_ring(path)?;
        let tail = read_word(&file, OFF_TAIL)?;
        let head_cache = read_word(&file, OFF_HEAD)?;
        Ok(FileRingReceiver {
            file,
            capacity,
            tail: Cell::new(tail),
            head_cache: Cell::new(head_cache),
        })
    }

    fn slot_offset(&self, position: u64) -> u64 {
        HEADER_LEN + SLOT_LEN * (position % self.capacity as u64)
    }
}

impl TokenRx for FileRingReceiver {
    fn recv(&self) -> Result<Value, ChannelClosed> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Closed) => return Err(ChannelClosed),
                Err(TryRecvError::Empty) => backoff.wait(),
            }
        }
    }

    fn try_recv(&self) -> Result<Value, TryRecvError> {
        let tail = self.tail.get();
        if tail >= self.head_cache.get() {
            let head = read_word(&self.file, OFF_HEAD).map_err(|_| TryRecvError::Closed)?;
            self.head_cache.set(head);
            if tail >= head {
                // Close-then-drain: the producer's close is only observed
                // on an *empty* buffer, exactly like the in-process ring.
                let closed =
                    read_word(&self.file, OFF_TX_CLOSED).map_err(|_| TryRecvError::Closed)? != 0;
                if !closed {
                    return Err(TryRecvError::Empty);
                }
                // One more head refresh: the producer may have pushed
                // between our head read and its close.
                let head = read_word(&self.file, OFF_HEAD).map_err(|_| TryRecvError::Closed)?;
                self.head_cache.set(head);
                if tail >= head {
                    return Err(TryRecvError::Closed);
                }
            }
        }
        let offset = self.slot_offset(tail);
        let tag = read_word(&self.file, offset).map_err(|_| TryRecvError::Closed)?;
        let bits = read_word(&self.file, offset + 8).map_err(|_| TryRecvError::Closed)?;
        let value = decode(tag, bits).map_err(|_| TryRecvError::Closed)?;
        self.tail.set(tail + 1);
        write_word(&self.file, OFF_TAIL, tail + 1).map_err(|_| TryRecvError::Closed)?;
        Ok(value)
    }

    fn occupancy(&self) -> Option<usize> {
        let head = read_word(&self.file, OFF_HEAD).ok()?;
        let occupied = head.saturating_sub(self.tail.get());
        Some(
            usize::try_from(occupied)
                .unwrap_or(usize::MAX)
                .min(self.capacity),
        )
    }
}

impl Drop for FileRingReceiver {
    fn drop(&mut self) {
        let _ = write_word(&self.file, OFF_RX_CLOSED, 1);
    }
}

/// A [`Transport`] minting file-ring endpoint pairs: every channel of a
/// deployment becomes a shared file in the transport's directory.  Used
/// in-process it is the medium witness — the same deployment, scheduler
/// and conformance machinery, with every token round-tripping through
/// the process-shareable layout; across processes the two halves are
/// attached with [`FileRingSender::open`] / [`FileRingReceiver::open`].
pub struct ShmTransport {
    dir: PathBuf,
    counter: AtomicU64,
}

impl ShmTransport {
    /// The backend name reported in topologies and statistics.
    pub const NAME: &'static str = "shm-file-ring";

    /// A transport minting rings in a fresh per-process subdirectory of
    /// the system temp directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new() -> io::Result<Self> {
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let n = INSTANCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gals-shm-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&dir)?;
        Ok(ShmTransport {
            dir,
            counter: AtomicU64::new(0),
        })
    }

    /// A transport minting rings inside an existing directory.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        ShmTransport {
            dir: dir.into(),
            counter: AtomicU64::new(0),
        }
    }

    /// The directory the ring files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Transport for ShmTransport {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn open(&self, capacity: usize) -> Result<Endpoints, TransportError> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("edge-{n}.ring"));
        create(&path, capacity)
            .map_err(|e| TransportError::new(format!("creating {}: {e}", path.display())))?;
        let tx = FileRingSender::open(&path)
            .map_err(|e| TransportError::new(format!("opening {}: {e}", path.display())))?;
        let rx = FileRingReceiver::open(&path)
            .map_err(|e| TransportError::new(format!("opening {}: {e}", path.display())))?;
        Ok((Box::new(tx), Box::new(rx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_ring(capacity: usize) -> (PathBuf, FileRingSender, FileRingReceiver) {
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "gals-shm-test-{}-{}.ring",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        create(&path, capacity).unwrap();
        let tx = FileRingSender::open(&path).unwrap();
        let rx = FileRingReceiver::open(&path).unwrap();
        (path, tx, rx)
    }

    #[test]
    fn tokens_round_trip_in_order() {
        let (path, tx, rx) = temp_ring(2);
        tx.send(Value::Int(1)).unwrap();
        tx.send(Value::Bool(true)).unwrap();
        assert_eq!(tx.try_send(Value::Int(3)), Err(TrySendError::Full));
        assert_eq!(rx.try_recv(), Ok(Value::Int(1)));
        assert_eq!(rx.try_recv(), Ok(Value::Bool(true)));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(Value::Int(-7)).unwrap();
        assert_eq!(rx.recv(), Ok(Value::Int(-7)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn close_then_drain_like_the_in_process_ring() {
        let (path, tx, rx) = temp_ring(4);
        tx.send(Value::Int(1)).unwrap();
        tx.send(Value::Int(2)).unwrap();
        drop(tx);
        // Buffered tokens survive the close; only the drained buffer
        // reports it.
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(rx.try_recv(), Ok(Value::Int(2)));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(rx.recv(), Err(ChannelClosed));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn a_dropped_receiver_fails_the_sender() {
        let (path, tx, rx) = temp_ring(1);
        drop(rx);
        assert_eq!(tx.try_send(Value::Int(1)), Err(TrySendError::Closed));
        assert_eq!(tx.send(Value::Int(1)), Err(ChannelClosed));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn occupancy_is_witnessed_within_capacity() {
        let (path, tx, rx) = temp_ring(2);
        assert_eq!(tx.occupancy(), Some(0));
        tx.send(Value::Int(1)).unwrap();
        assert_eq!(tx.occupancy(), Some(1));
        assert_eq!(rx.occupancy(), Some(1));
        tx.send(Value::Int(2)).unwrap();
        assert_eq!(rx.occupancy(), Some(2));
        rx.recv().unwrap();
        assert_eq!(rx.occupancy(), Some(1));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn two_threads_stream_through_one_file() {
        let (path, tx, rx) = temp_ring(3);
        let producer = std::thread::spawn(move || {
            for i in 0..200 {
                tx.send(Value::Int(i)).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..200 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(got, (0..200).map(Value::Int).collect::<Vec<_>>());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn the_transport_mints_working_pairs() {
        let transport = ShmTransport::new().unwrap();
        let (tx, rx) = transport.open(2).unwrap();
        tx.send(Value::Bool(false)).unwrap();
        assert_eq!(rx.recv(), Ok(Value::Bool(false)));
        assert_eq!(transport.name(), "shm-file-ring");
        let _ = std::fs::remove_dir_all(transport.dir());
    }
}
