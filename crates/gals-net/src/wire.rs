//! The wire protocol: length-prefixed token frames.
//!
//! Every frame is `[len: u32 LE][kind: u8][payload]` where `len` counts
//! the kind byte plus the payload.  Values travel as a tag byte plus an
//! 8-byte little-endian word — the same `(tag, bits)` encoding the
//! in-process ring uses for its slots (`0` = bool, `1` = int).
//!
//! The vocabulary is deliberately small:
//!
//! * [`Frame::Hello`] / [`Frame::HelloAck`] — the version handshake.  The
//!   sender announces the protocol version, the edge signal, its
//!   flow-control window (the derived capacity bound) and the sequence
//!   number it will start from; the receiver answers with the next
//!   sequence number it expects (`next_expected`, for idempotent resume —
//!   a reconnecting or restarted sender skips everything below it) and
//!   the cumulative count of tokens its worker has already consumed
//!   (`consumed`, priming the sender's credit ledger).
//! * [`Frame::Data`] — one token, tagged with its per-edge sequence
//!   number.  Sequence numbers are assigned once per token, so a
//!   retransmission after a reconnect is recognizably the *same* token
//!   and duplicates are filtered by sequence comparison.
//! * [`Frame::Ack`] — cumulative consumption: the receiver's worker has
//!   consumed every token below `consumed`.  Credits = window − (sent −
//!   consumed): the sender never has more than `window` tokens
//!   in flight, so the receive queue is bounded by the derived capacity.
//! * [`Frame::Close`] — explicit close-then-drain, matching the ring: the
//!   sender is done after `final_seq` tokens; the receiver drains its
//!   queue and then reports the channel closed.
//!
//! Decoding is incremental ([`FrameReader`]): bytes arrive in arbitrary
//! splits and frames are surfaced as soon as they complete.  Anything
//! that cannot be a frame — unknown kind, truncated payload, an absurd
//! length — is a typed [`NetError::MalformedFrame`], never a panic.

use std::io::{Read, Write};

use signal_lang::Value;

use crate::NetError;

/// The protocol version this crate speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frames are tiny (the largest is a `Hello` carrying a signal name); any
/// announced length beyond this is a malformed peer, not a huge frame.
pub const MAX_FRAME_LEN: usize = 4096;

const KIND_HELLO: u8 = 0;
const KIND_HELLO_ACK: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_CLOSE: u8 = 4;

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The sender's side of the handshake.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// The edge signal this connection carries.
        signal: String,
        /// The sender's flow-control window — the derived capacity bound.
        window: u64,
        /// The first sequence number the sender will assign.
        start_seq: u64,
    },
    /// The receiver's answer to a `Hello`.
    HelloAck {
        /// The next sequence number the receiver expects — everything
        /// below it was already delivered and must not be re-sent.
        next_expected: u64,
        /// How many tokens the receiving worker has consumed so far —
        /// primes the reconnecting sender's credit ledger.
        consumed: u64,
    },
    /// One token with its per-edge sequence number.
    Data {
        /// The token's sequence number (assigned once, stable across
        /// retransmissions).
        seq: u64,
        /// The token itself.
        value: Value,
    },
    /// Cumulative consumption acknowledgement: every token with a
    /// sequence number below `consumed` has been consumed by the worker.
    Ack {
        /// The cumulative consumed-token count.
        consumed: u64,
    },
    /// The sender is done: exactly `final_seq` tokens were assigned.  The
    /// receiver drains its queue, then reports the channel closed.
    Close {
        /// The sender's final sequence-number watermark.
        final_seq: u64,
    },
}

fn encode_value(value: Value, out: &mut Vec<u8>) {
    match value {
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.extend_from_slice(&u64::from(b).to_le_bytes());
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
}

fn decode_value(tag: u8, bits: [u8; 8]) -> Result<Value, NetError> {
    match tag {
        TAG_BOOL => match u64::from_le_bytes(bits) {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(NetError::MalformedFrame(format!(
                "bool token with bits {other} (want 0 or 1)"
            ))),
        },
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(bits))),
        other => Err(NetError::MalformedFrame(format!(
            "unknown value tag {other}"
        ))),
    }
}

impl Frame {
    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            Frame::Hello {
                version,
                signal,
                window,
                start_seq,
            } => {
                body.push(KIND_HELLO);
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&window.to_le_bytes());
                body.extend_from_slice(&start_seq.to_le_bytes());
                body.extend_from_slice(signal.as_bytes());
            }
            Frame::HelloAck {
                next_expected,
                consumed,
            } => {
                body.push(KIND_HELLO_ACK);
                body.extend_from_slice(&next_expected.to_le_bytes());
                body.extend_from_slice(&consumed.to_le_bytes());
            }
            Frame::Data { seq, value } => {
                body.push(KIND_DATA);
                body.extend_from_slice(&seq.to_le_bytes());
                encode_value(*value, &mut body);
            }
            Frame::Ack { consumed } => {
                body.push(KIND_ACK);
                body.extend_from_slice(&consumed.to_le_bytes());
            }
            Frame::Close { final_seq } => {
                body.push(KIND_CLOSE);
                body.extend_from_slice(&final_seq.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        let len = u32::try_from(body.len()).expect("frames are tiny");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// [`NetError::MalformedFrame`] for an unknown kind, a truncated
    /// payload or an invalid value encoding.
    fn decode_body(body: &[u8]) -> Result<Frame, NetError> {
        let (&kind, payload) = body
            .split_first()
            .ok_or_else(|| NetError::MalformedFrame("empty frame body".into()))?;
        let word = |at: usize| -> Result<[u8; 8], NetError> {
            payload
                .get(at..at + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
                .ok_or_else(|| {
                    NetError::MalformedFrame(format!(
                        "frame kind {kind} truncated: no 8-byte word at offset {at} \
                         (payload is {} bytes)",
                        payload.len()
                    ))
                })
        };
        match kind {
            KIND_HELLO => {
                let version_bytes = payload.get(0..2).ok_or_else(|| {
                    NetError::MalformedFrame("hello truncated before version".into())
                })?;
                let version = u16::from_le_bytes([version_bytes[0], version_bytes[1]]);
                let window = u64::from_le_bytes(word(2)?);
                let start_seq = u64::from_le_bytes(word(10)?);
                let signal = String::from_utf8(payload[18..].to_vec()).map_err(|_| {
                    NetError::MalformedFrame("hello signal name is not UTF-8".into())
                })?;
                Ok(Frame::Hello {
                    version,
                    signal,
                    window,
                    start_seq,
                })
            }
            KIND_HELLO_ACK => Ok(Frame::HelloAck {
                next_expected: u64::from_le_bytes(word(0)?),
                consumed: u64::from_le_bytes(word(8)?),
            }),
            KIND_DATA => {
                let seq = u64::from_le_bytes(word(0)?);
                let &tag = payload.get(8).ok_or_else(|| {
                    NetError::MalformedFrame("data frame truncated before value tag".into())
                })?;
                let value = decode_value(tag, word(9)?)?;
                Ok(Frame::Data { seq, value })
            }
            KIND_ACK => Ok(Frame::Ack {
                consumed: u64::from_le_bytes(word(0)?),
            }),
            KIND_CLOSE => Ok(Frame::Close {
                final_seq: u64::from_le_bytes(word(0)?),
            }),
            other => Err(NetError::MalformedFrame(format!(
                "unknown frame kind {other}"
            ))),
        }
    }

    /// Writes the frame to a stream in one call.
    ///
    /// # Errors
    ///
    /// Propagates the stream's I/O error.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }
}

/// An incremental frame decoder: feed it byte chunks of any size (partial
/// reads included) and pull complete frames out as they materialize.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A fresh, empty decoder.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes received from the medium.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the buffer sits exactly on a frame boundary (no partial
    /// frame pending) — a clean EOF position.
    pub fn at_boundary(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`NetError::MalformedFrame`] when the buffered bytes cannot be a
    /// frame (absurd length, unknown kind, bad payload).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        let Some(prefix) = self.buf.get(0..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(<[u8; 4]>::try_from(prefix).expect("4 bytes")) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(NetError::MalformedFrame(format!(
                "announced frame length {len} (valid: 1..={MAX_FRAME_LEN})"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::decode_body(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Reads from a blocking stream until one full frame is available.
    /// Returns `None` on a clean EOF (the stream ended exactly on a frame
    /// boundary).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] for stream errors, [`NetError::MalformedFrame`]
    /// for undecodable bytes — including a stream that ends mid-frame.
    pub fn read_frame(&mut self, stream: &mut impl Read) -> Result<Option<Frame>, NetError> {
        let mut chunk = [0u8; 512];
        loop {
            if let Some(frame) = self.next_frame()? {
                return Ok(Some(frame));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                if self.at_boundary() {
                    return Ok(None);
                }
                return Err(NetError::MalformedFrame(
                    "stream ended in the middle of a frame".into(),
                ));
            }
            self.push(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        assert_eq!(reader.next_frame().unwrap(), Some(frame));
        assert!(reader.at_boundary());
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            signal: "p2".into(),
            window: 3,
            start_seq: 7,
        });
        round_trip(Frame::HelloAck {
            next_expected: 42,
            consumed: 40,
        });
        round_trip(Frame::Data {
            seq: 9,
            value: Value::Bool(true),
        });
        round_trip(Frame::Data {
            seq: 10,
            value: Value::Int(-12345),
        });
        round_trip(Frame::Ack { consumed: 11 });
        round_trip(Frame::Close { final_seq: 16 });
    }

    #[test]
    fn frames_survive_byte_at_a_time_delivery() {
        let frames = [
            Frame::Data {
                seq: 0,
                value: Value::Int(i64::MIN),
            },
            Frame::Ack { consumed: 1 },
            Frame::Close { final_seq: 1 },
        ];
        let mut wire: Vec<u8> = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&frame.encode());
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in wire {
            reader.push(&[byte]);
            while let Some(frame) = reader.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn malformed_bytes_are_typed_errors() {
        // Absurd length.
        let mut reader = FrameReader::new();
        reader.push(&u32::MAX.to_le_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
        // Zero length.
        let mut reader = FrameReader::new();
        reader.push(&0u32.to_le_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
        // Unknown kind.
        let mut reader = FrameReader::new();
        reader.push(&1u32.to_le_bytes());
        reader.push(&[99]);
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
        // Data frame with a bad value tag.
        let mut body = vec![super::KIND_DATA];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(7); // no such tag
        body.extend_from_slice(&0u64.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&u32::try_from(body.len()).unwrap().to_le_bytes());
        reader.push(&body);
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
        // Truncated payload (a Close with only 4 of its 8 bytes).
        let mut reader = FrameReader::new();
        reader.push(&5u32.to_le_bytes());
        reader.push(&[super::KIND_CLOSE, 1, 2, 3, 4]);
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
        // A bool whose bits are neither 0 nor 1.
        let mut body = vec![super::KIND_DATA];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(super::TAG_BOOL);
        body.extend_from_slice(&2u64.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&u32::try_from(body.len()).unwrap().to_le_bytes());
        reader.push(&body);
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::MalformedFrame(_))
        ));
    }

    #[test]
    fn a_reader_mid_frame_is_not_at_a_boundary() {
        let bytes = Frame::Ack { consumed: 3 }.encode();
        let mut reader = FrameReader::new();
        reader.push(&bytes[..bytes.len() - 1]);
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(!reader.at_boundary());
        reader.push(&bytes[bytes.len() - 1..]);
        assert_eq!(
            reader.next_frame().unwrap(),
            Some(Frame::Ack { consumed: 3 })
        );
    }
}
