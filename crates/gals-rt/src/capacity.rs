//! Clock-derived channel capacity bounds.
//!
//! The paper's central claim is that the clock calculus makes GALS
//! deployment safe *by construction*: the relation `R` that proves a
//! design isochronous also bounds how far each producer can run ahead of
//! its consumer — so the per-edge FIFO capacities need not be hand-tuned,
//! they are an artifact of the verification.
//!
//! [`CapacityAnalysis::derive`] walks a [`Topology`], looks up the
//! producer-side and consumer-side clock expressions of every edge signal
//! (the [`EdgeClocks`] a verified design extracts from its components'
//! local relations), classifies each pair with
//! [`clocks::RateRelation::between_in`] in the algebra of the global
//! composition, and records one [`DerivedCapacity`] per boundable edge —
//! bound plus provenance — or the reason a bound could not be derived.
//!
//! The result is installed on a deployment through
//! [`ChannelSizing::Derived`](crate::transport::ChannelSizing): edges then
//! get their derived bound as capacity (explicit per-signal overrides
//! still win), and an edge with neither is a typed
//! [`DeployError::UnboundedEdge`](crate::DeployError) instead of a silent
//! default.

use std::collections::BTreeMap;
use std::fmt;

use clocks::algebra::ClockAlgebra;
use clocks::clock::ClockExpr;
use clocks::rate::RateRelation;
use clocks::word::ClockWord;
use signal_lang::{KernelProcess, Name};

use crate::deploy::Topology;

/// The clock expressions governing one channel signal: the clock at which
/// the producing component emits it and the clock(s) at which its
/// consumer(s) read it, both expressed in the components' *local*
/// relations and interpreted in the algebra of the global composition.
///
/// When a component's kernel exposes a periodic phase system (a one-hot
/// delay ring or an alternating register — see [`clocks::word`]), its
/// side of the edge additionally carries the k-periodic [`ClockWord`] of
/// the clock over the component's *local* reactions.  The words survive
/// interface abstraction: a composite that hides a component's internals
/// strips the global algebra of its phase registers, but the local word
/// was resolved in the component's own relation and still classifies the
/// edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeClocks {
    /// The producer-side clock expression of the signal.
    pub producer: ClockExpr,
    /// One consumer-side clock expression per consuming component.
    pub consumers: Vec<ClockExpr>,
    /// The producer's local emission word, when derivable.
    pub producer_word: Option<ClockWord>,
    /// Per-consumer local read words, parallel to `consumers`.
    pub consumer_words: Vec<Option<ClockWord>>,
}

/// A per-edge capacity bound derived from the clock calculus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedCapacity {
    /// The FIFO occupancy bound: the channel never needs more slots.
    pub bound: usize,
    /// The rate relation that produced the bound (the weakest one, when
    /// the signal has several consumers).
    pub relation: RateRelation,
    /// Human-readable derivation: which clocks were compared and why the
    /// bound follows.
    pub provenance: String,
}

impl fmt::Display for DerivedCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bound {} ({})", self.bound, self.provenance)
    }
}

/// A feedback loop the priming-liveness analysis proved can never start
/// turning: every component on the loop waits on its first read strictly
/// before its first emission, so each blocks forever on an empty channel
/// — the static form of the wait cycle the pool scheduler's dynamic
/// `Deadlocked` detection would otherwise only catch at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnprimedCycle {
    /// The channel signals of the unprimed loop.
    pub signals: Vec<Name>,
    /// Per-component first-emission vs first-read instants, for the
    /// error message.
    pub detail: String,
}

impl fmt::Display for UnprimedCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unprimed feedback loop through {}: {}",
            self.signals
                .iter()
                .map(Name::as_str)
                .collect::<Vec<_>>()
                .join(", "),
            self.detail
        )
    }
}

/// The result of deriving capacity bounds for every edge of a topology:
/// a bound (with provenance) per boundable signal, the reason for every
/// signal the calculus could not bound, and the feedback loops the
/// priming-liveness analysis proved unable to start.
#[derive(Debug, Clone, Default)]
pub struct CapacityAnalysis {
    derived: BTreeMap<Name, DerivedCapacity>,
    unbounded: BTreeMap<Name, String>,
    unprimed: Vec<UnprimedCycle>,
}

impl CapacityAnalysis {
    /// An empty analysis (no edge has a derived bound) — the starting
    /// point for assembling bounds by hand with
    /// [`insert`](CapacityAnalysis::insert).
    pub fn new() -> Self {
        CapacityAnalysis::default()
    }

    /// Derives a bound for every edge of `topology`.
    ///
    /// `kernel` and `algebra` are the global composition and its
    /// interpreted relation `R`; `edge_clocks` maps each channel signal to
    /// its producer/consumer clock expressions.  Signals with no entry, or
    /// whose rate relation is [`RateRelation::Unbounded`] for some
    /// consumer, are recorded as unbounded with the reason.
    pub fn derive(
        topology: &Topology,
        kernel: &KernelProcess,
        algebra: &mut ClockAlgebra,
        edge_clocks: &BTreeMap<Name, EdgeClocks>,
    ) -> Self {
        let mut analysis = CapacityAnalysis::new();
        for spec in &topology.channels {
            if analysis.derived.contains_key(&spec.signal)
                || analysis.unbounded.contains_key(&spec.signal)
            {
                continue; // several consumers share the signal: derived once
            }
            let Some(clocks) = edge_clocks.get(&spec.signal) else {
                analysis.unbounded.insert(
                    spec.signal.clone(),
                    "no clock information for the signal".to_string(),
                );
                continue;
            };
            let mut weakest: Option<DerivedCapacity> = None;
            let mut failure: Option<String> = None;
            for (index, consumer) in clocks.consumers.iter().enumerate() {
                let mut relation =
                    RateRelation::between_in(kernel, algebra, &clocks.producer, consumer);
                let mut local_words = false;
                if relation == RateRelation::Unbounded {
                    // The global algebra proved nothing — fall back to the
                    // components' local k-periodic words, which survive
                    // interface abstraction.
                    if let (Some(producer_word), Some(consumer_word)) = (
                        clocks.producer_word.as_ref(),
                        clocks.consumer_words.get(index).and_then(Option::as_ref),
                    ) {
                        relation = RateRelation::between_words(producer_word, consumer_word);
                        local_words = relation != RateRelation::Unbounded;
                    }
                }
                match relation.bound() {
                    Some(bound) => {
                        let provenance = if local_words {
                            format!(
                                "{relation} (components' local phase words; the \
                                 composition algebra does not see the phase registers)"
                            )
                        } else {
                            format!(
                                "{relation}: producer at {} vs consumer at {consumer}",
                                clocks.producer
                            )
                        };
                        let candidate = DerivedCapacity {
                            bound,
                            provenance,
                            relation,
                        };
                        weakest = Some(match weakest {
                            Some(current) if current.bound >= bound => current,
                            _ => candidate,
                        });
                    }
                    None => {
                        failure = Some(format!(
                            "no finite rate relation between producer clock {} \
                             and consumer clock {consumer}",
                            clocks.producer
                        ));
                        break;
                    }
                }
            }
            match (failure, weakest) {
                (Some(reason), _) => {
                    analysis.unbounded.insert(spec.signal.clone(), reason);
                }
                (None, Some(capacity)) => {
                    analysis.derived.insert(spec.signal.clone(), capacity);
                }
                (None, None) => {
                    analysis.unbounded.insert(
                        spec.signal.clone(),
                        "the signal has no consumer-side clock".to_string(),
                    );
                }
            }
        }
        analysis.unprimed = unprimed_cycles(topology, edge_clocks);
        analysis
    }

    /// Records a bound for one signal (replacing any previous entry) —
    /// the hook for bounds computed outside the built-in derivation, e.g.
    /// by a custom analysis over hand-rolled machines.
    pub fn insert(&mut self, signal: impl Into<Name>, capacity: DerivedCapacity) -> &mut Self {
        let signal = signal.into();
        self.unbounded.remove(&signal);
        self.derived.insert(signal, capacity);
        self
    }

    /// The derived bound of a signal, when one exists.
    pub fn bound_for(&self, signal: &Name) -> Option<&DerivedCapacity> {
        self.derived.get(signal)
    }

    /// Every derived bound, keyed by signal.
    pub fn bounds(&self) -> &BTreeMap<Name, DerivedCapacity> {
        &self.derived
    }

    /// The signals the calculus could not bound, with the reason.
    pub fn unbounded(&self) -> &BTreeMap<Name, String> {
        &self.unbounded
    }

    /// Returns `true` when every edge of the analyzed topology got a
    /// finite bound.
    pub fn is_fully_bounded(&self) -> bool {
        self.unbounded.is_empty()
    }

    /// The feedback loops the priming-liveness analysis proved can never
    /// start (see [`UnprimedCycle`]); empty when every cycle either has a
    /// priming component or could not be fully word-resolved.
    pub fn unprimed_cycles(&self) -> &[UnprimedCycle] {
        &self.unprimed
    }

    /// Records an unprimed feedback loop (replacing none) — the hook for
    /// liveness verdicts computed outside the built-in derivation.
    pub fn record_unprimed(&mut self, cycle: UnprimedCycle) -> &mut Self {
        self.unprimed.push(cycle);
        self
    }
}

/// The priming-liveness pass: for every strongly connected group of the
/// channel graph, proves the loop dead when *every* machine on it
/// provably waits on its first read strictly before its first emission.
///
/// The proof needs, per machine, the local k-periodic words of all its
/// cycle out-edges (a lower bound on its earliest emission) and of at
/// least one cycle in-edge (an upper bound on its earliest read).  Any
/// missing word makes the machine potentially priming and the group is
/// left to the existing refuse-or-prove capacity path plus the dynamic
/// backstop — the analysis only ever refuses what it can prove.
fn unprimed_cycles(
    topology: &Topology,
    edge_clocks: &BTreeMap<Name, EdgeClocks>,
) -> Vec<UnprimedCycle> {
    let mut unprimed = Vec::new();
    for group in topology.cycle_groups() {
        let specs: Vec<_> = topology
            .channels
            .iter()
            .filter(|spec| group.contains(&spec.signal))
            .collect();
        let machines: std::collections::BTreeSet<usize> = specs
            .iter()
            .flat_map(|spec| [spec.producer, spec.consumer])
            .collect();
        let mut details = Vec::new();
        let all_proven_waiting = machines.iter().all(|&machine| {
            // Lower bound on the machine's earliest cycle emission: the
            // min first-one over its out-edge words, all of which must be
            // known.
            let mut first_emit = usize::MAX;
            for spec in specs.iter().filter(|spec| spec.producer == machine) {
                let word = edge_clocks
                    .get(&spec.signal)
                    .and_then(|clocks| clocks.producer_word.as_ref());
                match word.and_then(ClockWord::first_one) {
                    Some(instant) => first_emit = first_emit.min(instant),
                    None if word.is_some() => {} // never emits: no priming here
                    None => return false,        // unknown word: maybe primes
                }
            }
            // Upper bound on its earliest cycle read: any known in-edge
            // word will do (an unambiguous one — single-consumer edges).
            let first_read = specs
                .iter()
                .filter(|spec| spec.consumer == machine)
                .filter_map(|spec| {
                    let clocks = edge_clocks.get(&spec.signal)?;
                    match clocks.consumer_words.as_slice() {
                        [only] => only.as_ref()?.first_one(),
                        _ => None,
                    }
                })
                .min();
            match first_read {
                Some(read) if first_emit >= read => {
                    details.push(format!(
                        "machine #{machine} first reads at instant {read} but first \
                         emits at instant {}",
                        if first_emit == usize::MAX {
                            "∞".to_string()
                        } else {
                            first_emit.to_string()
                        }
                    ));
                    true
                }
                _ => false,
            }
        });
        if all_proven_waiting && !machines.is_empty() {
            unprimed.push(UnprimedCycle {
                signals: group.iter().cloned().collect(),
                detail: format!(
                    "every component waits on a read before it can emit ({}), so the \
                     loop never starts — flip a register initialization so one \
                     component emits first",
                    details.join("; ")
                ),
            });
        }
    }
    unprimed
}

impl fmt::Display for CapacityAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (signal, capacity) in &self.derived {
            writeln!(f, "{signal}: {capacity}")?;
        }
        for (signal, reason) in &self.unbounded {
            writeln!(f, "{signal}: unbounded ({reason})")?;
        }
        for cycle in &self.unprimed {
            writeln!(f, "{cycle}")?;
        }
        Ok(())
    }
}
