//! Clock-derived channel capacity bounds.
//!
//! The paper's central claim is that the clock calculus makes GALS
//! deployment safe *by construction*: the relation `R` that proves a
//! design isochronous also bounds how far each producer can run ahead of
//! its consumer — so the per-edge FIFO capacities need not be hand-tuned,
//! they are an artifact of the verification.
//!
//! [`CapacityAnalysis::derive`] walks a [`Topology`], looks up the
//! producer-side and consumer-side clock expressions of every edge signal
//! (the [`EdgeClocks`] a verified design extracts from its components'
//! local relations), classifies each pair with
//! [`clocks::RateRelation::between_in`] in the algebra of the global
//! composition, and records one [`DerivedCapacity`] per boundable edge —
//! bound plus provenance — or the reason a bound could not be derived.
//!
//! The result is installed on a deployment through
//! [`ChannelSizing::Derived`](crate::transport::ChannelSizing): edges then
//! get their derived bound as capacity (explicit per-signal overrides
//! still win), and an edge with neither is a typed
//! [`DeployError::UnboundedEdge`](crate::DeployError) instead of a silent
//! default.

use std::collections::BTreeMap;
use std::fmt;

use clocks::algebra::ClockAlgebra;
use clocks::clock::ClockExpr;
use clocks::rate::RateRelation;
use signal_lang::{KernelProcess, Name};

use crate::deploy::Topology;

/// The clock expressions governing one channel signal: the clock at which
/// the producing component emits it and the clock(s) at which its
/// consumer(s) read it, both expressed in the components' *local*
/// relations and interpreted in the algebra of the global composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeClocks {
    /// The producer-side clock expression of the signal.
    pub producer: ClockExpr,
    /// One consumer-side clock expression per consuming component.
    pub consumers: Vec<ClockExpr>,
}

/// A per-edge capacity bound derived from the clock calculus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedCapacity {
    /// The FIFO occupancy bound: the channel never needs more slots.
    pub bound: usize,
    /// The rate relation that produced the bound (the weakest one, when
    /// the signal has several consumers).
    pub relation: RateRelation,
    /// Human-readable derivation: which clocks were compared and why the
    /// bound follows.
    pub provenance: String,
}

impl fmt::Display for DerivedCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bound {} ({})", self.bound, self.provenance)
    }
}

/// The result of deriving capacity bounds for every edge of a topology:
/// a bound (with provenance) per boundable signal, and the reason for
/// every signal the calculus could not bound.
#[derive(Debug, Clone, Default)]
pub struct CapacityAnalysis {
    derived: BTreeMap<Name, DerivedCapacity>,
    unbounded: BTreeMap<Name, String>,
}

impl CapacityAnalysis {
    /// An empty analysis (no edge has a derived bound) — the starting
    /// point for assembling bounds by hand with
    /// [`insert`](CapacityAnalysis::insert).
    pub fn new() -> Self {
        CapacityAnalysis::default()
    }

    /// Derives a bound for every edge of `topology`.
    ///
    /// `kernel` and `algebra` are the global composition and its
    /// interpreted relation `R`; `edge_clocks` maps each channel signal to
    /// its producer/consumer clock expressions.  Signals with no entry, or
    /// whose rate relation is [`RateRelation::Unbounded`] for some
    /// consumer, are recorded as unbounded with the reason.
    pub fn derive(
        topology: &Topology,
        kernel: &KernelProcess,
        algebra: &mut ClockAlgebra,
        edge_clocks: &BTreeMap<Name, EdgeClocks>,
    ) -> Self {
        let mut analysis = CapacityAnalysis::new();
        for spec in &topology.channels {
            if analysis.derived.contains_key(&spec.signal)
                || analysis.unbounded.contains_key(&spec.signal)
            {
                continue; // several consumers share the signal: derived once
            }
            let Some(clocks) = edge_clocks.get(&spec.signal) else {
                analysis.unbounded.insert(
                    spec.signal.clone(),
                    "no clock information for the signal".to_string(),
                );
                continue;
            };
            let mut weakest: Option<DerivedCapacity> = None;
            let mut failure: Option<String> = None;
            for consumer in &clocks.consumers {
                let relation =
                    RateRelation::between_in(kernel, algebra, &clocks.producer, consumer);
                match relation.bound() {
                    Some(bound) => {
                        let candidate = DerivedCapacity {
                            bound,
                            provenance: format!(
                                "{relation}: producer at {} vs consumer at {consumer}",
                                clocks.producer
                            ),
                            relation,
                        };
                        weakest = Some(match weakest {
                            Some(current) if current.bound >= bound => current,
                            _ => candidate,
                        });
                    }
                    None => {
                        failure = Some(format!(
                            "no finite rate relation between producer clock {} \
                             and consumer clock {consumer}",
                            clocks.producer
                        ));
                        break;
                    }
                }
            }
            match (failure, weakest) {
                (Some(reason), _) => {
                    analysis.unbounded.insert(spec.signal.clone(), reason);
                }
                (None, Some(capacity)) => {
                    analysis.derived.insert(spec.signal.clone(), capacity);
                }
                (None, None) => {
                    analysis.unbounded.insert(
                        spec.signal.clone(),
                        "the signal has no consumer-side clock".to_string(),
                    );
                }
            }
        }
        analysis
    }

    /// Records a bound for one signal (replacing any previous entry) —
    /// the hook for bounds computed outside the built-in derivation, e.g.
    /// by a custom analysis over hand-rolled machines.
    pub fn insert(&mut self, signal: impl Into<Name>, capacity: DerivedCapacity) -> &mut Self {
        let signal = signal.into();
        self.unbounded.remove(&signal);
        self.derived.insert(signal, capacity);
        self
    }

    /// The derived bound of a signal, when one exists.
    pub fn bound_for(&self, signal: &Name) -> Option<&DerivedCapacity> {
        self.derived.get(signal)
    }

    /// Every derived bound, keyed by signal.
    pub fn bounds(&self) -> &BTreeMap<Name, DerivedCapacity> {
        &self.derived
    }

    /// The signals the calculus could not bound, with the reason.
    pub fn unbounded(&self) -> &BTreeMap<Name, String> {
        &self.unbounded
    }

    /// Returns `true` when every edge of the analyzed topology got a
    /// finite bound.
    pub fn is_fully_bounded(&self) -> bool {
        self.unbounded.is_empty()
    }
}

impl fmt::Display for CapacityAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (signal, capacity) in &self.derived {
            writeln!(f, "{signal}: {capacity}")?;
        }
        for (signal, reason) in &self.unbounded {
            writeln!(f, "{signal}: unbounded ({reason})")?;
        }
        Ok(())
    }
}
