//! Dynamic isochrony conformance: Theorem 1 as an executable check.
//!
//! The static weak-hierarchy criterion promises that the asynchronous
//! execution of the separately compiled components observes the same flows
//! as their synchronous composition.  This module makes the promise
//! testable at arbitrary component counts: the same environment streams
//! that drove a deployment are replayed through the repo's synchronous
//! reference interpreter — one [`sim::Simulator`] per component, scheduled
//! cooperatively with unbounded FIFOs (the paper's unbounded model, of
//! which the deployed bounded channels are a finite refinement) — and the
//! two flow observations are compared signal per signal.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use signal_lang::{KernelProcess, Name, Value};
use sim::{AsyncNetwork, FlowComparison, Flows};

/// The synchronous reference of one deployed component: its kernel process
/// (interpreted by [`sim::Simulator`]) and the activation signals forcing
/// its autonomous state clocks to tick.
#[derive(Debug, Clone)]
pub struct ReferenceComponent {
    /// The component name.
    pub name: String,
    /// The kernel process the synchronous interpreter executes.
    pub kernel: KernelProcess,
    /// Signals forced present at every attempted reaction (one
    /// representative per autonomous root of the clock hierarchy).
    pub activation: Vec<Name>,
}

/// An error raised by the conformance checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The deployment carries no reference components to replay.
    NoReference,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::NoReference => {
                write!(f, "the deployment has no synchronous reference to replay")
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Replays the environment streams through the synchronous reference
/// interpreters and returns the observed flows.
///
/// Public so out-of-process harnesses (the `gals-net` partition runner)
/// can replay the *whole* design's reference against flows merged from
/// several per-process deployments — the end-to-end isochrony check of a
/// distributed run.
pub fn replay_reference(
    components: &[ReferenceComponent],
    feeds: &BTreeMap<Name, Vec<Value>>,
    paced: &BTreeSet<Name>,
    max_turns: usize,
) -> Flows {
    let mut network = AsyncNetwork::new();
    for component in components {
        network.add_component(
            component.name.clone(),
            &component.kernel,
            component.activation.iter().cloned(),
        );
    }
    for (signal, values) in feeds {
        if paced.contains(signal) {
            network.feed_paced(signal.clone(), values.iter().copied());
        } else {
            network.feed(signal.clone(), values.iter().copied());
        }
    }
    network.run_until_quiescent(max_turns);
    network.flows().clone()
}

/// The verdict of one conformance check.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The signal-per-signal comparison (deployed vs reference).
    pub comparison: FlowComparison,
    /// The flows of the synchronous reference replay.
    pub reference: Flows,
    /// The flows of the deployed execution.
    pub deployed: Flows,
}

impl ConformanceReport {
    /// Compares the deployed flows against the reference flows, on the
    /// signals the deployment produced (the reference also records
    /// environment consumption, which has no deployed counterpart).
    ///
    /// Public for the same reason as [`replay_reference`]: a distributed
    /// runner compares merged cross-process flows against one reference.
    pub fn compare(reference: &Flows, deployed: &Flows) -> Self {
        let signals: Vec<Name> = deployed.keys().cloned().collect();
        ConformanceReport {
            comparison: FlowComparison::compare_on(reference, deployed, signals),
            reference: reference.clone(),
            deployed: deployed.clone(),
        }
    }

    /// Returns `true` when the deployed execution observed exactly the
    /// flows of the synchronous reference — the conclusion of Theorem 1.
    pub fn is_isochronous(&self) -> bool {
        self.comparison.flows_match()
    }

    /// The signals whose deployed and reference flows differ.
    pub fn mismatches(&self) -> Vec<Name> {
        self.comparison.mismatching_signals()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_isochronous() {
            write!(
                f,
                "conformant: deployed flows equal the synchronous reference \
                 on {} signal(s)",
                self.comparison.matching.len()
            )
        } else {
            writeln!(
                f,
                "NOT conformant — deployment diverged from the synchronous reference:"
            )?;
            for m in &self.comparison.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}
