//! The deployment builder and runner.
//!
//! A [`Deployment`] assembles separately compiled [`StepMachine`]s, derives
//! the channel topology from their interfaces (an output of one machine
//! feeding the homonymous input of others becomes a bounded FIFO channel),
//! preloads the environment streams, and runs every machine on its own OS
//! thread until the streams are drained — the concurrent execution scheme
//! of Section 5 of the paper generalized from one producer/consumer pair to
//! arbitrary component counts.
//!
//! The channels themselves are minted by a pluggable
//! [`Transport`] under a [`ChannelPolicy`]:
//! per-edge capacities (a default plus per-signal overrides) and a backend
//! choice — the lock-free SPSC ring by default, since every derived edge
//! has exactly one producer and one consumer.  [`Deployment::topology`]
//! reports the resolved capacity and backend of every edge.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use signal_lang::{Name, Value};
use sim::Flows;

use crate::capacity::CapacityAnalysis;
use crate::conformance::{
    replay_reference, ConformanceError, ConformanceReport, ReferenceComponent,
};
use crate::machine::StepMachine;
use crate::ring::RingTransport;
use crate::sched::{self, ExecutionMode};
use crate::stats::{CapacityRange, DeploymentStats, PoolWorkerStats};
use crate::trace::{Trace, TraceBuffer, TraceConfig};
use crate::transport::{
    Backend, CapacitySource, ChannelPolicy, ChannelSizing, MpscTransport, TokenRx, TokenTx,
    Transport, ZeroCapacity,
};
use crate::worker::{self, Driver, WorkerReport};

/// Default per-component step budget: a safety net against components that
/// can react forever without consuming any finite stream.
pub const DEFAULT_MAX_STEPS: u64 = 1_000_000;

/// Default capacity of the streaming ingress/egress channels a staged
/// deployment ([`Deployment::stage`]) exposes: deep enough to absorb a
/// burst of fed tokens without blocking the client, small enough that an
/// unpolled tenant exerts backpressure on itself rather than hoarding
/// memory.
pub const DEFAULT_STREAM_CAPACITY: usize = 64;

/// An error raised while assembling or launching a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The deployment has no machine.
    Empty,
    /// Two machines declare the same output signal; a signal must have a
    /// single producer for the channel topology to be well-defined.
    DuplicateProducer(Name),
    /// A fed signal is produced by a machine: only environment inputs (read
    /// by some machine, produced by none) can be fed.
    FedInternalSignal(Name),
    /// A fed signal is not an input of any machine.
    UnknownFeed(Name),
    /// The channel topology contains a communication cycle: with bounded
    /// blocking channels, a cycle can deadlock every worker on it, so the
    /// run is refused unless cycles are explicitly allowed.
    CyclicTopology,
    /// A channel capacity of 0 was requested (for the named signal, or for
    /// the default when `None`).  A zero-capacity channel is a rendezvous
    /// the worker loop cannot serve — the producer publishes before its
    /// next read, so two adjacent workers would deadlock — and it is
    /// rejected instead of being silently clamped.
    ZeroCapacity(Option<Name>),
    /// A signal marked as paced ([`Deployment::mark_paced`]) is not an
    /// environment input of the deployment — a typo here would silently
    /// skew the conformance replay, so it is rejected like an unknown feed.
    UnknownPaced(Name),
    /// A step budget of 0 was requested: every worker would exit instantly
    /// with `StopReason::StepLimit` and the run would "succeed" with empty
    /// flows, so it is rejected like a zero capacity.
    ZeroMaxSteps,
    /// A pool execution mode with 0 workers was requested: no thread would
    /// ever dispatch a component.
    ZeroPoolWorkers,
    /// A pool execution mode with a 0-reaction quantum was requested: a
    /// dispatch could never advance its component.
    ZeroQuantum,
    /// Derived channel sizing was requested for a design that fails the
    /// static weak-hierarchy criterion: the clock relations of an
    /// unverified design prove nothing, so no capacity bound can be
    /// trusted from them.
    NotVerified(String),
    /// Under [`ChannelSizing::Derived`], the named edge signal has neither
    /// a derived bound (the clock calculus could not relate its producer
    /// and consumer clocks) nor an explicit capacity override.
    UnboundedEdge(Name),
    /// Under [`ChannelSizing::Derived`], the named feedback edge of a
    /// cyclic topology is sized only by an explicit override: the
    /// calculus did not prove its bound, so the cycle is not provably
    /// deadlock-free and running it requires the explicit
    /// `set_allow_cycles(true)` opt-in.
    UnprovenFeedbackEdge(Name),
    /// A feedback edge of an (explicitly allowed or derivably safe) cycle
    /// has a capacity below its derived bound: the cycle could fill the
    /// channel and deadlock, so the run is refused statically instead.
    InsufficientFeedbackCapacity {
        /// The feedback edge's signal.
        signal: Name,
        /// The derived bound the edge needs.
        required: usize,
        /// The capacity it was given.
        actual: usize,
    },
    /// The priming-liveness analysis proved a feedback loop can never
    /// start: every component on it waits on its first read strictly
    /// before its first emission, so the loop would sit in the exact wait
    /// cycle the pool scheduler's dynamic `Deadlocked` detection reports —
    /// refused statically instead.
    UnprimedCycle(crate::capacity::UnprimedCycle),
    /// The transport could not mint an endpoint pair for an edge — a
    /// socket path unreachable, a shared file uncreatable, a handshake
    /// refused.  The in-process backends never raise this; a distributed
    /// medium does, and the failure is a typed outcome instead of a panic.
    Transport(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Empty => write!(f, "a deployment needs at least one machine"),
            DeployError::DuplicateProducer(n) => {
                write!(f, "signal {n} is produced by more than one machine")
            }
            DeployError::FedInternalSignal(n) => {
                write!(f, "signal {n} is produced by a machine and cannot be fed")
            }
            DeployError::UnknownFeed(n) => {
                write!(f, "fed signal {n} is not an input of any machine")
            }
            DeployError::CyclicTopology => write!(
                f,
                "the channel topology is cyclic and bounded blocking channels \
                 may deadlock on it (allow_cycles forces the run)"
            ),
            DeployError::ZeroCapacity(signal) => {
                let culprit = ZeroCapacity {
                    signal: signal.clone(),
                };
                write!(f, "{culprit}")
            }
            DeployError::UnknownPaced(n) => {
                write!(f, "paced signal {n} is not an environment input")
            }
            DeployError::ZeroMaxSteps => write!(
                f,
                "a step budget of 0 would stop every component before its \
                 first reaction; use a budget of at least 1"
            ),
            DeployError::ZeroPoolWorkers => {
                write!(f, "a pool of 0 workers can never dispatch a component")
            }
            DeployError::ZeroQuantum => {
                write!(f, "a quantum of 0 reactions can never advance a component")
            }
            DeployError::NotVerified(name) => write!(
                f,
                "design {name} fails the static weak-hierarchy criterion, so \
                 no channel bound can be derived from its clock relations"
            ),
            DeployError::UnboundedEdge(n) => write!(
                f,
                "no finite capacity bound is derivable for channel signal {n} \
                 (and no explicit override was set); size it with \
                 set_channel_capacity or use fixed sizing"
            ),
            DeployError::UnprovenFeedbackEdge(n) => write!(
                f,
                "feedback edge {n} is sized by an explicit override but has \
                 no derived bound, so the cycle is not provably \
                 deadlock-free (allow_cycles forces the run)"
            ),
            DeployError::InsufficientFeedbackCapacity {
                signal,
                required,
                actual,
            } => write!(
                f,
                "feedback edge {signal} has capacity {actual} but its derived \
                 bound is {required}: the cycle could fill the channel and \
                 deadlock"
            ),
            DeployError::UnprimedCycle(cycle) => write!(f, "{cycle}"),
            DeployError::Transport(message) => write!(f, "transport failure: {message}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<ZeroCapacity> for DeployError {
    fn from(err: ZeroCapacity) -> Self {
        DeployError::ZeroCapacity(err.signal)
    }
}

impl From<crate::transport::TransportError> for DeployError {
    fn from(err: crate::transport::TransportError) -> Self {
        DeployError::Transport(err.message)
    }
}

/// One bounded point-to-point channel of the derived topology, with its
/// policy resolution: the capacity this edge gets and the transport
/// backend that carries it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// The shared signal carried by the channel.
    pub signal: Name,
    /// Index of the producing machine.
    pub producer: usize,
    /// Index of the consuming machine.
    pub consumer: usize,
    /// The resolved bounded capacity of this edge (a per-signal override
    /// when one is set, the derived bound under
    /// [`ChannelSizing::Derived`], the policy default otherwise).
    pub capacity: usize,
    /// Where the capacity came from (default, override, or derived).
    pub source: CapacitySource,
    /// For derived edges, the derivation: the rate relation between the
    /// producer and consumer clocks that produced the bound.
    pub derivation: Option<String>,
    /// The name of the transport backend wiring this edge.
    pub backend: &'static str,
}

/// The static shape of a deployment, derived from the machine interfaces
/// and resolved against the channel policy.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// The point-to-point channels (one per shared signal and consumer).
    pub channels: Vec<ChannelSpec>,
    /// The environment inputs: consumed by some machine, produced by none.
    pub environment: Vec<Name>,
}

impl Topology {
    /// Returns `true` when the channel graph (machines as nodes, channels
    /// as edges) contains a cycle — a shape on which bounded blocking
    /// channels can deadlock.
    ///
    /// The topology has no self-loop edges (a machine reading its own
    /// output resolves internally), so the graph is cyclic exactly when
    /// some edge lies on a cycle.
    pub fn has_cycle(&self) -> bool {
        !self.cycle_signals().is_empty()
    }

    /// The signals of the edges lying on a communication cycle: edges
    /// whose producer and consumer belong to the same strongly connected
    /// component of the channel graph.  These are the edges whose
    /// capacities decide whether a feedback loop can fill its channels
    /// and deadlock.
    pub fn cycle_signals(&self) -> BTreeSet<Name> {
        self.scc_assignment()
            .map(|component| {
                self.channels
                    .iter()
                    .filter(|spec| component.get(&spec.producer) == component.get(&spec.consumer))
                    .map(|spec| spec.signal.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The cycle signals grouped per strongly connected component of the
    /// channel graph: one set per independent feedback loop (nest of
    /// loops), so per-loop analyses — like the priming-liveness pass —
    /// can judge each loop on its own.
    pub fn cycle_groups(&self) -> Vec<BTreeSet<Name>> {
        let Some(component) = self.scc_assignment() else {
            return Vec::new();
        };
        let mut groups: BTreeMap<usize, BTreeSet<Name>> = BTreeMap::new();
        for spec in &self.channels {
            if let (Some(&p), Some(&c)) =
                (component.get(&spec.producer), component.get(&spec.consumer))
            {
                if p == c {
                    groups.entry(p).or_default().insert(spec.signal.clone());
                }
            }
        }
        groups.into_values().collect()
    }

    /// Kosaraju's strongly-connected-components assignment over the
    /// channel graph: machine index → SCC root.  `None` when the graph
    /// has no edges at all.
    fn scc_assignment(&self) -> Option<BTreeMap<usize, usize>> {
        if self.channels.is_empty() {
            return None;
        }
        // Kosaraju: forward order, then transposed sweep.
        let mut nodes: BTreeSet<usize> = BTreeSet::new();
        let mut forward: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut backward: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for spec in &self.channels {
            nodes.insert(spec.producer);
            nodes.insert(spec.consumer);
            forward
                .entry(spec.producer)
                .or_default()
                .push(spec.consumer);
            backward
                .entry(spec.consumer)
                .or_default()
                .push(spec.producer);
        }
        let mut order = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for &start in &nodes {
            if seen.contains(&start) {
                continue;
            }
            // Iterative post-order DFS.
            let mut stack = vec![(start, false)];
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    order.push(node);
                    continue;
                }
                if !seen.insert(node) {
                    continue;
                }
                stack.push((node, true));
                for &next in forward.get(&node).into_iter().flatten() {
                    if !seen.contains(&next) {
                        stack.push((next, false));
                    }
                }
            }
        }
        let mut component: BTreeMap<usize, usize> = BTreeMap::new();
        let mut assigned: BTreeSet<usize> = BTreeSet::new();
        for &root in order.iter().rev() {
            if assigned.contains(&root) {
                continue;
            }
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if !assigned.insert(node) {
                    continue;
                }
                component.insert(node, root);
                for &next in backward.get(&node).into_iter().flatten() {
                    if !assigned.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
        Some(component)
    }
}

/// A multi-threaded GALS deployment under construction.
pub struct Deployment {
    machines: Vec<Box<dyn StepMachine>>,
    reference: Vec<ReferenceComponent>,
    paced: BTreeSet<Name>,
    feeds: BTreeMap<Name, Vec<Value>>,
    policy: ChannelPolicy,
    transport: Option<Arc<dyn Transport>>,
    mode: ExecutionMode,
    max_steps: u64,
    stream_capacity: usize,
    allow_cycles: bool,
    prediction: Option<crate::predict::PerformancePrediction>,
    trace: Option<TraceConfig>,
    machine_kind: Option<crate::machine::MachineKind>,
}

impl Deployment {
    /// Creates an empty deployment with channel capacity 1 (the one-place
    /// rendez-vous of the paper's concurrent scheme), the automatic
    /// backend selection, and the default step budget.
    pub fn new() -> Self {
        Deployment {
            machines: Vec::new(),
            reference: Vec::new(),
            paced: BTreeSet::new(),
            feeds: BTreeMap::new(),
            policy: ChannelPolicy::new(),
            transport: None,
            mode: ExecutionMode::ThreadPerComponent,
            max_steps: DEFAULT_MAX_STEPS,
            stream_capacity: DEFAULT_STREAM_CAPACITY,
            allow_cycles: false,
            prediction: None,
            trace: None,
            machine_kind: None,
        }
    }

    /// Records which execution strategy
    /// ([`crate::MachineKind`]) backs the step machines of this
    /// deployment, so the run's [`DeploymentStats`] can report it.  The
    /// engine itself never inspects the tag — deployments of hand-rolled
    /// machines simply leave it unset.
    pub fn set_machine_kind(&mut self, kind: crate::machine::MachineKind) -> &mut Self {
        self.machine_kind = Some(kind);
        self
    }

    /// The recorded machine kind, when one was set.
    pub fn machine_kind(&self) -> Option<crate::machine::MachineKind> {
        self.machine_kind
    }

    /// Turns per-event tracing on (with the default [`TraceConfig`]) or
    /// off.  A traced run records every reaction, block, token movement
    /// and scheduling event into per-thread bounded buffers and surfaces
    /// them as a [`Trace`] on the outcome plus a
    /// [`crate::TraceSummary`] on the stats.  Off (the default) costs
    /// nothing on the hot path.
    pub fn set_tracing(&mut self, enabled: bool) -> &mut Self {
        self.trace = enabled.then(TraceConfig::default);
        self
    }

    /// Turns tracing on with an explicit [`TraceConfig`].
    pub fn set_trace_config(&mut self, config: TraceConfig) -> &mut Self {
        self.trace = Some(config);
        self
    }

    /// Whether per-event tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Installs a static performance prediction
    /// ([`crate::PerformancePrediction`], e.g. from
    /// `isochron::Design::performance_prediction`) so the run's
    /// [`DeploymentStats`] report it next to the measured counters.
    pub fn set_prediction(
        &mut self,
        prediction: crate::predict::PerformancePrediction,
    ) -> &mut Self {
        self.prediction = Some(prediction);
        self
    }

    /// Selects how components are mapped onto OS threads:
    /// [`ExecutionMode::ThreadPerComponent`] (the default — one dedicated
    /// thread per component, channel waits park the thread) or
    /// [`ExecutionMode::Pool`] (a fixed work-stealing pool cooperatively
    /// steps every component, `quantum` reactions per dispatch — the mode
    /// that scales past core count).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroPoolWorkers`] or
    /// [`DeployError::ZeroQuantum`] for a pool with no workers or a
    /// quantum of 0 reactions.
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) -> Result<&mut Self, DeployError> {
        if let ExecutionMode::Pool { workers, quantum } = mode {
            if workers == 0 {
                return Err(DeployError::ZeroPoolWorkers);
            }
            if quantum == 0 {
                return Err(DeployError::ZeroQuantum);
            }
        }
        self.mode = mode;
        Ok(self)
    }

    /// The execution mode in effect.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Allows running a deployment whose channel topology contains a
    /// communication cycle.  With bounded blocking channels a cycle can
    /// deadlock (every worker on it waiting for another), so cycles are
    /// refused by default; a cycle primed by initial register values can
    /// still make progress, which this switch permits — at the caller's
    /// risk.
    pub fn set_allow_cycles(&mut self, allow: bool) -> &mut Self {
        self.allow_cycles = allow;
        self
    }

    /// Sets the default capacity of every bounded channel (the per-signal
    /// overrides of [`set_channel_capacity`](Self::set_channel_capacity)
    /// win over it).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroCapacity`] for `capacity == 0`: a
    /// zero-capacity channel is a rendezvous the worker loop cannot serve
    /// and would deadlock the deployment.
    pub fn set_capacity(&mut self, capacity: usize) -> Result<&mut Self, DeployError> {
        self.policy.set_default_capacity(capacity)?;
        Ok(self)
    }

    /// Overrides the capacity of the channels carrying one signal — the
    /// hook for per-channel bounds derived from the clock calculus.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroCapacity`] for `capacity == 0`.
    pub fn set_channel_capacity(
        &mut self,
        signal: impl Into<Name>,
        capacity: usize,
    ) -> Result<&mut Self, DeployError> {
        self.policy.set_channel_capacity(signal, capacity)?;
        Ok(self)
    }

    /// Selects the built-in channel backend ([`Backend::Auto`] picks the
    /// lock-free SPSC ring, since every derived edge is point-to-point).
    pub fn set_backend(&mut self, backend: Backend) -> &mut Self {
        self.policy.set_backend(backend);
        self
    }

    /// Installs clock-derived capacity bounds and switches the policy to
    /// [`ChannelSizing::Derived`]: every edge takes its derived bound as
    /// capacity (explicit overrides still win), and an edge with neither
    /// is [`DeployError::UnboundedEdge`] at [`topology`](Self::topology) /
    /// [`run`](Self::run) time.  `isochron::Design::deploy_derived` wires
    /// this up from a verified design in one call.
    pub fn set_capacity_analysis(&mut self, analysis: &CapacityAnalysis) -> &mut Self {
        self.policy.install_derived(analysis);
        self
    }

    /// Selects the channel sizing mode without touching installed bounds.
    pub fn set_sizing(&mut self, sizing: ChannelSizing) -> &mut Self {
        self.policy.set_sizing(sizing);
        self
    }

    /// The channel sizing mode in effect.
    pub fn sizing(&self) -> ChannelSizing {
        self.policy.sizing()
    }

    /// Replaces the whole channel policy (capacities and backend) at once.
    pub fn set_policy(&mut self, policy: ChannelPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Routes every channel through a custom [`Transport`] (a shared-memory
    /// or network medium, say), overriding the built-in backend selection.
    pub fn set_transport(&mut self, transport: Arc<dyn Transport>) -> &mut Self {
        self.transport = Some(transport);
        self
    }

    /// The channel policy in effect.
    pub fn policy(&self) -> &ChannelPolicy {
        &self.policy
    }

    /// The configured default channel capacity.
    pub fn capacity(&self) -> usize {
        self.policy.default_capacity()
    }

    /// Sets the per-component step budget.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroMaxSteps`] for `max_steps == 0`: every
    /// worker would stop before its first reaction and the run would
    /// "succeed" with empty flows.
    pub fn set_max_steps(&mut self, max_steps: u64) -> Result<&mut Self, DeployError> {
        if max_steps == 0 {
            return Err(DeployError::ZeroMaxSteps);
        }
        self.max_steps = max_steps;
        Ok(self)
    }

    /// Sets the capacity of the streaming ingress/egress channels a staged
    /// deployment ([`stage`](Self::stage)) exposes (default
    /// [`DEFAULT_STREAM_CAPACITY`]).  Batch runs ([`run`](Self::run))
    /// never mint these channels and ignore the knob.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroCapacity`] for `capacity == 0`: a
    /// zero-capacity ingress could never accept a fed token.
    pub fn set_stream_capacity(&mut self, capacity: usize) -> Result<&mut Self, DeployError> {
        if capacity == 0 {
            return Err(DeployError::ZeroCapacity(None));
        }
        self.stream_capacity = capacity;
        Ok(self)
    }

    /// Adds a machine; returns its index in the deployment.
    pub fn add_machine(&mut self, machine: Box<dyn StepMachine>) -> usize {
        self.machines.push(machine);
        self.machines.len() - 1
    }

    /// The number of machines added so far.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Registers the synchronous reference of one component, enabling the
    /// dynamic isochrony conformance check on the outcome.
    pub fn add_reference(&mut self, reference: ReferenceComponent) -> &mut Self {
        self.reference.push(reference);
        self
    }

    /// Marks an environment input as *pacing* its consumer: the synchronous
    /// reference presents it at every attempted reaction (the idiom for
    /// inputs read at every activation, like the producer's `a`).
    pub fn mark_paced(&mut self, signal: impl Into<Name>) -> &mut Self {
        self.paced.insert(signal.into());
        self
    }

    /// Feeds an environment input with a finite stream of values.
    pub fn feed<I, V>(&mut self, signal: impl Into<Name>, values: I) -> &mut Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.feeds
            .entry(signal.into())
            .or_default()
            .extend(values.into_iter().map(Into::into));
        self
    }

    /// The name of the transport backend the policy resolves to.  Every
    /// edge of a derived topology is single-producer/single-consumer, so
    /// [`Backend::Auto`] resolves to the SPSC ring.
    fn backend_name(&self) -> &'static str {
        match &self.transport {
            Some(transport) => transport.name(),
            None => match self.policy.backend() {
                Backend::Mpsc => MpscTransport::NAME,
                Backend::Auto | Backend::SpscRing => RingTransport::NAME,
            },
        }
    }

    /// The transport instance that mints the channels.
    fn transport_instance(&self) -> Arc<dyn Transport> {
        match &self.transport {
            Some(transport) => Arc::clone(transport),
            None => match self.policy.backend() {
                Backend::Mpsc => Arc::new(MpscTransport),
                Backend::Auto | Backend::SpscRing => Arc::new(RingTransport),
            },
        }
    }

    /// Derives the channel topology from the machine interfaces, resolved
    /// against the channel policy: every [`ChannelSpec`] reports the
    /// capacity (with its source and, for derived edges, the derivation)
    /// and backend its edge will be wired with.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::DuplicateProducer`] when two machines declare
    /// the same output signal, and — under [`ChannelSizing::Derived`] —
    /// [`DeployError::UnboundedEdge`] for an edge with neither a derived
    /// bound nor an explicit override.
    pub fn topology(&self) -> Result<Topology, DeployError> {
        let mut producer_of: BTreeMap<Name, usize> = BTreeMap::new();
        for (i, machine) in self.machines.iter().enumerate() {
            for output in machine.output_signals() {
                if producer_of.insert(output.clone(), i).is_some() {
                    return Err(DeployError::DuplicateProducer(output));
                }
            }
        }
        let backend = self.backend_name();
        let mut topology = Topology::default();
        let mut environment: BTreeSet<Name> = BTreeSet::new();
        for (j, machine) in self.machines.iter().enumerate() {
            for input in machine.input_signals() {
                match producer_of.get(&input) {
                    Some(&i) if i != j => {
                        let resolved = self
                            .policy
                            .resolve(&input)
                            .map_err(DeployError::UnboundedEdge)?;
                        topology.channels.push(ChannelSpec {
                            signal: input,
                            producer: i,
                            consumer: j,
                            capacity: resolved.capacity,
                            source: resolved.source,
                            derivation: resolved.derivation,
                            backend,
                        });
                    }
                    Some(_) => {} // self-loop: resolved inside the machine
                    None => {
                        environment.insert(input);
                    }
                }
            }
        }
        topology.environment = environment.into_iter().collect();
        Ok(topology)
    }

    /// The static cycle analysis: with bounded blocking channels a
    /// communication cycle can deadlock, so a cyclic topology must either
    /// be *proven* safe or explicitly allowed.
    ///
    /// Under [`ChannelSizing::Derived`] every feedback edge is checked
    /// against its derived bound.  An edge whose capacity undercuts the
    /// bound is refused outright
    /// ([`DeployError::InsufficientFeedbackCapacity`], even when cycles
    /// were explicitly allowed — the calculus positively proves the
    /// channel can fill and wedge the loop).  A cycle whose every edge
    /// carries a derived bound (at full capacity) is *accepted* without
    /// [`set_allow_cycles`](Self::set_allow_cycles): the wait cycle
    /// cannot close on a full channel.  A feedback edge sized only by an
    /// explicit override is not proven: it still requires
    /// `set_allow_cycles(true)`, and is otherwise refused with
    /// [`DeployError::UnprovenFeedbackEdge`] naming the edge (an edge
    /// with neither a bound nor an override never reaches this check —
    /// [`topology`](Self::topology) already refused it as
    /// [`DeployError::UnboundedEdge`]).
    ///
    /// Under [`ChannelSizing::Fixed`] the historic behavior is kept:
    /// cycles are refused ([`DeployError::CyclicTopology`]) unless
    /// explicitly allowed, and allowed cycles rely on the pool
    /// scheduler's dynamic deadlock detection.
    ///
    /// The capacity proof is about *safety* (the wait cycle cannot close
    /// on a full channel); *liveness* — the loop needs a priming token to
    /// start turning — is covered by the priming-liveness pass: when the
    /// installed [`CapacityAnalysis`] carries the k-periodic words of
    /// every component on a loop and proves each one waits on its first
    /// read strictly before its first emission, the run is refused with
    /// [`DeployError::UnprimedCycle`] — even when cycles were explicitly
    /// allowed, the analysis positively proves the loop can never start.
    /// Hand-made bounds installed on machines without word information
    /// stay outside the proof, and the pool scheduler's dynamic detection
    /// remains the backstop for them.
    fn check_cycles(&self, topology: &Topology) -> Result<(), DeployError> {
        let cycle_signals = topology.cycle_signals();
        if cycle_signals.is_empty() {
            return Ok(());
        }
        if self.policy.sizing() == ChannelSizing::Derived {
            if let Some(cycle) = self
                .policy
                .unprimed_cycles()
                .iter()
                .find(|cycle| cycle.signals.iter().any(|s| cycle_signals.contains(s)))
            {
                return Err(DeployError::UnprimedCycle(cycle.clone()));
            }
            let feedback: Vec<&ChannelSpec> = topology
                .channels
                .iter()
                .filter(|spec| cycle_signals.contains(&spec.signal))
                .collect();
            for spec in &feedback {
                if let Some(derived) = self.policy.derived_for(&spec.signal) {
                    if spec.capacity < derived.bound {
                        return Err(DeployError::InsufficientFeedbackCapacity {
                            signal: spec.signal.clone(),
                            required: derived.bound,
                            actual: spec.capacity,
                        });
                    }
                }
            }
            let unproven = feedback
                .iter()
                .find(|spec| self.policy.derived_for(&spec.signal).is_none());
            return match unproven {
                None => Ok(()), // every feedback edge is derivably bounded
                Some(_) if self.allow_cycles => Ok(()),
                Some(spec) => Err(DeployError::UnprovenFeedbackEdge(spec.signal.clone())),
            };
        }
        if self.allow_cycles {
            Ok(())
        } else {
            Err(DeployError::CyclicTopology)
        }
    }

    /// Runs the deployment to completion under the selected
    /// [`ExecutionMode`]: one dedicated OS thread per machine (the
    /// default), or a fixed work-stealing pool cooperatively stepping every
    /// machine — either way connected by bounded channels minted by the
    /// selected transport.  Blocks until every component finished.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when the deployment is empty, the topology
    /// is ill-formed or cyclic, a feed or paced mark does not name an
    /// environment input, or the transport fails to mint an endpoint pair
    /// for an edge ([`DeployError::Transport`]).
    pub fn run(mut self) -> Result<DeploymentOutcome, DeployError> {
        if self.machines.is_empty() {
            return Err(DeployError::Empty);
        }
        let topology = self.topology()?;
        self.check_cycles(&topology)?;
        self.validate_feeds(&topology)?;

        let transport = self.transport_instance();
        let backend = self.backend_name();
        let (sources, sinks) = self.wire_channels(&topology, transport.as_ref())?;

        // Preload the environment streams into their consumers.
        for (j, machine) in self.machines.iter_mut().enumerate() {
            for input in machine.input_signals() {
                if sources[j].contains_key(&input) {
                    continue;
                }
                if let Some(values) = self.feeds.get(&input) {
                    for value in values {
                        machine.feed_value(input.as_str(), *value);
                    }
                }
            }
        }

        // One resumable driver per machine; the execution mode decides how
        // drivers map onto OS threads.
        let max_steps = self.max_steps;
        let mut drivers: Vec<Driver> = Vec::with_capacity(self.machines.len());
        let mut sources = sources.into_iter();
        let mut sinks = sinks.into_iter();
        for machine in self.machines {
            drivers.push(Driver::new(
                machine,
                sources.next().expect("one source map per machine"),
                sinks.next().expect("one sink map per machine"),
                max_steps,
            ));
        }
        // The trace epoch doubles as the wall-clock start: every buffer
        // timestamps against this one `Instant`, which is what makes the
        // merged per-thread timelines comparable.
        let started = Instant::now();
        if let Some(config) = &self.trace {
            for driver in &mut drivers {
                driver.set_trace(TraceBuffer::new(started, config.buffer_capacity));
            }
        }
        let sched_trace = self
            .trace
            .as_ref()
            .map(|config| (started, config.buffer_capacity));
        let (reports, pool_workers, worker_traces): (
            Vec<WorkerReport>,
            Vec<PoolWorkerStats>,
            Vec<TraceBuffer>,
        ) = match self.mode {
            ExecutionMode::ThreadPerComponent => {
                let reports = std::thread::scope(|scope| {
                    let handles: Vec<_> = drivers
                        .into_iter()
                        .map(|driver| scope.spawn(move || worker::run_dedicated(driver)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker thread panicked"))
                        .collect()
                });
                (reports, Vec::new(), Vec::new())
            }
            ExecutionMode::Pool { workers, quantum } => {
                sched::run_pool(drivers, &topology, workers, quantum, sched_trace)
            }
        };
        let elapsed = started.elapsed();

        let parts = OutcomeParts {
            reports,
            channels: topology.channels,
            sizing: self.policy.sizing(),
            backend,
            mode: self.mode,
            pool_workers,
            worker_traces,
            elapsed,
            traced: self.trace.is_some(),
            prediction: self.prediction,
            machine_kind: self.machine_kind,
            feeds: self.feeds,
            reference: self.reference,
            paced: self.paced,
        };
        Ok(parts.build())
    }

    /// Assembles the deployment into a [`StagedDeployment`] for a
    /// [`SharedPool`](crate::SharedPool) instead of running it: the same
    /// static checks and internal channel wiring as [`run`](Self::run),
    /// but the environment inputs become bounded **ingress** channels the
    /// client feeds incrementally
    /// ([`SubmittedDeployment::feed`](crate::SubmittedDeployment::feed))
    /// and the external outputs become bounded **egress** channels the
    /// client drains
    /// ([`poll_outputs`](crate::SubmittedDeployment::poll_outputs)), both
    /// sized by [`set_stream_capacity`](Self::set_stream_capacity).
    /// Streams fed *before* staging are still preloaded and consumed
    /// ahead of any streamed token.
    ///
    /// A full egress channel blocks its producer — the tenant's own
    /// backpressure — and closing the ingress side
    /// ([`close_inputs`](crate::SubmittedDeployment::close_inputs)) is the
    /// normal end of the run: the consumer observes the close as
    /// [`StopReason`](crate::StopReason)`::EnvironmentExhausted`, exactly
    /// like a preloaded stream running dry.
    ///
    /// # Errors
    ///
    /// The same static refusals as [`run`](Self::run): empty deployment,
    /// ill-formed or unproven-cyclic topology, unknown feeds or paced
    /// marks, transport failures.
    pub fn stage(mut self) -> Result<StagedDeployment, DeployError> {
        if self.machines.is_empty() {
            return Err(DeployError::Empty);
        }
        let topology = self.topology()?;
        self.check_cycles(&topology)?;
        let environment = self.validate_feeds(&topology)?;

        let transport = self.transport_instance();
        let backend = self.backend_name();
        let (mut sources, mut sinks) = self.wire_channels(&topology, transport.as_ref())?;

        // Preload pre-staged feeds directly into their consumers: the
        // machine's internal input queue is consumed before its channel is
        // read, so preloaded tokens come strictly before streamed ones.
        for machine in self.machines.iter_mut() {
            for input in machine.input_signals() {
                if !environment.contains(&input) {
                    continue;
                }
                if let Some(values) = self.feeds.get(&input) {
                    for value in values {
                        machine.feed_value(input.as_str(), *value);
                    }
                }
            }
        }

        // Ingress: one bounded channel per (environment input, consumer).
        // The rx side feeds the driver like any upstream edge; the tx side
        // is the client's streaming handle.
        let mut ingress: BTreeMap<Name, IngressPort> = BTreeMap::new();
        for (j, machine) in self.machines.iter().enumerate() {
            for input in machine.input_signals() {
                if !environment.contains(&input) {
                    continue;
                }
                let (tx, rx) = transport.open(self.stream_capacity)?;
                sources[j].insert(input.clone(), rx);
                ingress
                    .entry(input)
                    .or_insert_with(|| IngressPort {
                        consumers: Vec::new(),
                    })
                    .consumers
                    .push((j, tx));
            }
        }

        // Egress: one bounded channel per external output (an output no
        // other machine consumes).  The tx rides along the producer's
        // ordinary sinks; the rx side is the client's polling handle.
        let channel_signals: BTreeSet<Name> =
            topology.channels.iter().map(|c| c.signal.clone()).collect();
        let mut egress: BTreeMap<Name, EgressPort> = BTreeMap::new();
        for (i, machine) in self.machines.iter().enumerate() {
            for output in machine.output_signals() {
                if channel_signals.contains(&output) {
                    continue;
                }
                let (tx, rx) = transport.open(self.stream_capacity)?;
                sinks[i].entry(output.clone()).or_default().push(tx);
                egress.insert(output, EgressPort { producer: i, rx });
            }
        }

        let max_steps = self.max_steps;
        let mut names = Vec::with_capacity(self.machines.len());
        let mut drivers: Vec<Driver> = Vec::with_capacity(self.machines.len());
        let mut sources = sources.into_iter();
        let mut sinks = sinks.into_iter();
        for machine in self.machines {
            names.push(machine.machine_name().to_string());
            let mut driver = Driver::new(
                machine,
                sources.next().expect("one source map per machine"),
                sinks.next().expect("one sink map per machine"),
                max_steps,
            );
            for signal in &topology.environment {
                driver.mark_environment(signal.clone());
            }
            drivers.push(driver);
        }

        Ok(StagedDeployment {
            drivers,
            topology,
            ingress,
            egress,
            names,
            feeds: self.feeds,
            reference: self.reference,
            paced: self.paced,
            backend,
            sizing: self.policy.sizing(),
            prediction: self.prediction,
            trace: self.trace,
            machine_kind: self.machine_kind,
        })
    }

    /// Validates the feeds and paced marks against the derived environment
    /// and returns the environment inputs as a set.
    fn validate_feeds(&self, topology: &Topology) -> Result<BTreeSet<Name>, DeployError> {
        let inputs: BTreeSet<Name> = self
            .machines
            .iter()
            .flat_map(|m| m.input_signals())
            .collect();
        let environment: BTreeSet<Name> = topology.environment.iter().cloned().collect();
        for signal in self.feeds.keys() {
            if !inputs.contains(signal) {
                return Err(DeployError::UnknownFeed(signal.clone()));
            }
            if !environment.contains(signal) {
                return Err(DeployError::FedInternalSignal(signal.clone()));
            }
        }
        for signal in &self.paced {
            if !environment.contains(signal) {
                return Err(DeployError::UnknownPaced(signal.clone()));
            }
        }
        Ok(environment)
    }

    /// Wires the bounded internal channels: one endpoint pair per edge,
    /// minted by the transport at the edge's resolved capacity; returns
    /// the per-machine source and sink endpoint maps.
    #[allow(clippy::type_complexity)]
    fn wire_channels(
        &self,
        topology: &Topology,
        transport: &dyn Transport,
    ) -> Result<
        (
            Vec<BTreeMap<Name, Box<dyn TokenRx>>>,
            Vec<BTreeMap<Name, Vec<Box<dyn TokenTx>>>>,
        ),
        DeployError,
    > {
        let n = self.machines.len();
        let mut sources: Vec<BTreeMap<Name, Box<dyn TokenRx>>> =
            (0..n).map(|_| BTreeMap::new()).collect();
        let mut sinks: Vec<BTreeMap<Name, Vec<Box<dyn TokenTx>>>> =
            (0..n).map(|_| BTreeMap::new()).collect();
        for spec in &topology.channels {
            let (tx, rx) = transport.open(spec.capacity)?;
            sinks[spec.producer]
                .entry(spec.signal.clone())
                .or_default()
                .push(tx);
            sources[spec.consumer].insert(spec.signal.clone(), rx);
        }
        Ok((sources, sinks))
    }
}

impl Default for Deployment {
    fn default() -> Self {
        Deployment::new()
    }
}

impl fmt::Debug for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("machines", &self.machines.len())
            .field("policy", &self.policy)
            .field("transport", &self.transport.as_ref().map(|t| t.name()))
            .field("mode", &self.mode)
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

/// The result of a finished deployment run: the produced flows, the
/// execution counters and everything needed to replay the run against the
/// synchronous reference.
#[derive(Debug, Clone)]
pub struct DeploymentOutcome {
    flows: Flows,
    stats: DeploymentStats,
    feeds: BTreeMap<Name, Vec<Value>>,
    reference: Vec<ReferenceComponent>,
    paced: BTreeSet<Name>,
    trace: Option<Trace>,
}

impl DeploymentOutcome {
    /// The flow produced on an output signal (empty for unknown signals).
    pub fn flow(&self, signal: &str) -> &[Value] {
        self.flows
            .get(signal)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Every produced flow, keyed by output signal.
    pub fn flows(&self) -> &Flows {
        &self.flows
    }

    /// The execution counters of the run.
    pub fn stats(&self) -> &DeploymentStats {
        &self.stats
    }

    /// The environment streams the run consumed (as fed).
    pub fn feeds(&self) -> &BTreeMap<Name, Vec<Value>> {
        &self.feeds
    }

    /// The merged event timeline of the run, when the deployment ran with
    /// tracing on ([`Deployment::set_tracing`]); `None` otherwise.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Replays the same environment streams through the synchronous
    /// reference interpreter of every component and compares the flows —
    /// the dynamic counterpart of Theorem 1 (isochrony): the multi-threaded
    /// bounded-FIFO execution must observe exactly the flows of the
    /// synchronous semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::NoReference`] when the deployment was
    /// assembled without reference components (e.g. directly from step
    /// programs rather than from a `Design`).
    pub fn check_conformance(&self) -> Result<ConformanceReport, ConformanceError> {
        let budget = self.replay_budget();
        self.check_conformance_with(budget)
    }

    /// Like [`check_conformance`](Self::check_conformance) with an explicit
    /// replay turn budget.
    pub fn check_conformance_with(
        &self,
        max_turns: usize,
    ) -> Result<ConformanceReport, ConformanceError> {
        if self.reference.is_empty() {
            return Err(ConformanceError::NoReference);
        }
        let reference = replay_reference(&self.reference, &self.feeds, &self.paced, max_turns);
        Ok(ConformanceReport::compare(&reference, &self.flows))
    }

    /// A generous default turn budget for the reference replay, scaled to
    /// the volume of the environment streams.
    fn replay_budget(&self) -> usize {
        let tokens: usize = self.feeds.values().map(Vec::len).sum();
        let components = self.reference.len().max(1);
        (tokens + 16) * 16 * components
    }
}

/// The client-side sending endpoints of one environment input of a staged
/// deployment: one bounded channel per consuming machine.
pub(crate) struct IngressPort {
    /// `(machine index, sending endpoint)` per consumer of the signal.
    pub(crate) consumers: Vec<(usize, Box<dyn TokenTx>)>,
}

/// The client-side receiving endpoint of one external output of a staged
/// deployment.
pub(crate) struct EgressPort {
    /// Index of the producing machine (the component a drain must wake
    /// when the egress buffer was full).
    pub(crate) producer: usize,
    /// The receiving endpoint the client polls.
    pub(crate) rx: Box<dyn TokenRx>,
}

/// A deployment assembled for a [`SharedPool`](crate::SharedPool) instead
/// of a batch run: every static check has passed, the internal channels
/// are wired, and the environment boundary is exposed as bounded
/// streaming ingress/egress channels.  Produced by [`Deployment::stage`],
/// consumed by [`SharedPool::submit`](crate::SharedPool::submit).
pub struct StagedDeployment {
    pub(crate) drivers: Vec<Driver>,
    pub(crate) topology: Topology,
    pub(crate) ingress: BTreeMap<Name, IngressPort>,
    pub(crate) egress: BTreeMap<Name, EgressPort>,
    pub(crate) names: Vec<String>,
    pub(crate) feeds: BTreeMap<Name, Vec<Value>>,
    pub(crate) reference: Vec<ReferenceComponent>,
    pub(crate) paced: BTreeSet<Name>,
    pub(crate) backend: &'static str,
    pub(crate) sizing: ChannelSizing,
    pub(crate) prediction: Option<crate::predict::PerformancePrediction>,
    pub(crate) trace: Option<TraceConfig>,
    pub(crate) machine_kind: Option<crate::machine::MachineKind>,
}

impl StagedDeployment {
    /// The number of components the deployment will occupy on the pool.
    pub fn component_count(&self) -> usize {
        self.drivers.len()
    }

    /// The component names, in deployment order.
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    /// The static channel topology the stage derived.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The environment inputs exposed as streaming ingress channels.
    pub fn inputs(&self) -> impl Iterator<Item = &Name> {
        self.ingress.keys()
    }

    /// The external outputs exposed as streaming egress channels.
    pub fn outputs(&self) -> impl Iterator<Item = &Name> {
        self.egress.keys()
    }
}

impl fmt::Debug for StagedDeployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagedDeployment")
            .field("components", &self.names)
            .field("channels", &self.topology.channels.len())
            .field("inputs", &self.ingress.len())
            .field("outputs", &self.egress.len())
            .finish()
    }
}

/// Everything needed to assemble a [`DeploymentOutcome`] once the
/// components have reported — shared by the batch [`Deployment::run`] and
/// the shared pool's
/// [`SubmittedDeployment::drain`](crate::SubmittedDeployment::drain),
/// which is what keeps a served tenant's report shape identical to a
/// batch run's.
pub(crate) struct OutcomeParts {
    pub(crate) reports: Vec<WorkerReport>,
    pub(crate) channels: Vec<ChannelSpec>,
    pub(crate) sizing: ChannelSizing,
    pub(crate) backend: &'static str,
    pub(crate) mode: ExecutionMode,
    pub(crate) pool_workers: Vec<PoolWorkerStats>,
    pub(crate) worker_traces: Vec<TraceBuffer>,
    pub(crate) elapsed: Duration,
    pub(crate) traced: bool,
    pub(crate) prediction: Option<crate::predict::PerformancePrediction>,
    pub(crate) machine_kind: Option<crate::machine::MachineKind>,
    pub(crate) feeds: BTreeMap<Name, Vec<Value>>,
    pub(crate) reference: Vec<ReferenceComponent>,
    pub(crate) paced: BTreeSet<Name>,
}

impl OutcomeParts {
    pub(crate) fn build(self) -> DeploymentOutcome {
        let mut flows: Flows = Flows::new();
        let mut components = Vec::with_capacity(self.reports.len());
        let mut component_traces = Vec::new();
        for report in self.reports {
            flows.extend(report.flows);
            if let Some(buffer) = report.trace {
                component_traces.push((report.stats.name.clone(), buffer));
            }
            components.push(report.stats);
        }
        let trace = self
            .traced
            .then(|| Trace::assemble(component_traces, self.worker_traces, self.channels.clone()));
        DeploymentOutcome {
            flows,
            stats: DeploymentStats {
                components,
                channels: self.channels.len(),
                capacity: CapacityRange::of_edges(self.channels.iter().map(|c| c.capacity)),
                sizing: self.sizing,
                edges: self.channels,
                backend: self.backend,
                mode: self.mode,
                pool_workers: self.pool_workers,
                elapsed: self.elapsed,
                prediction: self.prediction,
                trace: trace.as_ref().map(Trace::summary),
                machine_kind: self.machine_kind,
            },
            feeds: self.feeds,
            reference: self.reference,
            paced: self.paced,
            trace,
        }
    }
}
