//! `gals-rt` — a multi-threaded GALS deployment runtime for verified
//! designs.
//!
//! The paper's central claim (Theorem 1) is that a design passing the
//! static weak-hierarchy check can be compiled **separately per component
//! and executed asynchronously** with no loss of synchronous semantics.
//! This crate is the execution half of that claim at production shape:
//!
//! * a [`Deployment`] builder that assembles separately compiled
//!   components ([`StepMachine`]s), derives the channel topology from
//!   their interfaces, and runs **each component on its own OS thread**;
//! * **bounded** FIFO channels with blocking-read/blocking-write
//!   backpressure — the finite-buffer refinement of the paper's
//!   unbounded-FIFO asynchronous model (`^` [`sim::AsyncNetwork`]);
//! * a **pluggable transport layer** ([`Transport`] minting
//!   [`TokenTx`]/[`TokenRx`] endpoint pairs) with two built-in backends —
//!   a bounded mpsc channel and a **lock-free SPSC ring buffer**
//!   ([`ring`]) picked automatically for the point-to-point edges the
//!   topology derivation produces — and a [`ChannelPolicy`] for per-signal
//!   capacities and backend selection;
//! * per-component counters (reactions, blocked reads, tokens) aggregated
//!   into a [`DeploymentStats`] report;
//! * a dynamic **isochrony conformance checker**
//!   ([`DeploymentOutcome::check_conformance`]) that replays the same
//!   environment streams through the synchronous reference interpreter and
//!   asserts flow equality — Theorem 1 as an executable end-to-end test at
//!   arbitrary component counts.
//!
//! The crate is machine-agnostic: `codegen::SequentialRuntime` implements
//! [`StepMachine`] (so generated step programs deploy directly), and
//! `isochron::Design::deploy` assembles a ready-to-run deployment from a
//! verified design, reference kernels and activations included.
//!
//! # Example
//!
//! Deploying two hand-rolled machines (a counter and a doubler) on two
//! threads, connected by a bounded channel:
//!
//! ```
//! use gals_rt::{Deployment, StepFault, StepMachine};
//! use signal_lang::{Name, Value};
//!
//! struct Count { ticks: Vec<Value>, out: Vec<Value> }
//! impl StepMachine for Count {
//!     fn machine_name(&self) -> &str { "count" }
//!     fn input_signals(&self) -> Vec<Name> { vec![Name::from("tick")] }
//!     fn output_signals(&self) -> Vec<Name> { vec![Name::from("n")] }
//!     fn feed_value(&mut self, _signal: &str, value: Value) { self.ticks.push(value); }
//!     fn try_step(&mut self) -> Result<(), StepFault> {
//!         if self.ticks.is_empty() {
//!             return Err(StepFault::NeedInput(Name::from("tick")));
//!         }
//!         self.ticks.remove(0);
//!         self.out.push(Value::Int(self.out.len() as i64 + 1));
//!         Ok(())
//!     }
//!     fn produced(&self, _signal: &str) -> &[Value] { &self.out }
//! }
//!
//! struct Double { queue: Vec<Value>, out: Vec<Value> }
//! impl StepMachine for Double {
//!     fn machine_name(&self) -> &str { "double" }
//!     fn input_signals(&self) -> Vec<Name> { vec![Name::from("n")] }
//!     fn output_signals(&self) -> Vec<Name> { vec![Name::from("d")] }
//!     fn feed_value(&mut self, _signal: &str, value: Value) { self.queue.push(value); }
//!     fn try_step(&mut self) -> Result<(), StepFault> {
//!         if self.queue.is_empty() {
//!             return Err(StepFault::NeedInput(Name::from("n")));
//!         }
//!         let n = self.queue.remove(0).as_int().unwrap();
//!         self.out.push(Value::Int(2 * n));
//!         Ok(())
//!     }
//!     fn produced(&self, _signal: &str) -> &[Value] { &self.out }
//! }
//!
//! let mut deployment = Deployment::new();
//! deployment.add_machine(Box::new(Count { ticks: vec![], out: vec![] }));
//! deployment.add_machine(Box::new(Double { queue: vec![], out: vec![] }));
//! deployment.feed("tick", [true, true, true]);
//! let outcome = deployment.run()?;
//! assert_eq!(outcome.flow("d"), &[Value::Int(2), Value::Int(4), Value::Int(6)]);
//! assert_eq!(outcome.stats().total_reactions(), 6);
//! # Ok::<(), gals_rt::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod deploy;
pub mod machine;
pub mod ring;
pub mod stats;
pub mod transport;
mod worker;

pub use conformance::{ConformanceError, ConformanceReport, ReferenceComponent};
pub use deploy::{
    ChannelSpec, DeployError, Deployment, DeploymentOutcome, Topology, DEFAULT_MAX_STEPS,
};
pub use machine::{StepFault, StepMachine};
pub use ring::{RingReceiver, RingSender, RingTransport};
pub use stats::{ComponentStats, DeploymentStats, StopReason};
pub use transport::{
    Backend, ChannelClosed, ChannelPolicy, MpscTransport, TokenRx, TokenTx, Transport, TryRecvError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::{Name, Value};

    /// A machine that consumes one token of `input` per step and emits the
    /// running sum on `output`.
    struct Summer {
        name: String,
        input: Name,
        output: Name,
        queue: Vec<Value>,
        produced: Vec<Value>,
        sum: i64,
    }

    impl Summer {
        fn new(name: &str, input: &str, output: &str) -> Self {
            Summer {
                name: name.into(),
                input: Name::from(input),
                output: Name::from(output),
                queue: Vec::new(),
                produced: Vec::new(),
                sum: 0,
            }
        }
    }

    impl StepMachine for Summer {
        fn machine_name(&self) -> &str {
            &self.name
        }
        fn input_signals(&self) -> Vec<Name> {
            vec![self.input.clone()]
        }
        fn output_signals(&self) -> Vec<Name> {
            vec![self.output.clone()]
        }
        fn feed_value(&mut self, _signal: &str, value: Value) {
            self.queue.push(value);
        }
        fn try_step(&mut self) -> Result<(), StepFault> {
            if self.queue.is_empty() {
                return Err(StepFault::NeedInput(self.input.clone()));
            }
            let v = self.queue.remove(0).as_int().unwrap_or(0);
            self.sum += v;
            self.produced.push(Value::Int(self.sum));
            Ok(())
        }
        fn produced(&self, _signal: &str) -> &[Value] {
            &self.produced
        }
    }

    fn pipeline(n: usize) -> Deployment {
        let mut deployment = Deployment::new();
        for i in 0..n {
            let input = if i == 0 {
                "s0".to_string()
            } else {
                format!("s{i}")
            };
            let output = format!("s{}", i + 1);
            deployment.add_machine(Box::new(Summer::new(&format!("stage{i}"), &input, &output)));
        }
        deployment
    }

    #[test]
    fn a_pipeline_of_eight_stages_runs_on_eight_threads() {
        for backend in [Backend::Auto, Backend::Mpsc, Backend::SpscRing] {
            for capacity in [1usize, 4, 64] {
                let mut deployment = pipeline(8);
                deployment.set_backend(backend);
                deployment.set_capacity(capacity).expect("nonzero");
                deployment.feed("s0", (1..=32).map(Value::Int));
                let outcome = deployment.run().expect("runs");
                // Each stage performed 32 reactions.
                assert_eq!(outcome.stats().total_reactions(), 8 * 32);
                assert_eq!(outcome.stats().components.len(), 8);
                // Prefix sums applied 8 times: the final flow is
                // deterministic whatever the interleaving, the capacity
                // and the channel backend.
                let last = outcome.flow("s8");
                assert_eq!(last.len(), 32);
                let reference = {
                    let mut values: Vec<i64> = (1..=32).collect();
                    for _ in 0..8 {
                        let mut sum = 0;
                        for v in values.iter_mut() {
                            sum += *v;
                            *v = sum;
                        }
                    }
                    values
                };
                let got: Vec<i64> = last.iter().map(|v| v.as_int().unwrap()).collect();
                assert_eq!(got, reference, "backend {backend} capacity {capacity}");
            }
        }
    }

    #[test]
    fn topology_derivation_finds_channels_and_environment() {
        let deployment = pipeline(3);
        let topology = deployment.topology().expect("well-formed");
        assert_eq!(topology.channels.len(), 2);
        assert_eq!(topology.environment, vec![Name::from("s0")]);
        assert_eq!(
            topology.channels[0],
            ChannelSpec {
                signal: Name::from("s1"),
                producer: 0,
                consumer: 1,
                capacity: 1,
                backend: RingTransport::NAME,
            }
        );
        assert!(!topology.has_cycle());
    }

    #[test]
    fn the_policy_resolution_is_reported_per_edge() {
        let mut deployment = pipeline(3);
        deployment.set_capacity(8).expect("nonzero");
        deployment.set_channel_capacity("s2", 2).expect("nonzero");
        deployment.set_backend(Backend::Mpsc);
        let topology = deployment.topology().expect("well-formed");
        let by_signal: std::collections::BTreeMap<_, _> = topology
            .channels
            .iter()
            .map(|c| (c.signal.as_str().to_string(), (c.capacity, c.backend)))
            .collect();
        assert_eq!(by_signal["s1"], (8, MpscTransport::NAME));
        assert_eq!(by_signal["s2"], (2, MpscTransport::NAME));
    }

    #[test]
    fn zero_capacities_are_rejected_not_clamped() {
        // Regression: capacity 0 used to thread straight into the channel
        // constructor (a rendezvous that deadlocks the worker loop); it
        // must be a typed error instead.
        let mut deployment = pipeline(2);
        assert_eq!(
            deployment.set_capacity(0).unwrap_err(),
            DeployError::ZeroCapacity(None)
        );
        assert_eq!(
            deployment.set_channel_capacity("s1", 0).unwrap_err(),
            DeployError::ZeroCapacity(Some(Name::from("s1")))
        );
        // The rejected sets left the policy untouched and the deployment
        // fully runnable.
        assert_eq!(deployment.capacity(), 1);
        deployment.feed("s0", (1..=4).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.flow("s2").len(), 4);
    }

    #[test]
    fn both_backends_produce_identical_flows_and_report_their_name() {
        let mut flows = Vec::new();
        for (backend, name) in [
            (Backend::Mpsc, MpscTransport::NAME),
            (Backend::SpscRing, RingTransport::NAME),
        ] {
            let mut deployment = pipeline(4);
            deployment.set_backend(backend);
            deployment.feed("s0", (1..=16).map(Value::Int));
            let outcome = deployment.run().expect("runs");
            assert_eq!(outcome.stats().backend, name);
            flows.push(outcome.flow("s4").to_vec());
        }
        assert_eq!(flows[0], flows[1]);
    }

    #[test]
    fn a_custom_transport_carries_every_channel() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// A transport that counts how many channels it minted and at what
        /// capacity, delegating the actual medium to the ring.
        #[derive(Debug, Default)]
        struct Counting {
            opened: AtomicUsize,
            total_capacity: AtomicUsize,
        }
        impl Transport for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn open(&self, capacity: usize) -> transport::Endpoints {
                self.opened.fetch_add(1, Ordering::Relaxed);
                self.total_capacity.fetch_add(capacity, Ordering::Relaxed);
                RingTransport.open(capacity)
            }
        }

        let transport = std::sync::Arc::new(Counting::default());
        let mut deployment = pipeline(4);
        deployment.set_transport(transport.clone());
        deployment.set_capacity(3).expect("nonzero");
        assert_eq!(
            deployment.topology().expect("well-formed").channels[0].backend,
            "counting"
        );
        deployment.feed("s0", (1..=8).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().backend, "counting");
        assert_eq!(transport.opened.load(Ordering::Relaxed), 3);
        assert_eq!(transport.total_capacity.load(Ordering::Relaxed), 9);
        assert_eq!(outcome.flow("s4").len(), 8);
    }

    #[test]
    fn cyclic_topologies_are_refused_instead_of_deadlocking() {
        // a reads q and writes p; b reads p and writes q: with blocking
        // bounded channels both workers would wait on each other forever,
        // so the run is refused up front.
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("a", "q", "p")));
        deployment.add_machine(Box::new(Summer::new("b", "p", "q")));
        assert!(deployment.topology().expect("well-formed").has_cycle());
        assert_eq!(deployment.run().unwrap_err(), DeployError::CyclicTopology);
    }

    #[test]
    fn duplicate_producers_are_rejected() {
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("a", "i", "o")));
        deployment.add_machine(Box::new(Summer::new("b", "j", "o")));
        assert_eq!(
            deployment.topology().unwrap_err(),
            DeployError::DuplicateProducer(Name::from("o"))
        );
        assert!(deployment.run().is_err());
    }

    #[test]
    fn feeding_an_internal_or_unknown_signal_is_rejected() {
        let mut deployment = pipeline(2);
        deployment.feed("s1", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::FedInternalSignal(Name::from("s1"))
        );
        let mut deployment = pipeline(2);
        deployment.feed("nosuch", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::UnknownFeed(Name::from("nosuch"))
        );
        let empty = Deployment::new();
        assert_eq!(empty.run().unwrap_err(), DeployError::Empty);
    }

    #[test]
    fn stats_record_backpressure_and_stop_reasons() {
        let mut deployment = pipeline(2);
        deployment.set_capacity(1).expect("nonzero");
        deployment.feed("s0", (1..=8).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        let stats = outcome.stats();
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.channels, 1);
        // Stage 0 drained its environment stream; stage 1 stopped when the
        // upstream channel closed.
        assert_eq!(
            stats.components[0].stop,
            StopReason::EnvironmentExhausted(Name::from("s0"))
        );
        assert_eq!(
            stats.components[1].stop,
            StopReason::UpstreamClosed(Name::from("s1"))
        );
        assert_eq!(stats.components[0].tokens_sent, 8);
        assert_eq!(stats.components[1].tokens_received, 8);
        // A read only counts as blocked when the buffer was actually empty,
        // so the counter never exceeds the tokens received (plus the final
        // wait that observed the close).
        assert!(stats.components[1].blocked_reads <= stats.components[1].tokens_received + 1);
    }

    #[test]
    fn the_step_budget_stops_runaway_machines() {
        /// A machine that reacts forever without consuming anything.
        struct Spinner {
            produced: Vec<Value>,
        }
        impl StepMachine for Spinner {
            fn machine_name(&self) -> &str {
                "spinner"
            }
            fn input_signals(&self) -> Vec<Name> {
                Vec::new()
            }
            fn output_signals(&self) -> Vec<Name> {
                vec![Name::from("z")]
            }
            fn feed_value(&mut self, _signal: &str, _value: Value) {}
            fn try_step(&mut self) -> Result<(), StepFault> {
                self.produced.push(Value::Bool(true));
                Ok(())
            }
            fn produced(&self, _signal: &str) -> &[Value] {
                &self.produced
            }
        }
        let mut deployment = Deployment::new();
        deployment.set_max_steps(100);
        deployment.add_machine(Box::new(Spinner {
            produced: Vec::new(),
        }));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().components[0].reactions, 100);
        assert_eq!(outcome.stats().components[0].stop, StopReason::StepLimit);
    }

    #[test]
    fn conformance_without_a_reference_is_an_error() {
        let mut deployment = pipeline(1);
        deployment.feed("s0", [Value::Int(1)]);
        let outcome = deployment.run().expect("runs");
        assert_eq!(
            outcome.check_conformance().unwrap_err(),
            ConformanceError::NoReference
        );
    }
}
