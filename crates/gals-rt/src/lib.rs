//! `gals-rt` — a multi-threaded GALS deployment runtime for verified
//! designs.
//!
//! The paper's central claim (Theorem 1) is that a design passing the
//! static weak-hierarchy check can be compiled **separately per component
//! and executed asynchronously** with no loss of synchronous semantics.
//! This crate is the execution half of that claim at production shape:
//!
//! * a [`Deployment`] builder that assembles separately compiled
//!   components ([`StepMachine`]s), derives the channel topology from
//!   their interfaces, and runs **each component on its own OS thread**;
//! * **bounded** FIFO channels with blocking-read/blocking-write
//!   backpressure — the finite-buffer refinement of the paper's
//!   unbounded-FIFO asynchronous model (`^` [`sim::AsyncNetwork`]);
//! * a **pluggable transport layer** ([`Transport`] minting
//!   [`TokenTx`]/[`TokenRx`] endpoint pairs) with two built-in backends —
//!   a bounded mpsc channel and a **lock-free SPSC ring buffer**
//!   ([`ring`]) picked automatically for the point-to-point edges the
//!   topology derivation produces — and a [`ChannelPolicy`] for per-signal
//!   capacities and backend selection;
//! * per-component counters (reactions, blocked reads, tokens) aggregated
//!   into a [`DeploymentStats`] report;
//! * a dynamic **isochrony conformance checker**
//!   ([`DeploymentOutcome::check_conformance`]) that replays the same
//!   environment streams through the synchronous reference interpreter and
//!   asserts flow equality — Theorem 1 as an executable end-to-end test at
//!   arbitrary component counts.
//!
//! The crate is machine-agnostic: `codegen::SequentialRuntime` implements
//! [`StepMachine`] (so generated step programs deploy directly), and
//! `isochron::Design::deploy` assembles a ready-to-run deployment from a
//! verified design, reference kernels and activations included.
//!
//! # Example
//!
//! Deploying two hand-rolled machines (a counter and a doubler) on two
//! threads, connected by a bounded channel:
//!
//! ```
//! use gals_rt::{Deployment, StepFault, StepMachine};
//! use signal_lang::{Name, Value};
//!
//! struct Count { ticks: Vec<Value>, out: Vec<Value> }
//! impl StepMachine for Count {
//!     fn machine_name(&self) -> &str { "count" }
//!     fn input_signals(&self) -> Vec<Name> { vec![Name::from("tick")] }
//!     fn output_signals(&self) -> Vec<Name> { vec![Name::from("n")] }
//!     fn feed_value(&mut self, _signal: &str, value: Value) { self.ticks.push(value); }
//!     fn try_step(&mut self) -> Result<(), StepFault> {
//!         if self.ticks.is_empty() {
//!             return Err(StepFault::NeedInput(Name::from("tick")));
//!         }
//!         self.ticks.remove(0);
//!         self.out.push(Value::Int(self.out.len() as i64 + 1));
//!         Ok(())
//!     }
//!     fn produced(&self, _signal: &str) -> &[Value] { &self.out }
//! }
//!
//! struct Double { queue: Vec<Value>, out: Vec<Value> }
//! impl StepMachine for Double {
//!     fn machine_name(&self) -> &str { "double" }
//!     fn input_signals(&self) -> Vec<Name> { vec![Name::from("n")] }
//!     fn output_signals(&self) -> Vec<Name> { vec![Name::from("d")] }
//!     fn feed_value(&mut self, _signal: &str, value: Value) { self.queue.push(value); }
//!     fn try_step(&mut self) -> Result<(), StepFault> {
//!         if self.queue.is_empty() {
//!             return Err(StepFault::NeedInput(Name::from("n")));
//!         }
//!         let n = self.queue.remove(0).as_int().unwrap();
//!         self.out.push(Value::Int(2 * n));
//!         Ok(())
//!     }
//!     fn produced(&self, _signal: &str) -> &[Value] { &self.out }
//! }
//!
//! let mut deployment = Deployment::new();
//! deployment.add_machine(Box::new(Count { ticks: vec![], out: vec![] }));
//! deployment.add_machine(Box::new(Double { queue: vec![], out: vec![] }));
//! deployment.feed("tick", [true, true, true]);
//! let outcome = deployment.run()?;
//! assert_eq!(outcome.flow("d"), &[Value::Int(2), Value::Int(4), Value::Int(6)]);
//! assert_eq!(outcome.stats().total_reactions(), 6);
//! # Ok::<(), gals_rt::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod conformance;
pub mod deploy;
pub mod machine;
pub mod predict;
pub mod ring;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod transport;
mod worker;

pub use capacity::{CapacityAnalysis, DerivedCapacity, EdgeClocks, UnprimedCycle};
pub use conformance::{replay_reference, ConformanceError, ConformanceReport, ReferenceComponent};
pub use deploy::{
    ChannelSpec, DeployError, Deployment, DeploymentOutcome, StagedDeployment, Topology,
    DEFAULT_MAX_STEPS, DEFAULT_STREAM_CAPACITY,
};
pub use machine::{MachineKind, StepFault, StepMachine};
pub use predict::{ComponentPrediction, EdgePrediction, PerformancePrediction};
pub use ring::{RingReceiver, RingSender, RingTransport};
pub use sched::{
    DrainError, ExecutionMode, PoolOptions, SharedPool, SubmitOptions, SubmittedDeployment,
};
pub use stats::{CapacityRange, ComponentStats, DeploymentStats, PoolWorkerStats, StopReason};
pub use trace::{
    BlockDirection, ComponentActivity, ComponentDrift, ComponentTrace, DriftReport, EdgeBlocking,
    EdgeDrift, EdgeOccupancy, Trace, TraceConfig, TraceEvent, TraceRecord, TraceSummary,
};
pub use transport::{
    Backend, CapacitySource, ChannelClosed, ChannelPolicy, ChannelSizing, Endpoints, MpscTransport,
    ResolvedCapacity, TokenRx, TokenTx, Transport, TransportError, TryRecvError, TrySendError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::{Name, Value};
    use std::time::Duration;

    /// A machine that consumes one token of `input` per step and emits the
    /// running sum on `output`.
    struct Summer {
        name: String,
        input: Name,
        output: Name,
        queue: Vec<Value>,
        produced: Vec<Value>,
        sum: i64,
    }

    impl Summer {
        fn new(name: &str, input: &str, output: &str) -> Self {
            Summer {
                name: name.into(),
                input: Name::from(input),
                output: Name::from(output),
                queue: Vec::new(),
                produced: Vec::new(),
                sum: 0,
            }
        }
    }

    impl StepMachine for Summer {
        fn machine_name(&self) -> &str {
            &self.name
        }
        fn input_signals(&self) -> Vec<Name> {
            vec![self.input.clone()]
        }
        fn output_signals(&self) -> Vec<Name> {
            vec![self.output.clone()]
        }
        fn feed_value(&mut self, _signal: &str, value: Value) {
            self.queue.push(value);
        }
        fn try_step(&mut self) -> Result<(), StepFault> {
            if self.queue.is_empty() {
                return Err(StepFault::NeedInput(self.input.clone()));
            }
            let v = self.queue.remove(0).as_int().unwrap_or(0);
            self.sum += v;
            self.produced.push(Value::Int(self.sum));
            Ok(())
        }
        fn produced(&self, _signal: &str) -> &[Value] {
            &self.produced
        }
    }

    fn pipeline(n: usize) -> Deployment {
        let mut deployment = Deployment::new();
        for i in 0..n {
            let input = if i == 0 {
                "s0".to_string()
            } else {
                format!("s{i}")
            };
            let output = format!("s{}", i + 1);
            deployment.add_machine(Box::new(Summer::new(&format!("stage{i}"), &input, &output)));
        }
        deployment
    }

    #[test]
    fn a_pipeline_of_eight_stages_runs_on_eight_threads() {
        for backend in [Backend::Auto, Backend::Mpsc, Backend::SpscRing] {
            for capacity in [1usize, 4, 64] {
                let mut deployment = pipeline(8);
                deployment.set_backend(backend);
                deployment.set_capacity(capacity).expect("nonzero");
                deployment.feed("s0", (1..=32).map(Value::Int));
                let outcome = deployment.run().expect("runs");
                // Each stage performed 32 reactions.
                assert_eq!(outcome.stats().total_reactions(), 8 * 32);
                assert_eq!(outcome.stats().components.len(), 8);
                // Prefix sums applied 8 times: the final flow is
                // deterministic whatever the interleaving, the capacity
                // and the channel backend.
                let last = outcome.flow("s8");
                assert_eq!(last.len(), 32);
                let reference = {
                    let mut values: Vec<i64> = (1..=32).collect();
                    for _ in 0..8 {
                        let mut sum = 0;
                        for v in values.iter_mut() {
                            sum += *v;
                            *v = sum;
                        }
                    }
                    values
                };
                let got: Vec<i64> = last.iter().map(|v| v.as_int().unwrap()).collect();
                assert_eq!(got, reference, "backend {backend} capacity {capacity}");
            }
        }
    }

    #[test]
    fn topology_derivation_finds_channels_and_environment() {
        let deployment = pipeline(3);
        let topology = deployment.topology().expect("well-formed");
        assert_eq!(topology.channels.len(), 2);
        assert_eq!(topology.environment, vec![Name::from("s0")]);
        assert_eq!(
            topology.channels[0],
            ChannelSpec {
                signal: Name::from("s1"),
                producer: 0,
                consumer: 1,
                capacity: 1,
                source: CapacitySource::Default,
                derivation: None,
                backend: RingTransport::NAME,
            }
        );
        assert!(!topology.has_cycle());
        assert!(topology.cycle_signals().is_empty());
    }

    #[test]
    fn the_policy_resolution_is_reported_per_edge() {
        let mut deployment = pipeline(3);
        deployment.set_capacity(8).expect("nonzero");
        deployment.set_channel_capacity("s2", 2).expect("nonzero");
        deployment.set_backend(Backend::Mpsc);
        let topology = deployment.topology().expect("well-formed");
        let by_signal: std::collections::BTreeMap<_, _> = topology
            .channels
            .iter()
            .map(|c| (c.signal.as_str().to_string(), (c.capacity, c.backend)))
            .collect();
        assert_eq!(by_signal["s1"], (8, MpscTransport::NAME));
        assert_eq!(by_signal["s2"], (2, MpscTransport::NAME));
    }

    #[test]
    fn zero_capacities_are_rejected_not_clamped() {
        // Regression: capacity 0 used to thread straight into the channel
        // constructor (a rendezvous that deadlocks the worker loop); it
        // must be a typed error instead.
        let mut deployment = pipeline(2);
        assert_eq!(
            deployment.set_capacity(0).unwrap_err(),
            DeployError::ZeroCapacity(None)
        );
        assert_eq!(
            deployment.set_channel_capacity("s1", 0).unwrap_err(),
            DeployError::ZeroCapacity(Some(Name::from("s1")))
        );
        // The rejected sets left the policy untouched and the deployment
        // fully runnable.
        assert_eq!(deployment.capacity(), 1);
        deployment.feed("s0", (1..=4).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.flow("s2").len(), 4);
    }

    #[test]
    fn both_backends_produce_identical_flows_and_report_their_name() {
        let mut flows = Vec::new();
        for (backend, name) in [
            (Backend::Mpsc, MpscTransport::NAME),
            (Backend::SpscRing, RingTransport::NAME),
        ] {
            let mut deployment = pipeline(4);
            deployment.set_backend(backend);
            deployment.feed("s0", (1..=16).map(Value::Int));
            let outcome = deployment.run().expect("runs");
            assert_eq!(outcome.stats().backend, name);
            flows.push(outcome.flow("s4").to_vec());
        }
        assert_eq!(flows[0], flows[1]);
    }

    #[test]
    fn a_custom_transport_carries_every_channel() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// A transport that counts how many channels it minted and at what
        /// capacity, delegating the actual medium to the ring.
        #[derive(Debug, Default)]
        struct Counting {
            opened: AtomicUsize,
            total_capacity: AtomicUsize,
        }
        impl Transport for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn open(
                &self,
                capacity: usize,
            ) -> Result<transport::Endpoints, transport::TransportError> {
                self.opened.fetch_add(1, Ordering::Relaxed);
                self.total_capacity.fetch_add(capacity, Ordering::Relaxed);
                RingTransport.open(capacity)
            }
        }

        let transport = std::sync::Arc::new(Counting::default());
        let mut deployment = pipeline(4);
        deployment.set_transport(transport.clone());
        deployment.set_capacity(3).expect("nonzero");
        assert_eq!(
            deployment.topology().expect("well-formed").channels[0].backend,
            "counting"
        );
        deployment.feed("s0", (1..=8).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().backend, "counting");
        assert_eq!(transport.opened.load(Ordering::Relaxed), 3);
        assert_eq!(transport.total_capacity.load(Ordering::Relaxed), 9);
        assert_eq!(outcome.flow("s4").len(), 8);
    }

    #[test]
    fn cyclic_topologies_are_refused_instead_of_deadlocking() {
        // a reads q and writes p; b reads p and writes q: with blocking
        // bounded channels both workers would wait on each other forever,
        // so the run is refused up front.
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("a", "q", "p")));
        deployment.add_machine(Box::new(Summer::new("b", "p", "q")));
        assert!(deployment.topology().expect("well-formed").has_cycle());
        assert_eq!(deployment.run().unwrap_err(), DeployError::CyclicTopology);
    }

    #[test]
    fn duplicate_producers_are_rejected() {
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("a", "i", "o")));
        deployment.add_machine(Box::new(Summer::new("b", "j", "o")));
        assert_eq!(
            deployment.topology().unwrap_err(),
            DeployError::DuplicateProducer(Name::from("o"))
        );
        assert!(deployment.run().is_err());
    }

    #[test]
    fn feeding_an_internal_or_unknown_signal_is_rejected() {
        let mut deployment = pipeline(2);
        deployment.feed("s1", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::FedInternalSignal(Name::from("s1"))
        );
        let mut deployment = pipeline(2);
        deployment.feed("nosuch", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::UnknownFeed(Name::from("nosuch"))
        );
        let empty = Deployment::new();
        assert_eq!(empty.run().unwrap_err(), DeployError::Empty);
    }

    #[test]
    fn stats_record_backpressure_and_stop_reasons() {
        let mut deployment = pipeline(2);
        deployment.set_capacity(1).expect("nonzero");
        deployment.feed("s0", (1..=8).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        let stats = outcome.stats();
        assert_eq!(stats.capacity, CapacityRange::exactly(1));
        assert_eq!(stats.channels, 1);
        // Stage 0 drained its environment stream; stage 1 stopped when the
        // upstream channel closed.
        assert_eq!(
            stats.components[0].stop,
            StopReason::EnvironmentExhausted(Name::from("s0"))
        );
        assert_eq!(
            stats.components[1].stop,
            StopReason::UpstreamClosed(Name::from("s1"))
        );
        assert_eq!(stats.components[0].tokens_sent, 8);
        assert_eq!(stats.components[1].tokens_received, 8);
        // A read only counts as blocked when the buffer was actually empty,
        // so the counter never exceeds the tokens received (plus the final
        // wait that observed the close).
        assert!(stats.components[1].blocked_reads <= stats.components[1].tokens_received + 1);
    }

    #[test]
    fn the_step_budget_stops_runaway_machines() {
        /// A machine that reacts forever without consuming anything.
        struct Spinner {
            produced: Vec<Value>,
        }
        impl StepMachine for Spinner {
            fn machine_name(&self) -> &str {
                "spinner"
            }
            fn input_signals(&self) -> Vec<Name> {
                Vec::new()
            }
            fn output_signals(&self) -> Vec<Name> {
                vec![Name::from("z")]
            }
            fn feed_value(&mut self, _signal: &str, _value: Value) {}
            fn try_step(&mut self) -> Result<(), StepFault> {
                self.produced.push(Value::Bool(true));
                Ok(())
            }
            fn produced(&self, _signal: &str) -> &[Value] {
                &self.produced
            }
        }
        let mut deployment = Deployment::new();
        deployment.set_max_steps(100).expect("nonzero");
        deployment.add_machine(Box::new(Spinner {
            produced: Vec::new(),
        }));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().components[0].reactions, 100);
        assert_eq!(outcome.stats().components[0].stop, StopReason::StepLimit);
    }

    #[test]
    fn a_zero_step_budget_is_rejected_not_an_instant_empty_success() {
        // Regression: `set_max_steps(0)` used to make every worker exit
        // immediately with `StepLimit` and the run "succeeded" with empty
        // flows.
        let mut deployment = pipeline(2);
        assert_eq!(
            deployment.set_max_steps(0).unwrap_err(),
            DeployError::ZeroMaxSteps
        );
        // The rejected set left the budget untouched and the deployment
        // fully runnable.
        deployment.feed("s0", (1..=4).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.flow("s2").len(), 4);
        assert_eq!(outcome.stats().total_reactions(), 8);
    }

    #[test]
    fn paced_marks_must_name_environment_inputs() {
        // Regression: `mark_paced` used to accept any name silently, so a
        // typo skewed the conformance replay instead of failing fast.
        let mut deployment = pipeline(2);
        deployment.mark_paced("nosuch");
        deployment.feed("s0", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::UnknownPaced(Name::from("nosuch"))
        );
        // An internal (channel-fed) signal is not an environment input
        // either.
        let mut deployment = pipeline(2);
        deployment.mark_paced("s1");
        deployment.feed("s0", [Value::Int(1)]);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::UnknownPaced(Name::from("s1"))
        );
    }

    #[test]
    fn stats_report_the_true_per_edge_capacity_range() {
        // Regression: the stats used to report the policy *default* even
        // when per-signal overrides made edges differ.
        let mut deployment = pipeline(3);
        deployment.set_capacity(8).expect("nonzero");
        deployment.set_channel_capacity("s2", 2).expect("nonzero");
        deployment.feed("s0", (1..=4).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().capacity, CapacityRange { min: 2, max: 8 });
        assert!(outcome.stats().to_string().contains("capacity 2..8"));
        // A single-component deployment has no channel at all: the range
        // is 0, not the policy default.
        let mut deployment = pipeline(1);
        deployment.set_capacity(64).expect("nonzero");
        deployment.feed("s0", [Value::Int(1)]);
        let outcome = deployment.run().expect("runs");
        assert_eq!(outcome.stats().capacity, CapacityRange::exactly(0));
    }

    #[test]
    fn invalid_pool_modes_are_rejected() {
        let mut deployment = pipeline(2);
        assert_eq!(
            deployment
                .set_execution_mode(ExecutionMode::Pool {
                    workers: 0,
                    quantum: 1,
                })
                .unwrap_err(),
            DeployError::ZeroPoolWorkers
        );
        assert_eq!(
            deployment
                .set_execution_mode(ExecutionMode::Pool {
                    workers: 1,
                    quantum: 0,
                })
                .unwrap_err(),
            DeployError::ZeroQuantum
        );
        // The rejected modes left the deployment in the default mode.
        assert_eq!(
            deployment.execution_mode(),
            ExecutionMode::ThreadPerComponent
        );
    }

    #[test]
    fn a_two_worker_pool_runs_eight_components_with_identical_flows() {
        // The scheduler's point: fewer OS threads than components, same
        // flows as the dedicated-thread mode, whatever the quantum, the
        // backend or the capacity.
        let reference = {
            let mut deployment = pipeline(8);
            deployment.feed("s0", (1..=32).map(Value::Int));
            deployment.run().expect("runs").flow("s8").to_vec()
        };
        for backend in [Backend::Mpsc, Backend::SpscRing] {
            for quantum in [1u64, 3, 64] {
                for capacity in [1usize, 4] {
                    let mut deployment = pipeline(8);
                    deployment
                        .set_execution_mode(ExecutionMode::Pool {
                            workers: 2,
                            quantum,
                        })
                        .expect("valid mode");
                    deployment.set_backend(backend);
                    deployment.set_capacity(capacity).expect("nonzero");
                    deployment.feed("s0", (1..=32).map(Value::Int));
                    let outcome = deployment.run().expect("runs");
                    let stats = outcome.stats();
                    assert_eq!(
                        outcome.flow("s8"),
                        reference.as_slice(),
                        "backend {backend} quantum {quantum} capacity {capacity}"
                    );
                    assert_eq!(stats.total_reactions(), 8 * 32);
                    // The run was scheduled by the pool, not by dedicated
                    // threads.
                    assert_eq!(
                        stats.mode,
                        ExecutionMode::Pool {
                            workers: 2,
                            quantum,
                        }
                    );
                    assert_eq!(stats.pool_workers.len(), 2);
                    assert!(stats.total_dispatches() >= 8, "every component dispatched");
                }
            }
        }
    }

    /// A machine that joins two input streams, emitting the sum of one
    /// token from each — the fan-in end of a diamond.
    struct Join {
        name: String,
        inputs: [Name; 2],
        queues: [Vec<Value>; 2],
        output: Name,
        produced: Vec<Value>,
    }

    impl StepMachine for Join {
        fn machine_name(&self) -> &str {
            &self.name
        }
        fn input_signals(&self) -> Vec<Name> {
            self.inputs.to_vec()
        }
        fn output_signals(&self) -> Vec<Name> {
            vec![self.output.clone()]
        }
        fn feed_value(&mut self, signal: &str, value: Value) {
            let slot = self.inputs.iter().position(|i| i.as_str() == signal);
            self.queues[slot.expect("declared input")].push(value);
        }
        fn try_step(&mut self) -> Result<(), StepFault> {
            for (i, queue) in self.queues.iter().enumerate() {
                if queue.is_empty() {
                    return Err(StepFault::NeedInput(self.inputs[i].clone()));
                }
            }
            let a = self.queues[0].remove(0).as_int().unwrap_or(0);
            let b = self.queues[1].remove(0).as_int().unwrap_or(0);
            self.produced.push(Value::Int(a + b));
            Ok(())
        }
        fn produced(&self, _signal: &str) -> &[Value] {
            &self.produced
        }
    }

    /// Fan-out/fan-in diamond: a source broadcasts `x` to two summers,
    /// whose outputs a `Join` recombines.  Exercises the multi-consumer
    /// broadcast publish (and its partial-progress resume in pool mode).
    fn diamond() -> Deployment {
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("source", "in", "x")));
        deployment.add_machine(Box::new(Summer::new("left", "x", "l")));
        deployment.add_machine(Box::new(Summer::new("right", "x", "r")));
        deployment.add_machine(Box::new(Join {
            name: "join".into(),
            inputs: [Name::from("l"), Name::from("r")],
            queues: [Vec::new(), Vec::new()],
            output: Name::from("out"),
            produced: Vec::new(),
        }));
        deployment
    }

    #[test]
    fn a_fan_out_fan_in_diamond_conforms_across_modes() {
        let reference = {
            let mut deployment = diamond();
            deployment.feed("in", (1..=16).map(Value::Int));
            deployment.run().expect("runs").flow("out").to_vec()
        };
        assert_eq!(reference.len(), 16);
        for workers in [1usize, 2, 3] {
            for quantum in [1u64, 5] {
                let mut deployment = diamond();
                deployment
                    .set_execution_mode(ExecutionMode::Pool { workers, quantum })
                    .expect("valid mode");
                deployment.set_capacity(1).expect("nonzero");
                deployment.feed("in", (1..=16).map(Value::Int));
                let outcome = deployment.run().expect("runs");
                assert_eq!(
                    outcome.flow("out"),
                    reference.as_slice(),
                    "workers {workers} quantum {quantum}"
                );
                assert_eq!(outcome.stats().pool_workers.len(), workers);
            }
        }
    }

    /// A machine that consumes one env token per step and emits a stamp
    /// from a shared global sequence — the dispatch order of two such
    /// machines is visible in their produced flows.
    struct Stamper {
        name: String,
        input: Name,
        queue: Vec<Value>,
        produced: Vec<Value>,
        sequence: std::sync::Arc<std::sync::atomic::AtomicI64>,
    }

    impl StepMachine for Stamper {
        fn machine_name(&self) -> &str {
            &self.name
        }
        fn input_signals(&self) -> Vec<Name> {
            vec![self.input.clone()]
        }
        fn output_signals(&self) -> Vec<Name> {
            vec![Name::from(format!("{}_out", self.name).as_str())]
        }
        fn feed_value(&mut self, _signal: &str, value: Value) {
            self.queue.push(value);
        }
        fn try_step(&mut self) -> Result<(), StepFault> {
            if self.queue.is_empty() {
                return Err(StepFault::NeedInput(self.input.clone()));
            }
            self.queue.remove(0);
            let stamp = self
                .sequence
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.produced.push(Value::Int(stamp));
            Ok(())
        }
        fn produced(&self, _signal: &str) -> &[Value] {
            &self.produced
        }
    }

    #[test]
    fn a_quantum_yield_round_robins_the_deque_instead_of_starving_it() {
        // Regression: a yielded component used to be pushed to the back of
        // the deque its owner also pops from the back, so a single worker
        // re-dispatched the same component until its stream was exhausted
        // and deque siblings starved.  With two independent components on
        // one worker at quantum 1, fair scheduling interleaves their
        // global stamps; starvation would give one component an entirely
        // smaller stamp range than the other.
        let sequence = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
        let mut deployment = Deployment::new();
        for name in ["a", "b"] {
            deployment.add_machine(Box::new(Stamper {
                name: name.into(),
                input: Name::from(format!("{name}_in").as_str()),
                queue: Vec::new(),
                produced: Vec::new(),
                sequence: std::sync::Arc::clone(&sequence),
            }));
        }
        deployment
            .set_execution_mode(ExecutionMode::Pool {
                workers: 1,
                quantum: 1,
            })
            .expect("valid mode");
        deployment.feed("a_in", (0..16).map(Value::Int));
        deployment.feed("b_in", (0..16).map(Value::Int));
        let outcome = deployment.run().expect("runs");
        let stamps = |signal: &str| -> Vec<i64> {
            outcome
                .flow(signal)
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect()
        };
        let a = stamps("a_out");
        let b = stamps("b_out");
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        let ranges_overlap = a.iter().min() < b.iter().max() && b.iter().min() < a.iter().max();
        assert!(
            ranges_overlap,
            "one component ran to completion before the other was ever \
             dispatched: a = {a:?}, b = {b:?}"
        );
    }

    #[test]
    fn the_pool_detects_a_communication_deadlock_instead_of_hanging() {
        // a reads q and writes p; b reads p and writes q.  Nothing is ever
        // fed, so both block immediately.  The dedicated-thread mode would
        // hang on this (which is why cycles must be explicitly allowed);
        // the pool scheduler proves the all-blocked state terminal and
        // stops.
        let mut deployment = Deployment::new();
        deployment.add_machine(Box::new(Summer::new("a", "q", "p")));
        deployment.add_machine(Box::new(Summer::new("b", "p", "q")));
        deployment.set_allow_cycles(true);
        deployment
            .set_execution_mode(ExecutionMode::Pool {
                workers: 2,
                quantum: 4,
            })
            .expect("valid mode");
        let outcome = deployment.run().expect("terminates");
        for component in &outcome.stats().components {
            assert_eq!(component.stop, StopReason::Deadlocked);
            assert_eq!(component.reactions, 0);
        }
    }

    #[test]
    fn conformance_without_a_reference_is_an_error() {
        let mut deployment = pipeline(1);
        deployment.feed("s0", [Value::Int(1)]);
        let outcome = deployment.run().expect("runs");
        assert_eq!(
            outcome.check_conformance().unwrap_err(),
            ConformanceError::NoReference
        );
    }

    /// The prefix-sum reference of `pipeline(n)` on `1..=len`.
    fn pipeline_reference(stages: usize, len: i64) -> Vec<i64> {
        let mut values: Vec<i64> = (1..=len).collect();
        for _ in 0..stages {
            let mut sum = 0;
            for v in values.iter_mut() {
                sum += *v;
                *v = sum;
            }
        }
        values
    }

    #[test]
    fn shared_pool_hosts_many_tenants_with_isolated_outcomes() {
        let pool = SharedPool::start(PoolOptions::new(3, 8)).expect("pool");
        let mut handles = Vec::new();
        for tenant in 0..12i64 {
            let staged = pipeline(3).stage().expect("stages");
            let mut handle = pool.submit(staged, &SubmitOptions::default());
            // Distinct streams per tenant prove the flows never bleed
            // across deployments sharing the pool.
            handle
                .feed("s0", (1..=8).map(|v| Value::Int(v + tenant)))
                .expect("env input");
            handles.push(handle);
        }
        for (tenant, handle) in handles.into_iter().enumerate() {
            let outcome = handle
                .drain(Duration::from_secs(20))
                .expect("tenant finishes");
            assert_eq!(outcome.stats().components.len(), 3);
            assert_eq!(outcome.stats().total_reactions(), 3 * 8);
            let mut values: Vec<i64> = (1..=8).map(|v| v + tenant as i64).collect();
            for _ in 0..3 {
                let mut sum = 0;
                for v in values.iter_mut() {
                    sum += *v;
                    *v = sum;
                }
            }
            let got: Vec<i64> = outcome
                .flow("s3")
                .iter()
                .map(|v| v.as_int().unwrap_or(0))
                .collect();
            assert_eq!(got, values, "tenant {tenant}");
        }
        pool.shutdown();
    }

    #[test]
    fn shared_pool_streaming_matches_the_batch_run() {
        let pool = SharedPool::start(PoolOptions::new(2, 4)).expect("pool");
        let staged = pipeline(4).stage().expect("stages");
        let mut handle = pool.submit(staged, &SubmitOptions::default());
        let mut polled: Vec<Value> = Vec::new();
        // Feed in small bursts, polling between them: streaming ingress
        // and incremental egress consumption.
        for chunk in (1..=32i64).collect::<Vec<_>>().chunks(5) {
            handle
                .feed("s0", chunk.iter().copied().map(Value::Int))
                .expect("env input");
            polled.extend(
                handle
                    .poll_outputs()
                    .remove(&Name::from("s4"))
                    .unwrap_or_default(),
            );
        }
        let outcome = handle.drain(Duration::from_secs(20)).expect("finishes");
        let reference = pipeline_reference(4, 32);
        let got: Vec<i64> = outcome
            .flow("s4")
            .iter()
            .map(|v| v.as_int().unwrap_or(0))
            .collect();
        assert_eq!(got, reference, "final flows carry every produced token");
        // Whatever was polled mid-run is a prefix of the final flow.
        let polled: Vec<i64> = polled.iter().map(|v| v.as_int().unwrap_or(0)).collect();
        assert_eq!(polled, reference[..polled.len()], "polling is lossless");
        // The ingress close surfaced as the normal end of the stream.
        assert!(outcome
            .stats()
            .components
            .iter()
            .any(|c| matches!(c.stop, StopReason::EnvironmentExhausted(_))));
        pool.shutdown();
    }

    #[test]
    fn priorities_let_a_critical_tenant_overtake_batch_tenants() {
        // One worker and a paused pool make the schedule deterministic:
        // everything is ready before the first dispatch, so completion
        // order is purely the priority order.
        let mut options = PoolOptions::new(1, 4);
        options.paused = true;
        let pool = SharedPool::start(options).expect("pool");
        let mut batch = Vec::new();
        for _ in 0..4 {
            let staged = pipeline(2).stage().expect("stages");
            let mut handle = pool.submit(staged, &SubmitOptions::default());
            handle
                .feed("s0", (1..=16).map(Value::Int))
                .expect("env input");
            handle.close_inputs();
            batch.push(handle);
        }
        // Submitted last, finishes first: priority beats submission order.
        let staged = pipeline(2).stage().expect("stages");
        let critical_options = SubmitOptions {
            base_priority: 10,
            boosts: std::collections::BTreeMap::new(),
        };
        let mut critical = pool.submit(staged, &critical_options);
        critical
            .feed("s0", (1..=16).map(Value::Int))
            .expect("env input");
        critical.close_inputs();
        pool.resume();
        assert!(critical.wait(Duration::from_secs(20)), "critical finishes");
        for handle in &batch {
            assert!(handle.wait(Duration::from_secs(20)), "batch finishes");
        }
        let critical_rank = critical.completion_index().expect("critical rank");
        for handle in &batch {
            let rank = handle.completion_index().expect("batch rank");
            assert!(
                critical_rank < rank,
                "critical tenant (rank {critical_rank}) completes before a \
                 batch tenant (rank {rank}) it was submitted after"
            );
        }
        let outcome = critical.drain(Duration::from_secs(20)).expect("drains");
        assert_eq!(outcome.flow("s2").len(), 16);
        for handle in batch {
            let _ = handle.drain(Duration::from_secs(20)).expect("drains");
        }
        pool.shutdown();
    }

    #[test]
    fn a_drain_timeout_returns_the_handle_intact() {
        let pool = SharedPool::start(PoolOptions::new(2, 4)).expect("pool");
        let staged = pipeline(2).stage().expect("stages");
        let mut handle = pool.submit(staged, &SubmitOptions::default());
        handle.feed("s0", [Value::Int(1)]).expect("env input");
        // Never closing the ingress cannot finish... but drain() closes
        // it, so use a zero timeout to force the refusal path instead.
        let err = handle.drain(Duration::ZERO);
        match err {
            Err(DrainError::Timeout { pending, handle }) => {
                assert!(!pending.is_empty(), "someone is still live");
                // The handle still works: the ingress was closed by the
                // failed drain, so a second drain finishes.
                let outcome = handle
                    .drain(Duration::from_secs(20))
                    .expect("second drain finishes");
                assert_eq!(outcome.flow("s2").len(), 1);
            }
            Ok(outcome) => {
                // The run can legitimately finish within the zero budget
                // on a fast machine; the flows must still be right.
                assert_eq!(outcome.flow("s2").len(), 1);
            }
        }
        pool.shutdown();
    }

    #[test]
    fn feeding_an_unknown_signal_on_a_handle_is_refused() {
        let pool = SharedPool::start(PoolOptions::new(1, 4)).expect("pool");
        let staged = pipeline(2).stage().expect("stages");
        let mut handle = pool.submit(staged, &SubmitOptions::default());
        assert_eq!(
            handle.feed("nope", [Value::Int(1)]).unwrap_err(),
            DeployError::UnknownFeed(Name::from("nope"))
        );
        handle.close_inputs();
        let _ = handle.drain(Duration::from_secs(20)).expect("finishes");
        pool.shutdown();
    }

    #[test]
    fn the_worker_setup_hook_reports_the_pinned_flag() {
        let mut options = PoolOptions::new(2, 4);
        options.worker_setup = Some(std::sync::Arc::new(|worker: usize| worker == 0));
        let pool = SharedPool::start(options).expect("pool");
        // Run something so the workers are certainly up.
        let staged = pipeline(2).stage().expect("stages");
        let mut handle = pool.submit(staged, &SubmitOptions::default());
        handle.feed("s0", (1..=4).map(Value::Int)).expect("env");
        let _ = handle.drain(Duration::from_secs(20)).expect("finishes");
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].pinned, "hook returned true for worker 0");
        assert!(!stats[1].pinned, "hook returned false for worker 1");
        pool.shutdown();
    }
}
