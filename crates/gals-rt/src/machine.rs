//! The abstract step machine driven by the deployment engine.
//!
//! The engine is deliberately agnostic of *how* a component executes one
//! synchronous step: anything that can attempt a step, report a blocking
//! read, accept a fed input token and expose its produced output flows can
//! be deployed on a thread.  `codegen::SequentialRuntime` — the in-process
//! execution of a generated step program — implements this trait; a future
//! FFI runner for the emitted C would implement it too.

use std::fmt;

use signal_lang::{Name, Value};

/// Why an attempted step of a machine did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFault {
    /// The step requires a value on this input signal before it can
    /// complete — the blocking read of the generated embedded code.  The
    /// machine state is unchanged; the step can be retried after feeding
    /// the signal.
    NeedInput(Name),
    /// The machine faulted (evaluation error, corrupted state); the worker
    /// stops and reports the message.
    Fault(String),
}

impl fmt::Display for StepFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepFault::NeedInput(n) => write!(f, "step needs a value on input {n}"),
            StepFault::Fault(m) => write!(f, "machine fault: {m}"),
        }
    }
}

/// Which execution strategy backs the step machines of a deployment.
///
/// The engine never inspects this — every machine is a [`StepMachine`]
/// trait object either way.  The tag exists so deployment assemblers
/// (`isochron::Design::deploy_with`, the partition runner, the benches)
/// can pick a strategy uniformly and the statistics can report which one
/// ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Interpret the step-program IR per reaction
    /// (`codegen::SequentialRuntime`): `Name`-keyed maps, tree-walked
    /// clocks.  Kept as the readable reference semantics.
    Interpreted,
    /// Execute the slot-indexed compiled form
    /// (`codegen::CompiledRuntime`): flat value array, presence bitsets,
    /// postfix clock programs, zero allocation per step.  The default.
    #[default]
    Compiled,
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineKind::Interpreted => write!(f, "interpreted"),
            MachineKind::Compiled => write!(f, "compiled"),
        }
    }
}

/// One separately compiled component, executable step by step.
///
/// # Contract
///
/// * [`try_step`](StepMachine::try_step) either completes one synchronous
///   reaction, or returns [`StepFault::NeedInput`] *without changing any
///   observable state* so the worker can feed the missing token and retry;
/// * [`produced`](StepMachine::produced) returns the complete flow written
///   so far on an output signal — the engine tracks a cursor per output and
///   publishes only the suffix produced by the latest step.
pub trait StepMachine: Send {
    /// The component name (used in reports and statistics).
    fn machine_name(&self) -> &str;

    /// The input signals of the component.
    fn input_signals(&self) -> Vec<Name>;

    /// The output signals of the component.
    fn output_signals(&self) -> Vec<Name>;

    /// Appends one value to the source queue of an input signal.
    fn feed_value(&mut self, signal: &str, value: Value);

    /// Attempts one synchronous step.
    fn try_step(&mut self) -> Result<(), StepFault>;

    /// The flow produced so far on an output signal.
    fn produced(&self, signal: &str) -> &[Value];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_render_their_cause() {
        assert_eq!(
            StepFault::NeedInput(Name::from("x")).to_string(),
            "step needs a value on input x"
        );
        assert!(StepFault::Fault("division by zero".into())
            .to_string()
            .contains("division"));
    }
}
