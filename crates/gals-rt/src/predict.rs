//! Static throughput/latency prediction from the k-periodic clock words.
//!
//! The same [`ClockWord`]s that bound channel capacities
//! ([`crate::capacity`]) also fix the *steady-state pace* of every
//! component: a component reading its environment at word `w` performs
//! `len(w)/ones(w)` reactions per environment token, and an edge whose
//! producer emits at word `w_p` carries `rate(w_p)` tokens per producer
//! reaction.  Propagating those ratios across the channel topology yields
//! a [`PerformancePrediction`]: per-component reactions per input token,
//! per-edge traffic, the pipeline-fill latency and the bottleneck edge —
//! all before the deployment runs a single reaction.
//!
//! The prediction is a *rate model*, not a cycle-accurate simulation: it
//! assumes the steady state (channels primed, no startup transient beyond
//! the reported fill latency) and prices every reaction equally.
//! Combined with one measured per-reaction cost
//! ([`PerformancePrediction::predicted_throughput`]) it predicts
//! wall-clock throughput of unseen topologies from a single calibration
//! run — validated against the E13 pipelines in
//! `tests/performance_prediction.rs`.

use std::collections::BTreeMap;
use std::fmt;

use clocks::word::ClockWord;
use signal_lang::Name;

use crate::capacity::EdgeClocks;
use crate::deploy::Topology;

/// The fraction of its local reactions a word is present on; an unknown
/// word is modeled as present at every reaction.
fn firing_rate(word: Option<&ClockWord>) -> f64 {
    match word {
        Some(word) => {
            let (ones, len) = word.rate();
            ones as f64 / len as f64
        }
        None => 1.0,
    }
}

/// The predicted steady-state pace of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPrediction {
    /// The component name.
    pub name: String,
    /// Reactions the component performs per environment input token.
    pub reactions_per_input: f64,
}

/// The predicted steady-state traffic of one channel edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePrediction {
    /// The channel signal.
    pub signal: Name,
    /// Index of the producing machine.
    pub producer: usize,
    /// Index of the consuming machine.
    pub consumer: usize,
    /// Tokens crossing the edge per environment input token.
    pub tokens_per_input: f64,
    /// The producer-local instant of the first token (`None` when the
    /// producer's word provably never emits).
    pub first_token: Option<usize>,
    /// The resolved capacity of the edge's FIFO.
    pub capacity: usize,
    /// Whether the edge lies on a feedback loop (excluded from the fill
    /// latency, which is a feed-forward notion).
    pub on_cycle: bool,
}

/// A static throughput/latency prediction of a deployment, derived from
/// the k-periodic clock words of its edges before any reaction runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformancePrediction {
    /// Per-component predicted pace, in machine order.
    pub components: Vec<ComponentPrediction>,
    /// Per-edge predicted traffic, in topology order.
    pub edges: Vec<EdgePrediction>,
    /// Instants before the last component sees its first token: the
    /// longest feed-forward chain of first-emission delays.
    pub fill_latency: usize,
}

impl PerformancePrediction {
    /// Derives the prediction for `topology` from the edge words, the
    /// environment read words (`env_reads`: one `(machine, word)` entry
    /// per environment input a machine reads) and the machine `names`.
    ///
    /// Machines paced by the environment get their pace from their read
    /// word (reading at `(10)` means 2 reactions per token); paces then
    /// propagate across every edge in both directions — a consumer runs
    /// `rate(w_p)/rate(w_c)` times as fast as its producer — until the
    /// topology is covered.  Machines the propagation cannot reach (no
    /// environment input and no word on any path) default to one reaction
    /// per input token.
    pub fn derive(
        topology: &Topology,
        edge_clocks: &BTreeMap<Name, EdgeClocks>,
        env_reads: &[(usize, Option<ClockWord>)],
        names: &[String],
    ) -> Self {
        let n = names.len();
        // The k-th channel spec of a signal pairs with the k-th consumer
        // word: both are collected in ascending consumer order.
        let mut seen: BTreeMap<&Name, usize> = BTreeMap::new();
        let spec_words: Vec<(Option<&ClockWord>, Option<&ClockWord>)> = topology
            .channels
            .iter()
            .map(|spec| {
                let k = {
                    let slot = seen.entry(&spec.signal).or_insert(0);
                    let k = *slot;
                    *slot += 1;
                    k
                };
                match edge_clocks.get(&spec.signal) {
                    Some(clocks) => (
                        clocks.producer_word.as_ref(),
                        clocks.consumer_words.get(k).and_then(Option::as_ref),
                    ),
                    None => (None, None),
                }
            })
            .collect();

        // Seed: environment-paced machines react once per present instant
        // of their read word — len/ones reactions per token.  A machine
        // reading several environment inputs follows the most demanding.
        let mut pace: Vec<Option<f64>> = vec![None; n];
        for (machine, word) in env_reads {
            if *machine >= n {
                continue;
            }
            let rate = firing_rate(word.as_ref());
            if rate > 0.0 {
                let candidate = 1.0 / rate;
                let slot = &mut pace[*machine];
                *slot = Some(slot.map_or(candidate, |current| current.max(candidate)));
            }
        }
        // Propagate across edges (both directions) to a fixpoint: the
        // token rate is conserved across an edge, so
        // pace(c) · rate(w_c) = pace(p) · rate(w_p).
        for _ in 0..n.max(1) {
            let mut changed = false;
            for (spec, (producer_word, consumer_word)) in topology.channels.iter().zip(&spec_words)
            {
                if spec.producer >= n || spec.consumer >= n {
                    continue;
                }
                let rate_p = firing_rate(*producer_word);
                let rate_c = firing_rate(*consumer_word);
                if pace[spec.consumer].is_none() && rate_c > 0.0 {
                    if let Some(p) = pace[spec.producer] {
                        pace[spec.consumer] = Some(p * rate_p / rate_c);
                        changed = true;
                    }
                }
                if pace[spec.producer].is_none() && rate_p > 0.0 {
                    if let Some(c) = pace[spec.consumer] {
                        pace[spec.producer] = Some(c * rate_c / rate_p);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let cycle = topology.cycle_signals();
        let edges: Vec<EdgePrediction> = topology
            .channels
            .iter()
            .zip(&spec_words)
            .map(|(spec, (producer_word, _))| EdgePrediction {
                signal: spec.signal.clone(),
                producer: spec.producer,
                consumer: spec.consumer,
                tokens_per_input: pace.get(spec.producer).copied().flatten().unwrap_or(1.0)
                    * firing_rate(*producer_word),
                first_token: producer_word.map_or(Some(1), ClockWord::first_one),
                capacity: spec.capacity,
                on_cycle: cycle.contains(&spec.signal),
            })
            .collect();

        // Fill latency: longest feed-forward chain of first-emission
        // delays (cycle edges excluded — a loop has no "first" end).
        let mut arrival = vec![0usize; n];
        for _ in 0..n.max(1) {
            let mut changed = false;
            for edge in &edges {
                if edge.on_cycle || edge.producer >= n || edge.consumer >= n {
                    continue;
                }
                let Some(first) = edge.first_token else {
                    continue;
                };
                let candidate = arrival[edge.producer] + first;
                if candidate > arrival[edge.consumer] {
                    arrival[edge.consumer] = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let fill_latency = arrival.into_iter().max().unwrap_or(0);

        let components = names
            .iter()
            .enumerate()
            .map(|(i, name)| ComponentPrediction {
                name: name.clone(),
                reactions_per_input: pace.get(i).copied().flatten().unwrap_or(1.0),
            })
            .collect();
        PerformancePrediction {
            components,
            edges,
            fill_latency,
        }
    }

    /// Total reactions the deployment performs per environment input
    /// token, summed over every component.
    pub fn reactions_per_input(&self) -> f64 {
        self.components.iter().map(|c| c.reactions_per_input).sum()
    }

    /// Predicted total reaction count for a run fed `inputs` environment
    /// tokens (steady-state: the startup transient is at most the fill
    /// latency).
    pub fn predicted_reactions(&self, inputs: u64) -> f64 {
        inputs as f64 * self.reactions_per_input()
    }

    /// Predicted steady-state throughput in environment tokens per
    /// second, given a measured per-reaction cost (e.g.
    /// `1 / stats.reactions_per_second()` of a calibration run under the
    /// same execution mode).  The model is work-conserving: total
    /// reactions are the resource, so the prediction transfers across
    /// topologies that share the scheduler configuration.
    pub fn predicted_throughput(&self, seconds_per_reaction: f64) -> Option<f64> {
        let per_input = self.reactions_per_input() * seconds_per_reaction;
        (per_input > 0.0).then(|| 1.0 / per_input)
    }

    /// The busiest edge — the one carrying the most tokens per input
    /// token; ties break toward the smaller capacity (less slack for the
    /// same traffic).
    pub fn bottleneck(&self) -> Option<&EdgePrediction> {
        self.edges.iter().reduce(|best, edge| {
            if edge.tokens_per_input > best.tokens_per_input
                || (edge.tokens_per_input == best.tokens_per_input && edge.capacity < best.capacity)
            {
                edge
            } else {
                best
            }
        })
    }
}

impl fmt::Display for PerformancePrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predicted steady state: {:.2} reactions per input token, \
             fill latency {} instant(s)",
            self.reactions_per_input(),
            self.fill_latency
        )?;
        for component in &self.components {
            writeln!(
                f,
                "  {}: {:.2} reactions/input",
                component.name, component.reactions_per_input
            )?;
        }
        if let Some(edge) = self.bottleneck() {
            writeln!(
                f,
                "  bottleneck edge {}: {:.2} tokens/input over capacity {}{}",
                edge.signal,
                edge.tokens_per_input,
                edge.capacity,
                if edge.on_cycle {
                    " (on a feedback loop)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ChannelSpec;
    use crate::transport::CapacitySource;

    fn spec(signal: &str, producer: usize, consumer: usize) -> ChannelSpec {
        ChannelSpec {
            signal: Name::from(signal),
            producer,
            consumer,
            capacity: 1,
            source: CapacitySource::Default,
            derivation: None,
            backend: "test",
        }
    }

    fn word(bits: &[u8]) -> ClockWord {
        ClockWord::periodic(bits.iter().map(|&b| b != 0).collect()).expect("nonempty")
    }

    /// Two half-rate buffers in a line: each does 2 reactions per token,
    /// the edge carries every token, filled after the first emission at
    /// instant 2.
    #[test]
    fn a_buffer_pipeline_predicts_two_reactions_per_token_per_stage() {
        let topology = Topology {
            channels: vec![spec("p1", 0, 1)],
            environment: vec![Name::from("p0")],
        };
        let mut edge_clocks = BTreeMap::new();
        edge_clocks.insert(
            Name::from("p1"),
            EdgeClocks {
                producer: clocks::clock::ClockExpr::Atom(clocks::Clock::Tick(Name::from("p1"))),
                consumers: vec![clocks::clock::ClockExpr::Atom(clocks::Clock::Tick(
                    Name::from("p1"),
                ))],
                producer_word: Some(word(&[0, 1])),
                consumer_words: vec![Some(word(&[1, 0]))],
            },
        );
        let env_reads = vec![(0, Some(word(&[1, 0])))];
        let names = vec!["b0".to_string(), "b1".to_string()];
        let prediction = PerformancePrediction::derive(&topology, &edge_clocks, &env_reads, &names);
        assert_eq!(prediction.components[0].reactions_per_input, 2.0);
        assert_eq!(prediction.components[1].reactions_per_input, 2.0);
        assert_eq!(prediction.reactions_per_input(), 4.0);
        assert_eq!(prediction.predicted_reactions(16), 64.0);
        assert_eq!(prediction.edges[0].tokens_per_input, 1.0);
        assert_eq!(prediction.fill_latency, 2);
        assert_eq!(
            prediction.bottleneck().expect("one edge").signal.as_str(),
            "p1"
        );
        // 1 ms per reaction, 4 reactions per token: 250 tokens/sec.
        let throughput = prediction.predicted_throughput(0.001).expect("positive");
        assert!((throughput - 250.0).abs() < 1e-9);
        let text = prediction.to_string();
        assert!(text.contains("4.00 reactions per input token"), "{text}");
        assert!(text.contains("bottleneck edge p1"), "{text}");
    }

    /// A 2-of-3 decimator: the consumer reads one of every three producer
    /// emissions, so it runs at a third of the producer's pace.
    #[test]
    fn rate_changes_propagate_across_edges() {
        let topology = Topology {
            channels: vec![spec("x", 0, 1)],
            environment: vec![Name::from("a")],
        };
        let mut edge_clocks = BTreeMap::new();
        edge_clocks.insert(
            Name::from("x"),
            EdgeClocks {
                producer: clocks::clock::ClockExpr::Atom(clocks::Clock::Tick(Name::from("x"))),
                consumers: vec![clocks::clock::ClockExpr::Atom(clocks::Clock::Tick(
                    Name::from("x"),
                ))],
                // The producer emits on 3 of its 6 instants, the consumer
                // reads on 3 of its 6: same token rate, same pace.
                producer_word: Some(word(&[1, 1, 1, 0, 0, 0])),
                consumer_words: vec![Some(word(&[0, 0, 0, 1, 1, 1]))],
            },
        );
        // The source reads its environment on half its instants.
        let env_reads = vec![(0, Some(word(&[1, 1, 1, 0, 0, 0])))];
        let names = vec!["src".to_string(), "snk".to_string()];
        let prediction = PerformancePrediction::derive(&topology, &edge_clocks, &env_reads, &names);
        assert_eq!(prediction.components[0].reactions_per_input, 2.0);
        assert_eq!(prediction.components[1].reactions_per_input, 2.0);
        assert_eq!(prediction.edges[0].tokens_per_input, 1.0);
        // The producer's word first fires at instant 1.
        assert_eq!(prediction.fill_latency, 1);
    }

    /// Unknown words default to one reaction per token — the prediction
    /// degrades to a relay model instead of refusing.
    #[test]
    fn unknown_words_degrade_to_a_relay_model() {
        let topology = Topology {
            channels: vec![spec("s1", 0, 1), spec("s2", 1, 2)],
            environment: vec![Name::from("s0")],
        };
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let prediction =
            PerformancePrediction::derive(&topology, &BTreeMap::new(), &[(0, None)], &names);
        assert_eq!(prediction.reactions_per_input(), 3.0);
        assert_eq!(prediction.fill_latency, 2);
        assert!(prediction.edges.iter().all(|e| !e.on_cycle));
    }

    /// Feedback edges are excluded from the fill latency instead of
    /// diverging the longest-path computation.
    #[test]
    fn cycle_edges_do_not_diverge_the_fill_latency() {
        let topology = Topology {
            channels: vec![spec("p", 0, 1), spec("q", 1, 0)],
            environment: vec![],
        };
        let names = vec!["a".to_string(), "b".to_string()];
        let prediction = PerformancePrediction::derive(&topology, &BTreeMap::new(), &[], &names);
        assert!(prediction.edges.iter().all(|e| e.on_cycle));
        assert_eq!(prediction.fill_latency, 0);
        // Unreached machines default to pace 1.
        assert_eq!(prediction.reactions_per_input(), 2.0);
    }
}
