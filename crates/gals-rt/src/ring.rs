//! A lock-free fixed-capacity SPSC ring buffer for [`Value`] tokens.
//!
//! The topology derivation only ever produces point-to-point edges (one
//! producer, one consumer per channel), so the general mpsc machinery —
//! and its per-operation mutex in `std::sync::mpsc` — is pure overhead on
//! the runtime's hottest path.  This ring exploits the SPSC restriction:
//!
//! * `head` and `tail` are monotonically increasing atomic counters, each
//!   written by exactly one side; a send is one slot write plus one
//!   `Release` store, a receive one slot read plus one `Release` store —
//!   no locks, no syscalls while tokens flow;
//! * [`Value`] is a `Copy` sum of `bool` and `i64`, so a slot is a pair of
//!   `AtomicU64`s (tag + payload) and the whole ring is safe code — the
//!   crate-level `#![forbid(unsafe_code)]` stands;
//! * a side finding the ring full/empty waits in three escalating phases:
//!   spin (skipped on single-core machines, where busy-waiting only delays
//!   the peer), `yield_now` (a scheduling hand-off to the runnable peer —
//!   the common case of a capacity-1 ping-pong), and finally a park on a
//!   `Condvar` that the peer only touches when someone is actually parked
//!   (a `SeqCst` handshake avoids lost wakeups; a 1 ms park bound makes
//!   even a hypothetically missed notify a stall, never a hang);
//! * dropping either endpoint closes the ring: a parked or later `send`
//!   observes [`ChannelClosed`] immediately, a `recv` after the buffered
//!   tokens are drained (close-then-drain, like `std::sync::mpsc`).

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use signal_lang::Value;

use crate::transport::{
    ChannelClosed, Endpoints, TokenRx, TokenTx, Transport, TransportError, TryRecvError,
    TrySendError,
};

/// Spins before yielding: a handful of iterations rides out the common
/// case where the peer is mid-operation **on another core**.  On a
/// single-core machine the peer cannot make progress while we spin, so
/// the spin phase is skipped entirely (see [`spin_limit`]).
const SPIN_LIMIT: u32 = 128;

/// `yield_now` calls before parking.  A capacity-1 ring ping-pongs one
/// token per scheduling hand-off; yielding to the runnable peer costs a
/// fraction of a futex sleep/wake round, so the park below is the cold
/// path reserved for genuinely idle peers.
const YIELD_LIMIT: u32 = 64;

/// The spin budget, computed once: zero on single-core machines (where
/// busy-waiting only delays the peer), [`SPIN_LIMIT`] elsewhere.
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(cores) if cores.get() > 1 => SPIN_LIMIT,
        _ => 0,
    })
}

/// Upper bound on one park: a missed wakeup (ruled out by the `SeqCst`
/// handshake, but cheap to insure against) costs a retry, not a hang.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

const TAG_BOOL: u64 = 0;
const TAG_INT: u64 = 1;

fn encode(token: Value) -> (u64, u64) {
    match token {
        Value::Bool(b) => (TAG_BOOL, u64::from(b)),
        Value::Int(i) => (TAG_INT, i as u64),
    }
}

fn decode(tag: u64, bits: u64) -> Value {
    if tag == TAG_INT {
        Value::Int(bits as i64)
    } else {
        Value::Bool(bits != 0)
    }
}

/// One ring slot: the token's tag and payload.  `Relaxed` slot accesses
/// are published by the `Release`/`Acquire` pair on `tail`.
struct Slot {
    tag: AtomicU64,
    bits: AtomicU64,
}

struct Shared {
    slots: Box<[Slot]>,
    /// Next slot to read; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to write; written only by the producer.  The counters
    /// increase monotonically (indices are taken modulo the capacity), so
    /// `tail - head` is the occupancy.  A counter wrapping `usize::MAX`
    /// keeps the occupancy arithmetic correct (`wrapping_sub`), but for a
    /// non-power-of-two capacity the slot mapping would alias across the
    /// wrap; at one token per nanosecond that point is ~584 years away, so
    /// a channel is assumed to carry fewer than 2^64 tokens over its life.
    tail: AtomicUsize,
    tx_dropped: AtomicBool,
    rx_dropped: AtomicBool,
    /// How many threads are parked (0..=2).  The fast path only takes the
    /// mutex when this is nonzero.
    parked: AtomicUsize,
    lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, ()> {
        self.lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Notifies the peer after a state change, but only pays for the mutex
    /// when someone is parked.  The `SeqCst` fence pairs with the one in
    /// [`block_until`](Self::block_until): either this side sees `parked >
    /// 0` and notifies under the lock, or the parking side's re-check sees
    /// the state change and never sleeps.
    fn wake_peer(&self) {
        fence(SeqCst);
        if self.parked.load(Relaxed) > 0 {
            let _guard = self.lock();
            self.wake.notify_all();
        }
    }

    /// Unconditional wake for close paths (the peer may be parking right
    /// now).
    fn wake_always(&self) {
        let _guard = self.lock();
        self.wake.notify_all();
    }

    /// Spin, then yield, then park until `ready()` holds.  `ready` must
    /// read the shared state with at least `Acquire` ordering.
    fn block_until(&self, ready: impl Fn() -> bool) {
        for _ in 0..spin_limit() {
            if ready() {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELD_LIMIT {
            if ready() {
                return;
            }
            std::thread::yield_now();
        }
        let mut guard = self.lock();
        self.parked.fetch_add(1, SeqCst);
        loop {
            fence(SeqCst);
            if ready() {
                break;
            }
            let (next, _timed_out) = self
                .wake
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            guard = next;
        }
        self.parked.fetch_sub(1, SeqCst);
    }
}

/// Creates a connected SPSC ring of `capacity` slots.
///
/// # Panics
///
/// Panics when `capacity` is 0 (the deployment policy rejects zero before
/// it can reach a transport).
pub fn ring(capacity: usize) -> (RingSender, RingReceiver) {
    assert!(capacity > 0, "an SPSC ring needs at least one slot");
    let slots = (0..capacity)
        .map(|_| Slot {
            tag: AtomicU64::new(0),
            bits: AtomicU64::new(0),
        })
        .collect();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        tx_dropped: AtomicBool::new(false),
        rx_dropped: AtomicBool::new(false),
        parked: AtomicUsize::new(0),
        lock: Mutex::new(()),
        wake: Condvar::new(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
            _single_thread: PhantomData,
        },
        RingReceiver {
            shared,
            _single_thread: PhantomData,
        },
    )
}

/// The producing endpoint of an SPSC ring.  Deliberately neither `Clone`
/// nor `Sync` (the `PhantomData<Cell<()>>` marker suppresses the auto
/// impl while keeping `Send`): exactly one thread may send, which is what
/// lets `send` read `tail` relaxed as its private counter.
pub struct RingSender {
    shared: Arc<Shared>,
    _single_thread: PhantomData<Cell<()>>,
}

impl RingSender {
    /// Delivers one token, blocking (spin, yield, park) while the ring is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] when the receiver is gone — including
    /// while blocked on a full ring (the close unparks this side).
    pub fn send(&self, token: Value) -> Result<(), ChannelClosed> {
        let shared = &*self.shared;
        let capacity = shared.slots.len();
        // Single producer: this thread is the only writer of `tail`.
        let tail = shared.tail.load(Relaxed);
        loop {
            if shared.rx_dropped.load(Acquire) {
                return Err(ChannelClosed);
            }
            let head = shared.head.load(Acquire);
            if tail.wrapping_sub(head) < capacity {
                let slot = &shared.slots[tail % capacity];
                let (tag, bits) = encode(token);
                slot.tag.store(tag, Relaxed);
                slot.bits.store(bits, Relaxed);
                // Publishes the slot contents to the consumer's Acquire
                // load of `tail`.
                shared.tail.store(tail.wrapping_add(1), Release);
                shared.wake_peer();
                return Ok(());
            }
            shared.block_until(|| {
                shared.head.load(Acquire) != head || shared.rx_dropped.load(Acquire)
            });
        }
    }

    /// Delivers one token without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when every slot is occupied and
    /// [`TrySendError::Closed`] when the receiver is gone.
    pub fn try_send(&self, token: Value) -> Result<(), TrySendError> {
        let shared = &*self.shared;
        let capacity = shared.slots.len();
        if shared.rx_dropped.load(Acquire) {
            return Err(TrySendError::Closed);
        }
        // Single producer: this thread is the only writer of `tail`.
        let tail = shared.tail.load(Relaxed);
        let head = shared.head.load(Acquire);
        if tail.wrapping_sub(head) >= capacity {
            return Err(TrySendError::Full);
        }
        let slot = &shared.slots[tail % capacity];
        let (tag, bits) = encode(token);
        slot.tag.store(tag, Relaxed);
        slot.bits.store(bits, Relaxed);
        // Publishes the slot contents to the consumer's Acquire load of
        // `tail`.
        shared.tail.store(tail.wrapping_add(1), Release);
        shared.wake_peer();
        Ok(())
    }

    /// The fixed slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// How many tokens are currently buffered.
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        shared
            .tail
            .load(Acquire)
            .wrapping_sub(shared.head.load(Acquire))
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the receiving endpoint has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.rx_dropped.load(Acquire)
    }
}

impl Drop for RingSender {
    fn drop(&mut self) {
        self.shared.tx_dropped.store(true, SeqCst);
        self.shared.wake_always();
    }
}

impl TokenTx for RingSender {
    fn send(&self, token: Value) -> Result<(), ChannelClosed> {
        RingSender::send(self, token)
    }

    fn try_send(&self, token: Value) -> Result<(), TrySendError> {
        RingSender::try_send(self, token)
    }

    fn occupancy(&self) -> Option<usize> {
        // `tail` is this thread's private counter and `head` only grows,
        // so the snapshot is exact-or-stale-high on the head side and can
        // never exceed the ring capacity.
        Some(self.len())
    }
}

/// The consuming endpoint of an SPSC ring.  Deliberately neither `Clone`
/// nor `Sync` (the `PhantomData<Cell<()>>` marker suppresses the auto
/// impl while keeping `Send`): exactly one thread may receive, which is
/// what lets `poll` read `head` relaxed as its private counter.
pub struct RingReceiver {
    shared: Arc<Shared>,
    _single_thread: PhantomData<Cell<()>>,
}

/// Outcome of one non-blocking poll of the ring.
enum Poll {
    Ready(Value),
    Empty,
    Closed,
}

impl RingReceiver {
    fn poll(&self) -> Poll {
        let shared = &*self.shared;
        let capacity = shared.slots.len();
        // Single consumer: this thread is the only writer of `head`.
        let head = shared.head.load(Relaxed);
        loop {
            if shared.tail.load(Acquire) != head {
                let slot = &shared.slots[head % capacity];
                let token = decode(slot.tag.load(Relaxed), slot.bits.load(Relaxed));
                // Releases the slot back to the producer.
                shared.head.store(head.wrapping_add(1), Release);
                shared.wake_peer();
                return Poll::Ready(token);
            }
            if !shared.tx_dropped.load(Acquire) {
                return Poll::Empty;
            }
            // The producer is gone, but it may have published a last token
            // between the emptiness check and the flag load: loop once
            // more so close-then-drain never loses a token.
            if shared.tail.load(Acquire) == head {
                return Poll::Closed;
            }
        }
    }

    /// Takes the next token, blocking (spin, yield, park) while the ring is
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] once the ring is drained and the sender
    /// is gone — including while blocked on an empty ring (the close
    /// unparks this side).
    pub fn recv(&self) -> Result<Value, ChannelClosed> {
        let shared = &*self.shared;
        loop {
            match self.poll() {
                Poll::Ready(token) => return Ok(token),
                Poll::Closed => return Err(ChannelClosed),
                Poll::Empty => {
                    let head = shared.head.load(Relaxed);
                    shared.block_until(|| {
                        shared.tail.load(Acquire) != head || shared.tx_dropped.load(Acquire)
                    });
                }
            }
        }
    }

    /// Takes the next token without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] while the producer may still deliver,
    /// [`TryRecvError::Closed`] once the ring is drained and closed.
    pub fn try_recv(&self) -> Result<Value, TryRecvError> {
        match self.poll() {
            Poll::Ready(token) => Ok(token),
            Poll::Empty => Err(TryRecvError::Empty),
            Poll::Closed => Err(TryRecvError::Closed),
        }
    }

    /// The fixed slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// How many tokens are currently buffered.
    pub fn len(&self) -> usize {
        let shared = &*self.shared;
        shared
            .tail
            .load(Acquire)
            .wrapping_sub(shared.head.load(Acquire))
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the sending endpoint has been dropped (buffered tokens may
    /// remain receivable).
    pub fn is_closed(&self) -> bool {
        self.shared.tx_dropped.load(Acquire)
    }
}

impl Drop for RingReceiver {
    fn drop(&mut self) {
        self.shared.rx_dropped.store(true, SeqCst);
        self.shared.wake_always();
    }
}

impl TokenRx for RingReceiver {
    fn recv(&self) -> Result<Value, ChannelClosed> {
        RingReceiver::recv(self)
    }

    fn try_recv(&self) -> Result<Value, TryRecvError> {
        RingReceiver::try_recv(self)
    }

    fn occupancy(&self) -> Option<usize> {
        // Mirror of the sender-side argument: `head` is private here, and
        // the producer only advances `tail` while `tail - head < capacity`
        // against a head it read at or before ours, so `len()` is a true
        // occupancy bounded by the capacity.
        Some(self.len())
    }
}

/// The SPSC-ring backend: mints a [`ring`] per topology edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingTransport;

impl RingTransport {
    /// The backend name reported in topologies and statistics.
    pub const NAME: &'static str = "spsc-ring";
}

impl Transport for RingTransport {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn open(&self, capacity: usize) -> Result<Endpoints, TransportError> {
        let (tx, rx) = ring(capacity);
        Ok((Box::new(tx), Box::new(rx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_round_trip_through_the_encoding() {
        for token in [
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
        ] {
            let (tag, bits) = encode(token);
            assert_eq!(decode(tag, bits), token);
        }
    }

    #[test]
    fn tokens_flow_in_order_within_one_thread() {
        let (tx, rx) = ring(4);
        assert!(rx.is_empty());
        tx.send(Value::Int(1)).unwrap();
        tx.send(Value::Bool(true)).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(rx.try_recv(), Ok(Value::Bool(true)));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(rx.capacity(), 4);
    }

    #[test]
    fn a_capacity_one_ring_alternates_across_threads() {
        let (tx, rx) = ring(1);
        let producer = thread::spawn(move || {
            for i in 0..10_000i64 {
                tx.send(Value::Int(i)).expect("receiver alive");
            }
        });
        for i in 0..10_000i64 {
            assert_eq!(rx.recv(), Ok(Value::Int(i)));
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), Err(ChannelClosed));
    }

    #[test]
    fn wrap_around_preserves_fifo_order() {
        let (tx, rx) = ring(3);
        for round in 0..100i64 {
            tx.send(Value::Int(2 * round)).unwrap();
            tx.send(Value::Int(2 * round + 1)).unwrap();
            assert_eq!(rx.recv(), Ok(Value::Int(2 * round)));
            assert_eq!(rx.recv(), Ok(Value::Int(2 * round + 1)));
        }
    }

    #[test]
    fn try_send_reports_full_without_parking() {
        let (tx, rx) = ring(2);
        assert_eq!(tx.try_send(Value::Int(1)), Ok(()));
        assert_eq!(tx.try_send(Value::Int(2)), Ok(()));
        assert_eq!(tx.try_send(Value::Int(3)), Err(TrySendError::Full));
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(tx.try_send(Value::Int(3)), Ok(()));
        assert_eq!(rx.recv(), Ok(Value::Int(2)));
        assert_eq!(rx.recv(), Ok(Value::Int(3)));
        drop(rx);
        assert_eq!(tx.try_send(Value::Int(4)), Err(TrySendError::Closed));
    }

    #[test]
    fn close_then_drain_keeps_buffered_tokens() {
        let (tx, rx) = ring(4);
        tx.send(Value::Int(1)).unwrap();
        tx.send(Value::Int(2)).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(rx.try_recv(), Ok(Value::Int(2)));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(rx.recv(), Err(ChannelClosed));
    }

    #[test]
    fn dropping_the_receiver_fails_and_unblocks_the_sender() {
        let (tx, rx) = ring(1);
        tx.send(Value::Int(0)).unwrap();
        let blocked = thread::spawn(move || {
            // The ring is full: this send parks until the drop below.
            let refused = tx.send(Value::Int(1));
            assert_eq!(refused, Err(ChannelClosed));
            assert!(tx.is_closed());
        });
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        blocked.join().unwrap();
    }

    #[test]
    fn dropping_the_sender_unblocks_a_parked_receiver() {
        let (tx, rx) = ring(1);
        let blocked = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(blocked.join().unwrap(), Err(ChannelClosed));
    }

    #[test]
    fn the_transport_mints_working_endpoint_pairs() {
        let (tx, rx) = RingTransport.open(2).expect("in-process");
        tx.send(Value::Bool(true)).unwrap();
        assert_eq!(rx.recv(), Ok(Value::Bool(true)));
        assert_eq!(RingTransport.name(), "spsc-ring");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rings_are_refused() {
        let _ = ring(0);
    }
}
