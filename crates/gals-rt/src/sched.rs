//! The work-stealing batched pool scheduler.
//!
//! Thread-per-component execution oversubscribes every real machine once a
//! deployment grows past core count — the paper's claim is about
//! *arbitrary* component counts, so the runtime needs an execution mode
//! whose OS-thread footprint is fixed.  This module provides it: a pool of
//! `workers` OS threads cooperatively runs every component
//! ([`crate::worker::Driver`]) by pulling **ready** components from
//! per-worker deques — each worker pops its own deque from the back and,
//! when empty, steals from a sibling's front — and stepping each one up to
//! `quantum` reactions per dispatch (the batching that amortizes channel
//! hand-offs and deque traffic over many reactions).  A component that
//! yields its quantum is re-queued at the *front* of the deque, behind
//! every other ready component, so the quantum really does round-robin
//! the deque instead of re-dispatching the yielder forever.
//!
//! A dispatch never blocks the worker thread: a driver that runs into an
//! empty upstream or a full downstream edge returns
//! [`Pending`](crate::worker::Pending) and is parked in a per-component
//! *blocked* state.  Readiness notification is topological: every token a
//! dispatch moves can only unblock the component's channel neighbors, so
//! after each dispatch that moved tokens (or finished, closing its edges)
//! the scheduler re-queues the blocked neighbors.  A wake that races a
//! concurrent dispatch of the same component is latched in a `NOTIFIED`
//! state instead of being lost — the dispatching worker observes it when it
//! tries to block and re-queues the component itself.  Workers with no
//! runnable component park on a condvar with a bounded timeout (same
//! insurance as the SPSC ring: a hypothetically missed notify costs a
//! retry, never a hang).
//!
//! Because environment streams are preloaded, every wake originates inside
//! a dispatch; when nothing is queued, nothing is running and components
//! remain, the blocked components can never make progress again — a true
//! communication deadlock (only reachable on a cyclic topology that got
//! past the static cycle analysis: explicitly allowed, or derivably
//! bounded but never primed with a first token).  The pool detects that
//! state and finalizes the survivors with [`StopReason::Deadlocked`]
//! instead of hanging, which the dedicated-thread mode would.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{fence, AtomicU8, AtomicUsize};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::deploy::Topology;
use crate::stats::{PoolWorkerStats, StopReason};
use crate::trace::TraceBuffer;
use crate::worker::{DriveOutcome, Driver, WorkerReport};

/// How a deployment maps components onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One dedicated OS thread per component; channel waits park the
    /// thread (blocking-read/blocking-write backpressure).  The mode of
    /// earlier releases, and still the default.
    #[default]
    ThreadPerComponent,
    /// A fixed pool of `workers` OS threads cooperatively runs every
    /// component: ready components are pulled from work-stealing deques
    /// and stepped up to `quantum` reactions per dispatch.  The OS-thread
    /// footprint is `workers`, whatever the component count.
    Pool {
        /// Pool size in OS threads (must be nonzero).
        workers: usize,
        /// Reactions one dispatch may run before the component is re-queued
        /// behind its peers (must be nonzero).  Larger quanta amortize
        /// scheduling overhead; smaller quanta interleave more fairly.
        quantum: u64,
    },
}

impl ExecutionMode {
    /// A pool sized to the machine: one worker per available core, with a
    /// moderate 32-reaction quantum.
    pub fn pool_per_core() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|cores| cores.get())
            .unwrap_or(1);
        ExecutionMode::Pool {
            workers,
            quantum: 32,
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::ThreadPerComponent => write!(f, "thread-per-component"),
            ExecutionMode::Pool { workers, quantum } => {
                write!(f, "pool of {workers} worker(s), quantum {quantum}")
            }
        }
    }
}

/// Per-component scheduling states (one `AtomicU8` per component).
///
/// Transitions:
/// `QUEUED -> RUNNING` (a worker pops the component and takes its driver),
/// `RUNNING -> QUEUED|BLOCKED|DONE` (dispatch concluded),
/// `RUNNING -> NOTIFIED` (a wake raced the dispatch; latched, not lost),
/// `NOTIFIED -> QUEUED` (the dispatching worker re-queues instead of
/// blocking), `BLOCKED -> QUEUED` (a neighbor's wake re-queues).
const BLOCKED: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Bound on one idle park: a missed notify (prevented by the `SeqCst`
/// handshake, but cheap to insure against) costs a retry, not a hang.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

struct Shared {
    /// Driver storage while a component is not being dispatched.  A
    /// component index lives in at most one deque at a time, and `QUEUED`
    /// implies its driver is in the slot.
    slots: Vec<Mutex<Option<Driver>>>,
    states: Vec<AtomicU8>,
    reports: Vec<Mutex<Option<WorkerReport>>>,
    /// The per-worker deques: owner pushes/pops at the back, thieves steal
    /// from the front.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Channel neighbors (upstream producers and downstream consumers) of
    /// each component — the only components a dispatch can unblock.
    neighbors: Vec<Vec<usize>>,
    /// Components not yet `DONE`.
    remaining: AtomicUsize,
    /// Component indices sitting in some deque.
    queued: AtomicUsize,
    /// Outstanding work: queued components plus dispatches in flight.  A
    /// dequeued component stays counted until its dispatch has published
    /// every wake, so observing `work == 0` with `remaining > 0` proves no
    /// future wake can originate — a communication deadlock.
    work: AtomicUsize,
    /// Workers parked on `idle`.
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    idle: Condvar,
}

impl Shared {
    fn lock_park(&self) -> MutexGuard<'_, ()> {
        self.park_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes a ready component onto a worker's deque and wakes a parked
    /// worker if any.  The counters are incremented *before* the push: a
    /// popped component can then never precede its own increments, so the
    /// `queued`/`work` decrements that follow a pop cannot transiently
    /// underflow the counters (which would let `park` misdiagnose a
    /// healthy deployment as deadlocked).  The `SeqCst` fence pairs with
    /// the re-check a parking worker performs under the lock: either this
    /// side sees `sleepers > 0` and notifies, or the parking side's
    /// re-check sees `queued > 0` and never sleeps.
    fn enqueue(&self, worker: usize, component: usize) {
        self.enqueue_at(worker, component, false);
    }

    /// Re-queues a component that yielded its quantum at the *front* of
    /// the owner's deque — the end the owner pops last — so the remaining
    /// ready components run before the yielder is dispatched again.
    /// Pushing it to the back would let the owner's back-pop re-dispatch
    /// the same component immediately, starving its deque siblings and
    /// defeating the fairness the quantum exists for.
    fn enqueue_yielded(&self, worker: usize, component: usize) {
        self.enqueue_at(worker, component, true);
    }

    fn enqueue_at(&self, worker: usize, component: usize, front: bool) {
        self.queued.fetch_add(1, SeqCst);
        self.work.fetch_add(1, SeqCst);
        {
            let mut queue = self.queues[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if front {
                queue.push_front(component);
            } else {
                queue.push_back(component);
            }
        }
        fence(SeqCst);
        if self.sleepers.load(Relaxed) > 0 {
            let _guard = self.lock_park();
            self.idle.notify_all();
        }
    }

    /// Re-queues `component` if it is blocked; latches the wake if it is
    /// being dispatched right now.  Spurious wakes are harmless — a
    /// re-driven component that is still blocked simply re-blocks.
    fn wake(&self, worker: usize, component: usize) {
        let state = &self.states[component];
        loop {
            match state.load(SeqCst) {
                BLOCKED => {
                    if state
                        .compare_exchange(BLOCKED, QUEUED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        self.enqueue(worker, component);
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, NOTIFIED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already latched, or finished: the wake is
                // subsumed.
                QUEUED | NOTIFIED | DONE => return,
                other => unreachable!("component state {other}"),
            }
        }
    }
}

/// Runs `drivers` to completion on a pool of `workers` OS threads and
/// returns the per-component reports (in component order), the per-worker
/// scheduling counters, and — when `trace` carries the deployment's trace
/// epoch and buffer limit — one scheduling-event buffer per worker (empty
/// `Vec` otherwise).
pub(crate) fn run_pool(
    drivers: Vec<Driver>,
    topology: &Topology,
    workers: usize,
    quantum: u64,
    trace: Option<(Instant, usize)>,
) -> (Vec<WorkerReport>, Vec<PoolWorkerStats>, Vec<TraceBuffer>) {
    let n = drivers.len();
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for spec in &topology.channels {
        if !neighbors[spec.producer].contains(&spec.consumer) {
            neighbors[spec.producer].push(spec.consumer);
        }
        if !neighbors[spec.consumer].contains(&spec.producer) {
            neighbors[spec.consumer].push(spec.producer);
        }
    }

    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for component in 0..n {
        // Round-robin seeding spreads the initial ready set evenly.
        queues[component % workers].push_back(component);
    }
    let shared = Shared {
        slots: drivers.into_iter().map(|d| Mutex::new(Some(d))).collect(),
        states: (0..n).map(|_| AtomicU8::new(QUEUED)).collect(),
        reports: (0..n).map(|_| Mutex::new(None)).collect(),
        queues: queues.into_iter().map(Mutex::new).collect(),
        neighbors,
        remaining: AtomicUsize::new(n),
        queued: AtomicUsize::new(n),
        work: AtomicUsize::new(n),
        sleepers: AtomicUsize::new(0),
        park_lock: Mutex::new(()),
        idle: Condvar::new(),
    };

    let outcomes: Vec<(PoolWorkerStats, Option<TraceBuffer>)> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || worker_loop(shared, w, quantum, trace)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    let reports = shared
        .reports
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every component finished")
        })
        .collect();
    let mut worker_stats = Vec::with_capacity(outcomes.len());
    let mut worker_traces = Vec::new();
    for (stats, buffer) in outcomes {
        worker_stats.push(stats);
        if let Some(buffer) = buffer {
            worker_traces.push(buffer);
        }
    }
    (reports, worker_stats, worker_traces)
}

fn worker_loop(
    shared: &Shared,
    me: usize,
    quantum: u64,
    trace: Option<(Instant, usize)>,
) -> (PoolWorkerStats, Option<TraceBuffer>) {
    let mut stats = PoolWorkerStats::new(me);
    // The worker's private scheduling-event recorder: dispatches, steals
    // and parks land here (component events ride in the drivers' own
    // buffers), so the hot path never shares a buffer between threads.
    let mut recorder = trace.map(|(epoch, limit)| TraceBuffer::new(epoch, limit));
    while shared.remaining.load(SeqCst) > 0 {
        match pop_task(shared, me) {
            Some((component, stolen)) => {
                stats.dispatches += 1;
                if stolen {
                    stats.steals += 1;
                }
                if let Some(recorder) = recorder.as_mut() {
                    recorder.dispatch(component, stolen);
                }
                dispatch(shared, me, component, quantum);
            }
            None => {
                stats.parks += 1;
                if let Some(recorder) = recorder.as_mut() {
                    recorder.park();
                }
                park(shared);
            }
        }
    }
    // Someone must still be parked: make sure every sibling re-checks the
    // exit condition.
    let _guard = shared.lock_park();
    shared.idle.notify_all();
    drop(_guard);
    (stats, recorder)
}

/// Pops the next ready component: own deque from the back first, then each
/// sibling's front (steal-on-empty).
fn pop_task(shared: &Shared, me: usize) -> Option<(usize, bool)> {
    let workers = shared.queues.len();
    if let Some(component) = {
        let mut own = shared.queues[me].lock().unwrap_or_else(|e| e.into_inner());
        own.pop_back()
    } {
        shared.queued.fetch_sub(1, SeqCst);
        return Some((component, false));
    }
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(component) = {
            let mut queue = shared.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue.pop_front()
        } {
            shared.queued.fetch_sub(1, SeqCst);
            return Some((component, true));
        }
    }
    None
}

/// Runs one quantum of one component and performs the resulting state
/// transition, waking the channel neighbors its progress may have
/// unblocked.
fn dispatch(shared: &Shared, me: usize, component: usize, quantum: u64) {
    let state = &shared.states[component];
    let previous = state.swap(RUNNING, SeqCst);
    debug_assert_eq!(previous, QUEUED, "a dequeued component is queued");

    let mut driver = shared.slots[component]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("a queued component's driver is parked in its slot");
    let before = driver.tokens_moved();
    let outcome = driver.drive(quantum);
    let moved = driver.tokens_moved() != before;

    let mut finished = false;
    match outcome {
        DriveOutcome::Yielded => {
            *shared.slots[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(driver);
            // The wake latch is subsumed: the component goes straight back
            // to the ready set either way.
            state.store(QUEUED, SeqCst);
            shared.enqueue_yielded(me, component);
        }
        DriveOutcome::Pending(_edge) => {
            // Park the driver *before* publishing the blocked state: a
            // concurrent wake that sees BLOCKED may immediately re-queue
            // the component for another worker, which will look for the
            // driver in the slot.
            *shared.slots[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(driver);
            if state
                .compare_exchange(RUNNING, BLOCKED, SeqCst, SeqCst)
                .is_err()
            {
                // A wake raced the dispatch (NOTIFIED): the edge may have
                // moved since the driver observed it, so re-queue instead
                // of blocking.
                state.store(QUEUED, SeqCst);
                shared.enqueue(me, component);
            }
        }
        DriveOutcome::Done(stop) => {
            // Finalizing drops the endpoints, closing every adjacent
            // channel *before* the neighbors are woken to observe it.
            let report = driver.finish(stop);
            *shared.reports[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(report);
            state.store(DONE, SeqCst);
            finished = true;
        }
    }

    if moved || finished {
        // Every token this dispatch moved (and every channel it closed)
        // can only unblock the component's channel neighbors.
        for &neighbor in &shared.neighbors[component] {
            shared.wake(me, neighbor);
        }
    }
    if finished && shared.remaining.fetch_sub(1, SeqCst) == 1 {
        let _guard = shared.lock_park();
        shared.idle.notify_all();
    }
    // The decrement is ordered after every wake/re-queue above: a worker
    // that observes `work == 0` knows no wake is still in flight.
    shared.work.fetch_sub(1, SeqCst);
}

/// Parks an idle worker until work may exist again, detecting the terminal
/// all-blocked state (a communication deadlock on a cyclic topology the
/// static analysis let through) instead of sleeping forever on it.
fn park(shared: &Shared) {
    let guard = shared.lock_park();
    // Register as a sleeper *before* re-checking for work: the enqueue
    // side increments `queued` before loading `sleepers`, and this side
    // increments `sleepers` before loading `queued` — two store→load
    // pairs under `SeqCst`, so at least one side observes the other
    // (either the enqueuer notifies, or this re-check sees the queued
    // component and skips the wait).  The notify itself is taken under
    // `park_lock`, which this thread holds until `wait_timeout` releases
    // it, so it cannot fire between the re-check and the wait.
    shared.sleepers.fetch_add(1, SeqCst);
    if shared.queued.load(SeqCst) == 0 && shared.remaining.load(SeqCst) > 0 {
        if shared.work.load(SeqCst) == 0 {
            // Nothing queued, nothing running, components remaining:
            // every survivor is BLOCKED and no future wake can originate.
            // Finalize them as deadlocked (the park lock serializes this
            // recovery).
            for component in 0..shared.states.len() {
                let state = &shared.states[component];
                if state
                    .compare_exchange(BLOCKED, DONE, SeqCst, SeqCst)
                    .is_ok()
                {
                    let driver = shared.slots[component]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("a blocked component's driver is parked in its slot");
                    *shared.reports[component]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) =
                        Some(driver.finish(StopReason::Deadlocked));
                    shared.remaining.fetch_sub(1, SeqCst);
                }
            }
            shared.idle.notify_all();
        } else {
            let _guard = shared
                .idle
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
    shared.sleepers.fetch_sub(1, SeqCst);
}
