//! The work-stealing batched pool scheduler — batch and shared (serving)
//! flavors.
//!
//! Thread-per-component execution oversubscribes every real machine once a
//! deployment grows past core count — the paper's claim is about
//! *arbitrary* component counts, so the runtime needs an execution mode
//! whose OS-thread footprint is fixed.  This module provides it: a pool of
//! `workers` OS threads cooperatively runs every component
//! (the `crate::worker::Driver`) by pulling **ready** components from
//! per-worker deques — each worker pops its own deque from the back and,
//! when empty, steals from a sibling's front — and stepping each one up to
//! `quantum` reactions per dispatch (the batching that amortizes channel
//! hand-offs and deque traffic over many reactions).  A component that
//! yields its quantum is re-queued at the *front* of the deque, behind
//! every other ready component, so the quantum really does round-robin
//! the deque instead of re-dispatching the yielder forever.
//!
//! A dispatch never blocks the worker thread: a driver that runs into an
//! empty upstream or a full downstream edge returns
//! `Pending` (see `crate::worker`) and is parked in a per-component
//! *blocked* state.  Readiness notification is topological: every token a
//! dispatch moves can only unblock the component's channel neighbors, so
//! after each dispatch that moved tokens (or finished, closing its edges)
//! the scheduler re-queues the blocked neighbors.  A wake that races a
//! concurrent dispatch of the same component is latched in a `NOTIFIED`
//! state instead of being lost — the dispatching worker observes it when it
//! tries to block and re-queues the component itself.  Workers with no
//! runnable component park on a condvar with a bounded timeout (same
//! insurance as the SPSC ring: a hypothetically missed notify costs a
//! retry, never a hang).
//!
//! Because environment streams are preloaded, every wake originates inside
//! a dispatch; when nothing is queued, nothing is running and components
//! remain, the blocked components can never make progress again — a true
//! communication deadlock (only reachable on a cyclic topology that got
//! past the static cycle analysis: explicitly allowed, or derivably
//! bounded but never primed with a first token).  The pool detects that
//! state and finalizes the survivors with [`StopReason::Deadlocked`]
//! instead of hanging, which the dedicated-thread mode would.
//!
//! # The shared pool (serving flavor)
//!
//! [`SharedPool`] generalizes the same machinery from one batch deployment
//! to **many concurrent deployments on one pool of workers** — the
//! substrate of the `gals-serve` crate.  The differences, and the
//! invariants each upholds:
//!
//! * **Dynamic component registry.**  Components are not a fixed `Vec`
//!   sized at startup: each submitted deployment contributes its own
//!   reference-counted cells, namespaced per deployment (a cell knows its
//!   deployment group and its local index; global identity is the `Arc`
//!   itself, so component indices of different deployments can never
//!   collide).  Neighbor links are weak references — a drained deployment
//!   frees its cells even though its components referenced each other.
//! * **Priority-aware ready set.**  The per-worker FIFO deques become
//!   per-worker max-heaps ordered by `(priority, submission age)`: a
//!   higher-priority ready component is dispatched before any
//!   lower-priority one *on every pop, including steals* — this is what
//!   lets a latency-critical deployment overtake batch tenants — while
//!   components of equal priority keep the FIFO fairness of the batch
//!   pool (a yielded component re-enters behind its equal-priority peers,
//!   because re-enqueueing assigns a fresh, larger age).
//! * **External wakes.**  Batch runs preload every environment stream, so
//!   every wake originates inside a dispatch.  A served deployment is fed
//!   *while it runs*: [`SubmittedDeployment::feed`] pushes tokens into an
//!   ingress channel and then performs the same latched wake the
//!   scheduler uses internally, so a component blocked on an empty
//!   environment edge is re-queued by the client's feed — and draining an
//!   egress channel ([`SubmittedDeployment::poll_outputs`]) wakes the
//!   producer that a full egress buffer had blocked.
//! * **No deadlock finalization.**  Nothing queued with components
//!   remaining is a *normal* state here — every tenant may simply be
//!   waiting for its next external feed — so the shared pool never
//!   finalizes blocked components; idle workers just park.  Static
//!   admission (the serve layer prices only verified designs whose
//!   cycles are refused or proven) is what replaces the batch pool's
//!   dynamic detection.
//! * **Worker↔core affinity.**  Each worker thread runs an optional
//!   setup hook at startup ([`PoolOptions::worker_setup`]); the hook's
//!   success is reported as the `pinned` flag of that worker's
//!   [`PoolWorkerStats`].  The scheduler itself stays OS-agnostic — the
//!   hook is where a serving layer pins workers to cores.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

use signal_lang::{Name, Value};
use sim::Flows;

use crate::deploy::{
    DeployError, DeploymentOutcome, EgressPort, IngressPort, OutcomeParts, StagedDeployment,
    Topology,
};
use crate::stats::{PoolWorkerStats, StopReason};
use crate::trace::TraceBuffer;
use crate::transport::TrySendError;
use crate::worker::{DriveOutcome, Driver, WorkerReport};

/// How a deployment maps components onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One dedicated OS thread per component; channel waits park the
    /// thread (blocking-read/blocking-write backpressure).  The mode of
    /// earlier releases, and still the default.
    #[default]
    ThreadPerComponent,
    /// A fixed pool of `workers` OS threads cooperatively runs every
    /// component: ready components are pulled from work-stealing deques
    /// and stepped up to `quantum` reactions per dispatch.  The OS-thread
    /// footprint is `workers`, whatever the component count.
    Pool {
        /// Pool size in OS threads (must be nonzero).
        workers: usize,
        /// Reactions one dispatch may run before the component is re-queued
        /// behind its peers (must be nonzero).  Larger quanta amortize
        /// scheduling overhead; smaller quanta interleave more fairly.
        quantum: u64,
    },
}

impl ExecutionMode {
    /// A pool sized to the machine: one worker per available core, with a
    /// moderate 32-reaction quantum.
    pub fn pool_per_core() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|cores| cores.get())
            .unwrap_or(1);
        ExecutionMode::Pool {
            workers,
            quantum: 32,
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::ThreadPerComponent => write!(f, "thread-per-component"),
            ExecutionMode::Pool { workers, quantum } => {
                write!(f, "pool of {workers} worker(s), quantum {quantum}")
            }
        }
    }
}

/// Per-component scheduling states (one `AtomicU8` per component).
///
/// Transitions:
/// `QUEUED -> RUNNING` (a worker pops the component and takes its driver),
/// `RUNNING -> QUEUED|BLOCKED|DONE` (dispatch concluded),
/// `RUNNING -> NOTIFIED` (a wake raced the dispatch; latched, not lost),
/// `NOTIFIED -> QUEUED` (the dispatching worker re-queues instead of
/// blocking), `BLOCKED -> QUEUED` (a neighbor's wake re-queues).
const BLOCKED: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Bound on one idle park: a missed notify (prevented by the `SeqCst`
/// handshake, but cheap to insure against) costs a retry, not a hang.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

struct Shared {
    /// Driver storage while a component is not being dispatched.  A
    /// component index lives in at most one deque at a time, and `QUEUED`
    /// implies its driver is in the slot.
    slots: Vec<Mutex<Option<Driver>>>,
    states: Vec<AtomicU8>,
    reports: Vec<Mutex<Option<WorkerReport>>>,
    /// The per-worker deques: owner pushes/pops at the back, thieves steal
    /// from the front.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Channel neighbors (upstream producers and downstream consumers) of
    /// each component — the only components a dispatch can unblock.
    neighbors: Vec<Vec<usize>>,
    /// Components not yet `DONE`.
    remaining: AtomicUsize,
    /// Component indices sitting in some deque.
    queued: AtomicUsize,
    /// Outstanding work: queued components plus dispatches in flight.  A
    /// dequeued component stays counted until its dispatch has published
    /// every wake, so observing `work == 0` with `remaining > 0` proves no
    /// future wake can originate — a communication deadlock.
    work: AtomicUsize,
    /// Workers parked on `idle`.
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    idle: Condvar,
}

impl Shared {
    fn lock_park(&self) -> MutexGuard<'_, ()> {
        self.park_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes a ready component onto a worker's deque and wakes a parked
    /// worker if any.  The counters are incremented *before* the push: a
    /// popped component can then never precede its own increments, so the
    /// `queued`/`work` decrements that follow a pop cannot transiently
    /// underflow the counters (which would let `park` misdiagnose a
    /// healthy deployment as deadlocked).  The `SeqCst` fence pairs with
    /// the re-check a parking worker performs under the lock: either this
    /// side sees `sleepers > 0` and notifies, or the parking side's
    /// re-check sees `queued > 0` and never sleeps.
    fn enqueue(&self, worker: usize, component: usize) {
        self.enqueue_at(worker, component, false);
    }

    /// Re-queues a component that yielded its quantum at the *front* of
    /// the owner's deque — the end the owner pops last — so the remaining
    /// ready components run before the yielder is dispatched again.
    /// Pushing it to the back would let the owner's back-pop re-dispatch
    /// the same component immediately, starving its deque siblings and
    /// defeating the fairness the quantum exists for.
    fn enqueue_yielded(&self, worker: usize, component: usize) {
        self.enqueue_at(worker, component, true);
    }

    fn enqueue_at(&self, worker: usize, component: usize, front: bool) {
        self.queued.fetch_add(1, SeqCst);
        self.work.fetch_add(1, SeqCst);
        {
            let mut queue = self.queues[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if front {
                queue.push_front(component);
            } else {
                queue.push_back(component);
            }
        }
        fence(SeqCst);
        if self.sleepers.load(Relaxed) > 0 {
            let _guard = self.lock_park();
            self.idle.notify_all();
        }
    }

    /// Re-queues `component` if it is blocked; latches the wake if it is
    /// being dispatched right now.  Spurious wakes are harmless — a
    /// re-driven component that is still blocked simply re-blocks.
    fn wake(&self, worker: usize, component: usize) {
        let state = &self.states[component];
        loop {
            match state.load(SeqCst) {
                BLOCKED => {
                    if state
                        .compare_exchange(BLOCKED, QUEUED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        self.enqueue(worker, component);
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, NOTIFIED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already latched, or finished: the wake is
                // subsumed.
                QUEUED | NOTIFIED | DONE => return,
                other => unreachable!("component state {other}"),
            }
        }
    }
}

/// Runs `drivers` to completion on a pool of `workers` OS threads and
/// returns the per-component reports (in component order), the per-worker
/// scheduling counters, and — when `trace` carries the deployment's trace
/// epoch and buffer limit — one scheduling-event buffer per worker (empty
/// `Vec` otherwise).
pub(crate) fn run_pool(
    drivers: Vec<Driver>,
    topology: &Topology,
    workers: usize,
    quantum: u64,
    trace: Option<(Instant, usize)>,
) -> (Vec<WorkerReport>, Vec<PoolWorkerStats>, Vec<TraceBuffer>) {
    let n = drivers.len();
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for spec in &topology.channels {
        if !neighbors[spec.producer].contains(&spec.consumer) {
            neighbors[spec.producer].push(spec.consumer);
        }
        if !neighbors[spec.consumer].contains(&spec.producer) {
            neighbors[spec.consumer].push(spec.producer);
        }
    }

    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for component in 0..n {
        // Round-robin seeding spreads the initial ready set evenly.
        queues[component % workers].push_back(component);
    }
    let shared = Shared {
        slots: drivers.into_iter().map(|d| Mutex::new(Some(d))).collect(),
        states: (0..n).map(|_| AtomicU8::new(QUEUED)).collect(),
        reports: (0..n).map(|_| Mutex::new(None)).collect(),
        queues: queues.into_iter().map(Mutex::new).collect(),
        neighbors,
        remaining: AtomicUsize::new(n),
        queued: AtomicUsize::new(n),
        work: AtomicUsize::new(n),
        sleepers: AtomicUsize::new(0),
        park_lock: Mutex::new(()),
        idle: Condvar::new(),
    };

    let outcomes: Vec<(PoolWorkerStats, Option<TraceBuffer>)> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || worker_loop(shared, w, quantum, trace)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    let reports = shared
        .reports
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every component finished")
        })
        .collect();
    let mut worker_stats = Vec::with_capacity(outcomes.len());
    let mut worker_traces = Vec::new();
    for (stats, buffer) in outcomes {
        worker_stats.push(stats);
        if let Some(buffer) = buffer {
            worker_traces.push(buffer);
        }
    }
    (reports, worker_stats, worker_traces)
}

fn worker_loop(
    shared: &Shared,
    me: usize,
    quantum: u64,
    trace: Option<(Instant, usize)>,
) -> (PoolWorkerStats, Option<TraceBuffer>) {
    let mut stats = PoolWorkerStats::new(me);
    // The worker's private scheduling-event recorder: dispatches, steals
    // and parks land here (component events ride in the drivers' own
    // buffers), so the hot path never shares a buffer between threads.
    let mut recorder = trace.map(|(epoch, limit)| TraceBuffer::new(epoch, limit));
    while shared.remaining.load(SeqCst) > 0 {
        match pop_task(shared, me) {
            Some((component, stolen)) => {
                stats.dispatches += 1;
                if stolen {
                    stats.steals += 1;
                }
                if let Some(recorder) = recorder.as_mut() {
                    recorder.dispatch(component, stolen);
                }
                dispatch(shared, me, component, quantum);
            }
            None => {
                stats.parks += 1;
                if let Some(recorder) = recorder.as_mut() {
                    recorder.park();
                }
                park(shared);
            }
        }
    }
    // Someone must still be parked: make sure every sibling re-checks the
    // exit condition.
    let _guard = shared.lock_park();
    shared.idle.notify_all();
    drop(_guard);
    (stats, recorder)
}

/// Pops the next ready component: own deque from the back first, then each
/// sibling's front (steal-on-empty).
fn pop_task(shared: &Shared, me: usize) -> Option<(usize, bool)> {
    let workers = shared.queues.len();
    if let Some(component) = {
        let mut own = shared.queues[me].lock().unwrap_or_else(|e| e.into_inner());
        own.pop_back()
    } {
        shared.queued.fetch_sub(1, SeqCst);
        return Some((component, false));
    }
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(component) = {
            let mut queue = shared.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue.pop_front()
        } {
            shared.queued.fetch_sub(1, SeqCst);
            return Some((component, true));
        }
    }
    None
}

/// Runs one quantum of one component and performs the resulting state
/// transition, waking the channel neighbors its progress may have
/// unblocked.
fn dispatch(shared: &Shared, me: usize, component: usize, quantum: u64) {
    let state = &shared.states[component];
    let previous = state.swap(RUNNING, SeqCst);
    debug_assert_eq!(previous, QUEUED, "a dequeued component is queued");

    let mut driver = shared.slots[component]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("a queued component's driver is parked in its slot");
    let before = driver.tokens_moved();
    let outcome = driver.drive(quantum);
    let moved = driver.tokens_moved() != before;

    let mut finished = false;
    match outcome {
        DriveOutcome::Yielded => {
            *shared.slots[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(driver);
            // The wake latch is subsumed: the component goes straight back
            // to the ready set either way.
            state.store(QUEUED, SeqCst);
            shared.enqueue_yielded(me, component);
        }
        DriveOutcome::Pending(_edge) => {
            // Park the driver *before* publishing the blocked state: a
            // concurrent wake that sees BLOCKED may immediately re-queue
            // the component for another worker, which will look for the
            // driver in the slot.
            *shared.slots[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(driver);
            if state
                .compare_exchange(RUNNING, BLOCKED, SeqCst, SeqCst)
                .is_err()
            {
                // A wake raced the dispatch (NOTIFIED): the edge may have
                // moved since the driver observed it, so re-queue instead
                // of blocking.
                state.store(QUEUED, SeqCst);
                shared.enqueue(me, component);
            }
        }
        DriveOutcome::Done(stop) => {
            // Finalizing drops the endpoints, closing every adjacent
            // channel *before* the neighbors are woken to observe it.
            let report = driver.finish(stop);
            *shared.reports[component]
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(report);
            state.store(DONE, SeqCst);
            finished = true;
        }
    }

    if moved || finished {
        // Every token this dispatch moved (and every channel it closed)
        // can only unblock the component's channel neighbors.
        for &neighbor in &shared.neighbors[component] {
            shared.wake(me, neighbor);
        }
    }
    if finished && shared.remaining.fetch_sub(1, SeqCst) == 1 {
        let _guard = shared.lock_park();
        shared.idle.notify_all();
    }
    // The decrement is ordered after every wake/re-queue above: a worker
    // that observes `work == 0` knows no wake is still in flight.
    shared.work.fetch_sub(1, SeqCst);
}

/// Parks an idle worker until work may exist again, detecting the terminal
/// all-blocked state (a communication deadlock on a cyclic topology the
/// static analysis let through) instead of sleeping forever on it.
fn park(shared: &Shared) {
    let guard = shared.lock_park();
    // Register as a sleeper *before* re-checking for work: the enqueue
    // side increments `queued` before loading `sleepers`, and this side
    // increments `sleepers` before loading `queued` — two store→load
    // pairs under `SeqCst`, so at least one side observes the other
    // (either the enqueuer notifies, or this re-check sees the queued
    // component and skips the wait).  The notify itself is taken under
    // `park_lock`, which this thread holds until `wait_timeout` releases
    // it, so it cannot fire between the re-check and the wait.
    shared.sleepers.fetch_add(1, SeqCst);
    if shared.queued.load(SeqCst) == 0 && shared.remaining.load(SeqCst) > 0 {
        if shared.work.load(SeqCst) == 0 {
            // Nothing queued, nothing running, components remaining:
            // every survivor is BLOCKED and no future wake can originate.
            // Finalize them as deadlocked (the park lock serializes this
            // recovery).
            for component in 0..shared.states.len() {
                let state = &shared.states[component];
                if state
                    .compare_exchange(BLOCKED, DONE, SeqCst, SeqCst)
                    .is_ok()
                {
                    let driver = shared.slots[component]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("a blocked component's driver is parked in its slot");
                    *shared.reports[component]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) =
                        Some(driver.finish(StopReason::Deadlocked));
                    shared.remaining.fetch_sub(1, SeqCst);
                }
            }
            shared.idle.notify_all();
        } else {
            let _guard = shared
                .idle
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
    shared.sleepers.fetch_sub(1, SeqCst);
}

// ---------------------------------------------------------------------------
// The shared pool (serving flavor): many deployments, one set of workers.
// ---------------------------------------------------------------------------

/// Bound on one idle park of a shared-pool worker.  Longer than the batch
/// pool's [`PARK_TIMEOUT`]: an idle *serving* pool is a normal steady
/// state (every tenant waiting on its next feed), so the insurance wakeup
/// can afford to be lazier.
const SERVE_PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// How long one `drain` waiting slice lasts between egress polls.
const DRAIN_POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Configuration of a [`SharedPool`].
#[derive(Clone)]
pub struct PoolOptions {
    /// Pool size in OS threads (must be nonzero).
    pub workers: usize,
    /// Reactions one dispatch may run before the component is re-queued
    /// behind its equal-priority peers (must be nonzero).
    pub quantum: u64,
    /// Start the pool paused: workers park without dispatching until
    /// [`SharedPool::resume`].  Useful to stage a reproducible backlog.
    pub paused: bool,
    /// Per-worker startup hook, called once on each worker thread with the
    /// worker index before it dispatches anything.  Its return value is
    /// reported as the `pinned` flag of that worker's
    /// [`PoolWorkerStats`] — the seam where a serving layer pins workers
    /// to cores without the scheduler knowing how.
    pub worker_setup: Option<Arc<dyn Fn(usize) -> bool + Send + Sync>>,
}

impl PoolOptions {
    /// Options for a pool of `workers` threads at `quantum` reactions per
    /// dispatch, not paused, with no worker setup hook.
    pub fn new(workers: usize, quantum: u64) -> Self {
        PoolOptions {
            workers,
            quantum,
            paused: false,
            worker_setup: None,
        }
    }

    /// One worker per available core, with the same moderate quantum as
    /// [`ExecutionMode::pool_per_core`].
    pub fn per_core() -> Self {
        match ExecutionMode::pool_per_core() {
            ExecutionMode::Pool { workers, quantum } => PoolOptions::new(workers, quantum),
            ExecutionMode::ThreadPerComponent => unreachable!("pool_per_core returns a pool"),
        }
    }
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions::per_core()
    }
}

impl fmt::Debug for PoolOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolOptions")
            .field("workers", &self.workers)
            .field("quantum", &self.quantum)
            .field("paused", &self.paused)
            .field("worker_setup", &self.worker_setup.as_ref().map(|_| "hook"))
            .finish()
    }
}

/// Scheduling options of one [`SharedPool::submit`].
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Scheduling priority of every component of the deployment: a ready
    /// component always dispatches before any lower-priority ready
    /// component, on every pop and steal.
    pub base_priority: u32,
    /// Per-component boosts keyed by component (machine) name, added on
    /// top of the base — the hook the serving layer uses to push a
    /// deployment's predicted bottleneck components ahead of their peers.
    /// Names that match no component are ignored.
    pub boosts: BTreeMap<String, u32>,
}

/// One entry of a worker's priority heap.  Higher priority wins; among
/// equals, the *smaller* submission sequence wins — FIFO, so a yielded
/// component (re-enqueued with a fresh, larger sequence) goes behind its
/// equal-priority peers exactly like the batch pool's front-push.
struct ReadyEntry {
    priority: u32,
    seq: u64,
    cell: Arc<Cell>,
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for ReadyEntry {}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One component living on a shared pool.  Identity is the `Arc` itself:
/// cells of different deployments can never collide, and a drained
/// deployment's cells are freed by reference counting (neighbor links are
/// weak, so a deployment's cells do not keep each other alive).
struct Cell {
    state: AtomicU8,
    priority: u32,
    /// The worker whose heap this component is enqueued on by default —
    /// external wakes (feed/poll) land here; internal wakes land on the
    /// waking worker for locality.
    home: usize,
    /// The component's index inside its own deployment.
    local: usize,
    group: Arc<Group>,
    /// Driver storage while the component is not being dispatched.
    slot: Mutex<Option<Driver>>,
    /// Channel neighbors inside the same deployment, set once right after
    /// every cell of the deployment is created.
    neighbors: OnceLock<Vec<Weak<Cell>>>,
}

/// Completion tracking of one submitted deployment.
struct Group {
    started: Instant,
    /// Components not yet `DONE`.
    remaining: AtomicUsize,
    /// Per-component reports, filled as components finish.
    reports: Mutex<Vec<Option<WorkerReport>>>,
    /// Wall-clock from submission to the last component's finish.
    elapsed: Mutex<Option<Duration>>,
    /// This deployment's rank in the pool-wide completion order.
    completion: Mutex<Option<u64>>,
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

impl Group {
    fn lock_reports(&self) -> MutexGuard<'_, Vec<Option<WorkerReport>>> {
        self.reports.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-worker scheduling counters of a shared pool, updated lock-free by
/// the worker itself and snapshot by [`SharedPool::worker_stats`].
struct WorkerCounters {
    dispatches: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    pinned: AtomicBool,
}

struct ServeShared {
    /// The per-worker ready heaps (priority-ordered, FIFO among equals).
    queues: Vec<Mutex<BinaryHeap<ReadyEntry>>>,
    counters: Vec<WorkerCounters>,
    quantum: u64,
    /// Monotonic ready-entry sequence: the FIFO age among equal priorities.
    seq: AtomicU64,
    /// Ready entries sitting in some heap.
    queued: AtomicUsize,
    /// Workers parked on `idle`.
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    idle: Condvar,
    paused: AtomicBool,
    shutdown: AtomicBool,
    /// Pool-wide deployment completion counter (the source of
    /// [`SubmittedDeployment::completion_index`]).
    completions: AtomicU64,
    /// Round-robin cursor assigning home workers to submitted components.
    next_home: AtomicUsize,
}

impl ServeShared {
    fn lock_park(&self) -> MutexGuard<'_, ()> {
        self.park_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes a ready cell onto a worker's heap and wakes a parked worker
    /// if any.  Same `SeqCst` enqueue/park handshake as the batch pool's
    /// [`Shared::enqueue`]; the fresh sequence number is what keeps equal
    /// priorities FIFO.
    fn enqueue(&self, worker: usize, cell: Arc<Cell>) {
        let seq = self.seq.fetch_add(1, SeqCst);
        let entry = ReadyEntry {
            priority: cell.priority,
            seq,
            cell,
        };
        self.queued.fetch_add(1, SeqCst);
        {
            let mut queue = self.queues[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue.push(entry);
        }
        fence(SeqCst);
        if self.sleepers.load(Relaxed) > 0 {
            let _guard = self.lock_park();
            self.idle.notify_all();
        }
    }

    /// Re-queues `cell` if it is blocked; latches the wake if it is being
    /// dispatched right now.  The same latched CAS loop as the batch
    /// pool's [`Shared::wake`] — and additionally the entry point of
    /// *external* wakes: a client's `feed` or `poll_outputs` calls this
    /// from outside any worker thread.
    fn wake(&self, worker: usize, cell: &Arc<Cell>) {
        let state = &cell.state;
        loop {
            match state.load(SeqCst) {
                BLOCKED => {
                    if state
                        .compare_exchange(BLOCKED, QUEUED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        self.enqueue(worker, Arc::clone(cell));
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, NOTIFIED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                QUEUED | NOTIFIED | DONE => return,
                other => unreachable!("component state {other}"),
            }
        }
    }
}

/// Pops the next ready cell: the own heap's best entry first, then each
/// sibling's best (steal-on-empty).  Priority-aware on every pop,
/// including steals — a heap has no FIFO front to protect, so a thief
/// takes the victim's best entry too.
fn serve_pop(shared: &ServeShared, me: usize) -> Option<(Arc<Cell>, bool)> {
    if shared.paused.load(SeqCst) {
        return None;
    }
    let workers = shared.queues.len();
    if let Some(entry) = {
        let mut own = shared.queues[me].lock().unwrap_or_else(|e| e.into_inner());
        own.pop()
    } {
        shared.queued.fetch_sub(1, SeqCst);
        return Some((entry.cell, false));
    }
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(entry) = {
            let mut queue = shared.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            queue.pop()
        } {
            shared.queued.fetch_sub(1, SeqCst);
            return Some((entry.cell, true));
        }
    }
    None
}

/// Runs one quantum of one cell and performs the resulting state
/// transition — the shared-pool analog of the batch [`dispatch`], minus
/// the deadlock accounting (idle is normal here) and plus the group
/// completion bookkeeping.
fn serve_dispatch(shared: &ServeShared, me: usize, cell: &Arc<Cell>) {
    let state = &cell.state;
    let previous = state.swap(RUNNING, SeqCst);
    debug_assert_eq!(previous, QUEUED, "a dequeued component is queued");

    let mut driver = cell
        .slot
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("a queued component's driver is parked in its slot");
    let before = driver.tokens_moved();
    let outcome = driver.drive(shared.quantum);
    let moved = driver.tokens_moved() != before;

    let mut finished = false;
    match outcome {
        DriveOutcome::Yielded => {
            *cell.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(driver);
            state.store(QUEUED, SeqCst);
            // The fresh sequence number puts the yielder behind its
            // equal-priority peers — the heap analog of the batch pool's
            // front-push.
            shared.enqueue(me, Arc::clone(cell));
        }
        DriveOutcome::Pending(_edge) => {
            *cell.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(driver);
            if state
                .compare_exchange(RUNNING, BLOCKED, SeqCst, SeqCst)
                .is_err()
            {
                // A wake (internal or a client's feed/poll) raced the
                // dispatch: re-queue instead of blocking.
                state.store(QUEUED, SeqCst);
                shared.enqueue(me, Arc::clone(cell));
            }
        }
        DriveOutcome::Done(stop) => {
            let report = driver.finish(stop);
            cell.group.lock_reports()[cell.local] = Some(report);
            state.store(DONE, SeqCst);
            finished = true;
        }
    }

    if moved || finished {
        if let Some(neighbors) = cell.neighbors.get() {
            for weak in neighbors {
                if let Some(neighbor) = weak.upgrade() {
                    shared.wake(me, &neighbor);
                }
            }
        }
    }
    if finished && cell.group.remaining.fetch_sub(1, SeqCst) == 1 {
        // Last component of its deployment: stamp the group and publish
        // the pool-wide completion rank.
        let group = &cell.group;
        *group.elapsed.lock().unwrap_or_else(|e| e.into_inner()) = Some(group.started.elapsed());
        *group.completion.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(shared.completions.fetch_add(1, SeqCst));
        let mut done = group.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        group.done_cv.notify_all();
    }
}

/// Parks an idle (or paused) shared-pool worker.  No deadlock detection:
/// a fully blocked tenant set is the pool's normal idle state — every
/// tenant may be waiting on its next external feed.
fn serve_park(shared: &ServeShared) {
    let guard = shared.lock_park();
    shared.sleepers.fetch_add(1, SeqCst);
    if !shared.shutdown.load(SeqCst)
        && (shared.paused.load(SeqCst) || shared.queued.load(SeqCst) == 0)
    {
        let _guard = shared
            .idle
            .wait_timeout(guard, SERVE_PARK_TIMEOUT)
            .unwrap_or_else(|e| e.into_inner());
    }
    shared.sleepers.fetch_sub(1, SeqCst);
}

fn serve_worker_loop(shared: &ServeShared, me: usize) {
    while !shared.shutdown.load(SeqCst) {
        match serve_pop(shared, me) {
            Some((cell, stolen)) => {
                let counters = &shared.counters[me];
                counters.dispatches.fetch_add(1, Relaxed);
                if stolen {
                    counters.steals.fetch_add(1, Relaxed);
                }
                serve_dispatch(shared, me, &cell);
            }
            None => {
                shared.counters[me].parks.fetch_add(1, Relaxed);
                serve_park(shared);
            }
        }
    }
}

/// A long-lived work-stealing pool hosting **many** concurrent
/// deployments — the execution substrate of the `gals-serve` crate.
///
/// Unlike the batch pool a [`Deployment::run`](crate::Deployment::run)
/// spins up and tears down per run, a `SharedPool` starts its workers
/// once ([`SharedPool::start`]) and accepts staged deployments at any
/// time ([`SharedPool::submit`]); tenants stream their inputs and
/// outputs through their [`SubmittedDeployment`] handle while the pool
/// runs.  See the module docs for the invariants (priority heaps,
/// external wakes, no deadlock finalization, affinity hooks).
pub struct SharedPool {
    shared: Arc<ServeShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    quantum: u64,
}

impl SharedPool {
    /// Starts the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroPoolWorkers`] or
    /// [`DeployError::ZeroQuantum`] for an empty pool or a 0-reaction
    /// quantum.
    pub fn start(options: PoolOptions) -> Result<SharedPool, DeployError> {
        if options.workers == 0 {
            return Err(DeployError::ZeroPoolWorkers);
        }
        if options.quantum == 0 {
            return Err(DeployError::ZeroQuantum);
        }
        let shared = Arc::new(ServeShared {
            queues: (0..options.workers)
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            counters: (0..options.workers)
                .map(|_| WorkerCounters {
                    dispatches: AtomicU64::new(0),
                    steals: AtomicU64::new(0),
                    parks: AtomicU64::new(0),
                    pinned: AtomicBool::new(false),
                })
                .collect(),
            quantum: options.quantum,
            seq: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            idle: Condvar::new(),
            paused: AtomicBool::new(options.paused),
            shutdown: AtomicBool::new(false),
            completions: AtomicU64::new(0),
            next_home: AtomicUsize::new(0),
        });
        let handles = (0..options.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let setup = options.worker_setup.clone();
                std::thread::Builder::new()
                    .name(format!("gals-serve-{w}"))
                    .spawn(move || {
                        if let Some(setup) = setup {
                            if setup(w) {
                                shared.counters[w].pinned.store(true, Relaxed);
                            }
                        }
                        serve_worker_loop(&shared, w);
                    })
                    .expect("spawn shared-pool worker")
            })
            .collect();
        Ok(SharedPool {
            shared,
            handles,
            workers: options.workers,
            quantum: options.quantum,
        })
    }

    /// Pool size in OS threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reactions per dispatch.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Stops dispatching: workers park after their in-flight dispatch.
    /// Ready components stay queued; [`resume`](Self::resume) picks them
    /// back up.
    pub fn pause(&self) {
        self.shared.paused.store(true, SeqCst);
    }

    /// Resumes a paused pool.
    pub fn resume(&self) {
        self.shared.paused.store(false, SeqCst);
        let _guard = self.shared.lock_park();
        self.shared.idle.notify_all();
    }

    /// A snapshot of the per-worker scheduling counters, including the
    /// `pinned` flag the startup hook reported.
    pub fn worker_stats(&self) -> Vec<PoolWorkerStats> {
        self.shared
            .counters
            .iter()
            .enumerate()
            .map(|(worker, counters)| PoolWorkerStats {
                worker,
                dispatches: counters.dispatches.load(Relaxed),
                steals: counters.steals.load(Relaxed),
                parks: counters.parks.load(Relaxed),
                pinned: counters.pinned.load(Relaxed),
            })
            .collect()
    }

    /// Places a staged deployment on the pool and returns its streaming
    /// handle.  Components are enqueued immediately (on a paused pool
    /// they sit ready until [`resume`](Self::resume)); their home workers
    /// are assigned round-robin so tenants spread evenly.
    pub fn submit(&self, staged: StagedDeployment, options: &SubmitOptions) -> SubmittedDeployment {
        let StagedDeployment {
            mut drivers,
            topology,
            ingress,
            egress,
            names,
            feeds,
            reference,
            paced,
            backend,
            sizing,
            prediction,
            trace,
            machine_kind,
        } = staged;
        let n = drivers.len();
        let started = Instant::now();
        if let Some(config) = &trace {
            for driver in &mut drivers {
                driver.set_trace(TraceBuffer::new(started, config.buffer_capacity));
            }
        }
        let group = Arc::new(Group {
            started,
            remaining: AtomicUsize::new(n),
            reports: Mutex::new((0..n).map(|_| None).collect()),
            elapsed: Mutex::new(None),
            completion: Mutex::new(None),
            done_lock: Mutex::new(n == 0),
            done_cv: Condvar::new(),
        });
        let base = self.shared.next_home.fetch_add(n.max(1), SeqCst);
        let cells: Vec<Arc<Cell>> = drivers
            .into_iter()
            .enumerate()
            .map(|(i, driver)| {
                let boost = options.boosts.get(&names[i]).copied().unwrap_or(0);
                Arc::new(Cell {
                    state: AtomicU8::new(QUEUED),
                    priority: options.base_priority.saturating_add(boost),
                    home: (base + i) % self.workers,
                    local: i,
                    group: Arc::clone(&group),
                    slot: Mutex::new(Some(driver)),
                    neighbors: OnceLock::new(),
                })
            })
            .collect();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for spec in &topology.channels {
            if !adjacency[spec.producer].contains(&spec.consumer) {
                adjacency[spec.producer].push(spec.consumer);
            }
            if !adjacency[spec.consumer].contains(&spec.producer) {
                adjacency[spec.consumer].push(spec.producer);
            }
        }
        for (i, cell) in cells.iter().enumerate() {
            let links: Vec<Weak<Cell>> = adjacency[i]
                .iter()
                .map(|&j| Arc::downgrade(&cells[j]))
                .collect();
            assert!(cell.neighbors.set(links).is_ok(), "neighbors set once");
        }
        for cell in &cells {
            self.shared.enqueue(cell.home, Arc::clone(cell));
        }
        SubmittedDeployment {
            shared: Arc::clone(&self.shared),
            cells,
            group,
            topology,
            ingress,
            egress,
            names,
            feeds,
            reference,
            paced,
            backend,
            sizing,
            prediction,
            traced: trace.is_some(),
            machine_kind,
            workers: self.workers,
            quantum: self.quantum,
        }
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        {
            let _guard = self.shared.lock_park();
            self.shared.idle.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stops and joins the worker threads.  Drain the tenants first: a
    /// component still live when the pool shuts down is simply never
    /// dispatched again.  Dropping the pool shuts it down the same way.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }
}

impl Drop for SharedPool {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

impl fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPool")
            .field("workers", &self.workers)
            .field("quantum", &self.quantum)
            .finish()
    }
}

/// A draining [`SubmittedDeployment::drain`] that gave up.
pub enum DrainError {
    /// The deployment did not finish within the timeout.  The handle
    /// rides back inside the error, so nothing is lost: keep feeding,
    /// keep polling, or drain again with a longer budget.
    Timeout {
        /// Names of the components still live.
        pending: Vec<String>,
        /// The streaming handle, returned intact.
        handle: Box<SubmittedDeployment>,
    },
}

impl fmt::Debug for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::Timeout { pending, .. } => f
                .debug_struct("Timeout")
                .field("pending", pending)
                .finish_non_exhaustive(),
        }
    }
}

impl fmt::Display for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::Timeout { pending, .. } => write!(
                f,
                "drain timed out with {} component(s) still live: {}",
                pending.len(),
                pending.join(", ")
            ),
        }
    }
}

impl std::error::Error for DrainError {}

/// The streaming handle of one deployment living on a [`SharedPool`]:
/// feed inputs ([`feed`](Self::feed)), drain outputs
/// ([`poll_outputs`](Self::poll_outputs)), and finally close the ingress
/// and collect the isolated per-deployment outcome
/// ([`drain`](Self::drain)) — the same [`DeploymentOutcome`] (stats,
/// flows, trace, conformance replay) a batch run produces.
pub struct SubmittedDeployment {
    shared: Arc<ServeShared>,
    cells: Vec<Arc<Cell>>,
    group: Arc<Group>,
    topology: Topology,
    ingress: BTreeMap<Name, IngressPort>,
    egress: BTreeMap<Name, EgressPort>,
    names: Vec<String>,
    feeds: BTreeMap<Name, Vec<Value>>,
    reference: Vec<crate::conformance::ReferenceComponent>,
    paced: std::collections::BTreeSet<Name>,
    backend: &'static str,
    sizing: crate::transport::ChannelSizing,
    prediction: Option<crate::predict::PerformancePrediction>,
    traced: bool,
    machine_kind: Option<crate::machine::MachineKind>,
    workers: usize,
    quantum: u64,
}

impl SubmittedDeployment {
    /// The component names, in deployment order.
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    /// The number of components the deployment occupies on the pool.
    pub fn component_count(&self) -> usize {
        self.cells.len()
    }

    /// Streams values into an environment input *while the deployment
    /// runs*: the tokens land in the bounded ingress channel and the
    /// consumer is woken exactly like an internal channel neighbor.  When
    /// the channel is full the call wakes the consumer and blocks until
    /// room frees up — client-side backpressure (note that feeding a
    /// *paused* pool past the stream capacity therefore blocks until
    /// [`SharedPool::resume`]).  Values fed after the consumer finished
    /// are dropped, but still recorded for the conformance replay, like a
    /// batch run's unconsumed tail.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownFeed`] when `signal` is not an
    /// environment input of this deployment.
    pub fn feed<I, V>(&mut self, signal: impl Into<Name>, values: I) -> Result<(), DeployError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let signal = signal.into();
        let Some(port) = self.ingress.get(&signal) else {
            return Err(DeployError::UnknownFeed(signal));
        };
        let log = self.feeds.entry(signal).or_default();
        for value in values {
            let value = value.into();
            log.push(value);
            for (consumer, tx) in &port.consumers {
                match tx.try_send(value) {
                    Ok(()) => {}
                    Err(TrySendError::Full) => {
                        // Wake the consumer so a worker drains the
                        // ingress, then wait the room out.
                        let cell = &self.cells[*consumer];
                        self.shared.wake(cell.home, cell);
                        let _ = tx.send(value);
                    }
                    Err(TrySendError::Closed) => {}
                }
            }
        }
        for (consumer, _) in &port.consumers {
            let cell = &self.cells[*consumer];
            self.shared.wake(cell.home, cell);
        }
        Ok(())
    }

    /// Drains every egress channel without blocking and returns the newly
    /// arrived tokens per external output (empty map when nothing
    /// arrived).  Draining wakes producers a full egress buffer had
    /// blocked.  The final [`drain`](Self::drain) outcome carries every
    /// produced flow regardless of what was polled, so polling is pure
    /// consumption, never loss.
    pub fn poll_outputs(&mut self) -> Flows {
        let mut drained = Flows::new();
        for (signal, port) in &self.egress {
            let mut values = Vec::new();
            while let Ok(value) = port.rx.try_recv() {
                values.push(value);
            }
            if !values.is_empty() {
                let cell = &self.cells[port.producer];
                self.shared.wake(cell.home, cell);
                drained.insert(signal.clone(), values);
            }
        }
        drained
    }

    /// Closes every ingress channel: the consumers observe the close as
    /// the normal end of their environment streams
    /// ([`StopReason::EnvironmentExhausted`]) once the buffered tokens
    /// are consumed, and the end cascades downstream exactly like a batch
    /// run's streams running dry.  Idempotent.
    pub fn close_inputs(&mut self) {
        let consumers: Vec<usize> = self
            .ingress
            .values()
            .flat_map(|port| port.consumers.iter().map(|(consumer, _)| *consumer))
            .collect();
        // Dropping the sending endpoints is what closes the channels.
        self.ingress.clear();
        for consumer in consumers {
            let cell = &self.cells[consumer];
            self.shared.wake(cell.home, cell);
        }
    }

    /// Whether every component of this deployment has finished.
    pub fn is_finished(&self) -> bool {
        self.group.remaining.load(SeqCst) == 0
    }

    /// Blocks until the deployment finishes or the timeout elapses;
    /// returns whether it finished.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut done = self
            .group
            .done_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            done = self
                .group
                .done_cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        true
    }

    /// This deployment's rank in the pool-wide completion order (0 for
    /// the first deployment the pool completed), once finished.  The
    /// observable of priority tests: under load, a higher-priority tenant
    /// completes with a smaller index than the batch tenants submitted
    /// before it.
    pub fn completion_index(&self) -> Option<u64> {
        *self
            .group
            .completion
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Names of the components still live.
    pub fn pending(&self) -> Vec<String> {
        self.cells
            .iter()
            .filter(|cell| cell.state.load(SeqCst) != DONE)
            .map(|cell| self.names[cell.local].clone())
            .collect()
    }

    /// Ends the tenancy: closes the ingress channels, keeps the egress
    /// drained while the components run out their streams, and assembles
    /// the per-deployment [`DeploymentOutcome`] — flows, isolated
    /// [`DeploymentStats`](crate::DeploymentStats), trace, and the
    /// conformance replay seeded with everything this handle ever fed.
    ///
    /// # Errors
    ///
    /// [`DrainError::Timeout`] when the deployment does not finish within
    /// `timeout`; the handle rides back inside the error.
    pub fn drain(mut self, timeout: Duration) -> Result<DeploymentOutcome, DrainError> {
        self.close_inputs();
        let deadline = Instant::now() + timeout;
        loop {
            let _ = self.poll_outputs();
            if self.is_finished() {
                break;
            }
            if Instant::now() >= deadline {
                let pending = self.pending();
                return Err(DrainError::Timeout {
                    pending,
                    handle: Box::new(self),
                });
            }
            // Short slices keep the egress draining while we wait, so a
            // producer blocked on a full egress buffer can finish.
            let _ = self.wait(DRAIN_POLL_INTERVAL);
        }
        let _ = self.poll_outputs();
        let reports: Vec<WorkerReport> = self
            .group
            .lock_reports()
            .iter_mut()
            .map(|slot| slot.take().expect("every finished component reported"))
            .collect();
        let elapsed = self
            .group
            .elapsed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .unwrap_or_else(|| self.group.started.elapsed());
        let parts = OutcomeParts {
            reports,
            channels: self.topology.channels,
            sizing: self.sizing,
            backend: self.backend,
            mode: ExecutionMode::Pool {
                workers: self.workers,
                quantum: self.quantum,
            },
            // The pool's workers outlive any one tenant and their
            // counters aggregate every tenant's scheduling: per-worker
            // numbers belong to [`SharedPool::worker_stats`], not to one
            // deployment's isolated report.
            pool_workers: Vec::new(),
            worker_traces: Vec::new(),
            elapsed,
            traced: self.traced,
            prediction: self.prediction,
            machine_kind: self.machine_kind,
            feeds: self.feeds,
            reference: self.reference,
            paced: self.paced,
        };
        Ok(parts.build())
    }
}

impl fmt::Debug for SubmittedDeployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmittedDeployment")
            .field("components", &self.names)
            .field("finished", &self.is_finished())
            .finish()
    }
}
