//! Execution counters of a deployment run.

use std::fmt;
use std::time::Duration;

use signal_lang::Name;

use crate::deploy::ChannelSpec;
use crate::predict::PerformancePrediction;
use crate::sched::ExecutionMode;
use crate::trace::TraceSummary;
use crate::transport::{CapacitySource, ChannelSizing};

/// Why a worker thread stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// An environment input stream ran dry at an instant that required it —
    /// the normal end of a finite run.
    EnvironmentExhausted(Name),
    /// The producer of this channel signal terminated and its FIFO is
    /// drained, so the pending blocking read can never complete.
    UpstreamClosed(Name),
    /// The per-component step budget was reached.
    StepLimit,
    /// The machine faulted.
    Fault(String),
    /// The pool scheduler found every surviving component blocked on a
    /// channel edge with no dispatch in flight: a communication deadlock
    /// (only reachable on a cyclic topology the static cycle analysis let
    /// through — explicitly allowed, or derivably bounded but never
    /// primed with a first token).  The dedicated-thread mode would hang
    /// on the same state; the pool detects it and stops.
    Deadlocked,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::EnvironmentExhausted(n) => {
                write!(f, "environment input {n} exhausted")
            }
            StopReason::UpstreamClosed(n) => write!(f, "upstream of {n} closed"),
            StopReason::StepLimit => write!(f, "step limit reached"),
            StopReason::Fault(m) => write!(f, "fault: {m}"),
            StopReason::Deadlocked => write!(f, "deadlocked in a communication cycle"),
        }
    }
}

/// The counters of one deployed component.
#[derive(Debug, Clone)]
pub struct ComponentStats {
    /// The component name.
    pub name: String,
    /// Completed synchronous reactions (steps).
    pub reactions: u64,
    /// Blocking reads: steps that had to wait for a channel token.
    pub blocked_reads: u64,
    /// Tokens delivered into downstream channels.
    pub tokens_sent: u64,
    /// Tokens received from upstream channels.
    pub tokens_received: u64,
    /// Why the worker stopped.
    pub stop: StopReason,
}

impl fmt::Display for ComponentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reactions, {} blocked reads, {} sent, {} received ({})",
            self.name,
            self.reactions,
            self.blocked_reads,
            self.tokens_sent,
            self.tokens_received,
            self.stop
        )
    }
}

/// The scheduling counters of one pool worker thread (empty in
/// thread-per-component mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// The worker's index in the pool.
    pub worker: usize,
    /// Components dispatched (each dispatch runs up to one quantum).
    pub dispatches: u64,
    /// Dispatches whose component was stolen from a sibling's deque.
    pub steals: u64,
    /// Times the worker found no runnable component and parked.
    pub parks: u64,
    /// Whether the worker's startup hook pinned it to a core
    /// ([`crate::PoolOptions::worker_setup`]).  Always `false` for the
    /// batch pool, which runs no startup hook.
    pub pinned: bool,
}

impl PoolWorkerStats {
    pub(crate) fn new(worker: usize) -> Self {
        PoolWorkerStats {
            worker,
            dispatches: 0,
            steals: 0,
            parks: 0,
            pinned: false,
        }
    }
}

impl fmt::Display for PoolWorkerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {}: {} dispatches ({} stolen), {} parks",
            self.worker, self.dispatches, self.steals, self.parks
        )?;
        if self.pinned {
            write!(f, ", pinned")?;
        }
        Ok(())
    }
}

/// The range of resolved per-edge channel capacities of one deployment —
/// per-signal overrides make edges differ, so a single number cannot
/// describe the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityRange {
    /// The smallest resolved edge capacity (0 when there is no channel).
    pub min: usize,
    /// The largest resolved edge capacity (0 when there is no channel).
    pub max: usize,
}

impl CapacityRange {
    /// The range of a topology where every edge has the same capacity.
    pub fn exactly(capacity: usize) -> Self {
        CapacityRange {
            min: capacity,
            max: capacity,
        }
    }

    /// Folds the resolved capacities of every edge into a range; an empty
    /// topology yields `0..0`.
    pub fn of_edges(capacities: impl IntoIterator<Item = usize>) -> Self {
        let mut range: Option<CapacityRange> = None;
        for capacity in capacities {
            range = Some(match range {
                None => CapacityRange::exactly(capacity),
                Some(r) => CapacityRange {
                    min: r.min.min(capacity),
                    max: r.max.max(capacity),
                },
            });
        }
        range.unwrap_or(CapacityRange { min: 0, max: 0 })
    }

    /// Whether every edge has the same capacity.
    pub fn is_uniform(&self) -> bool {
        self.min == self.max
    }
}

impl fmt::Display for CapacityRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_uniform() {
            write!(f, "{}", self.min)
        } else {
            write!(f, "{}..{}", self.min, self.max)
        }
    }
}

/// The aggregated report of one deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentStats {
    /// Per-component counters, in deployment order.
    pub components: Vec<ComponentStats>,
    /// Number of bounded channels wired between the components.
    pub channels: usize,
    /// The range of resolved per-edge capacities (min..max over the
    /// topology — per-signal overrides and derived bounds make edges
    /// differ).
    pub capacity: CapacityRange,
    /// How the channels were sized: hand-tuned or derived from the clock
    /// calculus.
    pub sizing: ChannelSizing,
    /// The resolved per-edge channel specs of the run, each carrying its
    /// capacity, the capacity's source and (for derived edges) the
    /// derivation.
    pub edges: Vec<ChannelSpec>,
    /// Name of the transport backend that carried the channels.
    pub backend: &'static str,
    /// How components were mapped onto OS threads.
    pub mode: ExecutionMode,
    /// Per-worker scheduling counters of the pool (empty in
    /// thread-per-component mode).
    pub pool_workers: Vec<PoolWorkerStats>,
    /// Wall-clock duration of the run (spawn to last join).
    pub elapsed: Duration,
    /// The static performance prediction installed before the run, when
    /// one was ([`crate::Deployment::set_prediction`]) — carried into the
    /// report so predicted and measured paces sit side by side.
    pub prediction: Option<PerformancePrediction>,
    /// The per-event trace analysis (busy/blocked time, edge occupancy
    /// high-water marks, bottleneck ranking), when the run was traced
    /// ([`crate::Deployment::set_tracing`]).
    pub trace: Option<TraceSummary>,
    /// Which execution strategy backed the step machines
    /// ([`crate::Deployment::set_machine_kind`]); `None` for deployments
    /// of hand-rolled machines that never declared one.
    pub machine_kind: Option<crate::machine::MachineKind>,
}

impl DeploymentStats {
    /// Total reactions across every component.
    pub fn total_reactions(&self) -> u64 {
        self.components.iter().map(|c| c.reactions).sum()
    }

    /// Total blocking reads across every component.
    pub fn total_blocked_reads(&self) -> u64 {
        self.components.iter().map(|c| c.blocked_reads).sum()
    }

    /// Total tokens delivered *into* the channels, counted at the sending
    /// side.  On a clean, fully drained run this equals
    /// [`total_tokens_received`](Self::total_tokens_received); a component
    /// that stops with tokens still buffered upstream (e.g. its own
    /// environment stream ran dry first) leaves the sent count ahead.
    pub fn total_tokens(&self) -> u64 {
        self.components.iter().map(|c| c.tokens_sent).sum()
    }

    /// Total tokens consumed *out of* the channels, counted at the
    /// receiving side.  Never exceeds [`total_tokens`](Self::total_tokens).
    pub fn total_tokens_received(&self) -> u64 {
        self.components.iter().map(|c| c.tokens_received).sum()
    }

    /// Total dispatches across the pool workers (0 in thread-per-component
    /// mode).
    pub fn total_dispatches(&self) -> u64 {
        self.pool_workers.iter().map(|w| w.dispatches).sum()
    }

    /// Total steals across the pool workers (0 in thread-per-component
    /// mode).
    pub fn total_steals(&self) -> u64 {
        self.pool_workers.iter().map(|w| w.steals).sum()
    }

    /// Reactions per second over the whole run, or `None` when the run was
    /// too fast for the clock to measure at all — the fastest runs are not
    /// "0 reactions per second".
    pub fn reactions_per_second(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.total_reactions() as f64 / secs)
    }
}

impl fmt::Display for DeploymentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deployment of {} component(s), {} channel(s) of capacity {} ({} sizing) \
             over {} ({}): {} reactions, {} blocked reads, {} tokens in {:?}",
            self.components.len(),
            self.channels,
            self.capacity,
            self.sizing,
            self.backend,
            self.mode,
            self.total_reactions(),
            self.total_blocked_reads(),
            self.total_tokens(),
            self.elapsed
        )?;
        if let Some(kind) = self.machine_kind {
            writeln!(f, "  machines: {kind}")?;
        }
        for c in &self.components {
            writeln!(f, "  {c}")?;
        }
        // Per-edge resolution, when anything deviates from the default.
        for edge in &self.edges {
            if edge.source == CapacitySource::Default {
                continue;
            }
            write!(
                f,
                "  channel {}: capacity {} ({})",
                edge.signal, edge.capacity, edge.source
            )?;
            if let Some(why) = &edge.derivation {
                write!(f, " — {why}")?;
            }
            writeln!(f)?;
        }
        // The per-worker scheduling counters belong to pool runs only: a
        // thread-per-component report stays free of an empty (or stale)
        // pool section even when the field is populated.
        if matches!(self.mode, ExecutionMode::Pool { .. }) {
            for w in &self.pool_workers {
                writeln!(f, "  {w}")?;
            }
        }
        if let Some(prediction) = &self.prediction {
            for line in prediction.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        if let Some(trace) = &self.trace {
            for line in trace.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeploymentStats {
        DeploymentStats {
            components: vec![
                ComponentStats {
                    name: "p".into(),
                    reactions: 5,
                    blocked_reads: 1,
                    tokens_sent: 2,
                    tokens_received: 0,
                    stop: StopReason::EnvironmentExhausted(Name::from("a")),
                },
                ComponentStats {
                    name: "c".into(),
                    reactions: 4,
                    blocked_reads: 2,
                    tokens_sent: 0,
                    tokens_received: 2,
                    stop: StopReason::UpstreamClosed(Name::from("x")),
                },
            ],
            channels: 1,
            capacity: CapacityRange::exactly(1),
            sizing: ChannelSizing::Fixed,
            edges: Vec::new(),
            backend: "spsc-ring",
            mode: ExecutionMode::ThreadPerComponent,
            pool_workers: Vec::new(),
            elapsed: Duration::from_millis(2),
            prediction: None,
            trace: None,
            machine_kind: Some(crate::MachineKind::Compiled),
        }
    }

    #[test]
    fn totals_aggregate_component_counters() {
        let stats = sample();
        assert_eq!(stats.total_reactions(), 9);
        assert_eq!(stats.total_blocked_reads(), 3);
        assert_eq!(stats.total_tokens(), 2);
        assert!(stats.reactions_per_second().expect("measurable") > 0.0);
        let text = stats.to_string();
        assert!(text.contains("environment input a exhausted"));
        assert!(text.contains("upstream of x closed"));
        assert!(text.contains("over spsc-ring"));
        assert!(text.contains("thread-per-component"));
        assert!(text.contains("machines: compiled"));
    }

    #[test]
    fn an_unmeasurably_fast_run_is_not_zero_reactions_per_second() {
        // Regression: a zero elapsed used to report 0.0 — reading as
        // "infinitely slow" for exactly the fastest runs.
        let mut stats = sample();
        stats.elapsed = Duration::ZERO;
        assert_eq!(stats.reactions_per_second(), None);
    }

    #[test]
    fn capacity_ranges_fold_and_render() {
        assert_eq!(
            CapacityRange::of_edges([8, 2, 8]),
            CapacityRange { min: 2, max: 8 }
        );
        assert_eq!(
            CapacityRange::of_edges([]),
            CapacityRange { min: 0, max: 0 }
        );
        assert_eq!(CapacityRange::exactly(4).to_string(), "4");
        assert!(CapacityRange::exactly(4).is_uniform());
        assert_eq!(CapacityRange { min: 2, max: 8 }.to_string(), "2..8");
        assert!(!CapacityRange { min: 2, max: 8 }.is_uniform());
    }

    #[test]
    fn pool_counters_aggregate_and_render() {
        let mut stats = sample();
        stats.mode = ExecutionMode::Pool {
            workers: 2,
            quantum: 8,
        };
        stats.pool_workers = vec![
            PoolWorkerStats {
                worker: 0,
                dispatches: 7,
                steals: 2,
                parks: 1,
                pinned: false,
            },
            PoolWorkerStats {
                worker: 1,
                dispatches: 3,
                steals: 1,
                parks: 4,
                pinned: true,
            },
        ];
        assert_eq!(stats.total_dispatches(), 10);
        assert_eq!(stats.total_steals(), 3);
        let text = stats.to_string();
        assert!(text.contains("pool of 2 worker(s), quantum 8"));
        assert!(text.contains("worker 0: 7 dispatches (2 stolen), 1 parks"));
        assert!(text.contains("worker 1: 3 dispatches (1 stolen), 4 parks, pinned"));
    }

    #[test]
    fn thread_mode_report_prints_no_pool_worker_lines() {
        // Regression: the report keyed the pool section on the counters
        // being present, not on the mode — a thread-per-component run
        // handed stale pool counters printed a bogus worker section.
        let mut stats = sample();
        stats.pool_workers = vec![PoolWorkerStats::new(0)];
        assert_eq!(stats.mode, ExecutionMode::ThreadPerComponent);
        let text = stats.to_string();
        assert!(!text.contains("worker 0:"));
    }
}
