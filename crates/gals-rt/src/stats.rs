//! Execution counters of a deployment run.

use std::fmt;
use std::time::Duration;

use signal_lang::Name;

/// Why a worker thread stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// An environment input stream ran dry at an instant that required it —
    /// the normal end of a finite run.
    EnvironmentExhausted(Name),
    /// The producer of this channel signal terminated and its FIFO is
    /// drained, so the pending blocking read can never complete.
    UpstreamClosed(Name),
    /// The per-component step budget was reached.
    StepLimit,
    /// The machine faulted.
    Fault(String),
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::EnvironmentExhausted(n) => {
                write!(f, "environment input {n} exhausted")
            }
            StopReason::UpstreamClosed(n) => write!(f, "upstream of {n} closed"),
            StopReason::StepLimit => write!(f, "step limit reached"),
            StopReason::Fault(m) => write!(f, "fault: {m}"),
        }
    }
}

/// The counters of one deployed component.
#[derive(Debug, Clone)]
pub struct ComponentStats {
    /// The component name.
    pub name: String,
    /// Completed synchronous reactions (steps).
    pub reactions: u64,
    /// Blocking reads: steps that had to wait for a channel token.
    pub blocked_reads: u64,
    /// Tokens delivered into downstream channels.
    pub tokens_sent: u64,
    /// Tokens received from upstream channels.
    pub tokens_received: u64,
    /// Why the worker stopped.
    pub stop: StopReason,
}

impl fmt::Display for ComponentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reactions, {} blocked reads, {} sent, {} received ({})",
            self.name,
            self.reactions,
            self.blocked_reads,
            self.tokens_sent,
            self.tokens_received,
            self.stop
        )
    }
}

/// The aggregated report of one deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentStats {
    /// Per-component counters, in deployment order.
    pub components: Vec<ComponentStats>,
    /// Number of bounded channels wired between the components.
    pub channels: usize,
    /// Default channel capacity of the policy (individual edges may carry
    /// per-signal overrides; `Deployment::topology()` reports the per-edge
    /// resolution).
    pub capacity: usize,
    /// Name of the transport backend that carried the channels.
    pub backend: &'static str,
    /// Wall-clock duration of the run (spawn to last join).
    pub elapsed: Duration,
}

impl DeploymentStats {
    /// Total reactions across every component.
    pub fn total_reactions(&self) -> u64 {
        self.components.iter().map(|c| c.reactions).sum()
    }

    /// Total blocking reads across every component.
    pub fn total_blocked_reads(&self) -> u64 {
        self.components.iter().map(|c| c.blocked_reads).sum()
    }

    /// Total tokens exchanged through the channels.
    pub fn total_tokens(&self) -> u64 {
        self.components.iter().map(|c| c.tokens_sent).sum()
    }

    /// Reactions per second over the whole run (0 when the run was too fast
    /// to measure).
    pub fn reactions_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total_reactions() as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for DeploymentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deployment of {} component(s), {} channel(s) of capacity {} over {}: \
             {} reactions, {} blocked reads, {} tokens in {:?}",
            self.components.len(),
            self.channels,
            self.capacity,
            self.backend,
            self.total_reactions(),
            self.total_blocked_reads(),
            self.total_tokens(),
            self.elapsed
        )?;
        for c in &self.components {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_component_counters() {
        let stats = DeploymentStats {
            components: vec![
                ComponentStats {
                    name: "p".into(),
                    reactions: 5,
                    blocked_reads: 1,
                    tokens_sent: 2,
                    tokens_received: 0,
                    stop: StopReason::EnvironmentExhausted(Name::from("a")),
                },
                ComponentStats {
                    name: "c".into(),
                    reactions: 4,
                    blocked_reads: 2,
                    tokens_sent: 0,
                    tokens_received: 2,
                    stop: StopReason::UpstreamClosed(Name::from("x")),
                },
            ],
            channels: 1,
            capacity: 1,
            backend: "spsc-ring",
            elapsed: Duration::from_millis(2),
        };
        assert_eq!(stats.total_reactions(), 9);
        assert_eq!(stats.total_blocked_reads(), 3);
        assert_eq!(stats.total_tokens(), 2);
        assert!(stats.reactions_per_second() > 0.0);
        let text = stats.to_string();
        assert!(text.contains("environment input a exhausted"));
        assert!(text.contains("upstream of x closed"));
        assert!(text.contains("over spsc-ring"));
    }
}
