//! Per-event deployment tracing: timelines, occupancy and drift.
//!
//! The runtime's end-of-run counters ([`crate::DeploymentStats`]) say *how
//! much* happened; this module records *when*.  Every worker owns a
//! private bounded `TraceBuffer` — no locks, no sharing on the hot
//! path, and when tracing is off the recording sites cost one `Option`
//! branch.  At join the buffers merge into a [`Trace`] of monotonic
//! nanosecond timestamps, from which three views derive:
//!
//! * [`Trace::summary`] — per-component busy/blocked time and
//!   utilization, per-edge occupancy high-water marks against the
//!   resolved capacities (an empirical witness for the clock-calculus
//!   bounds), and a blocked-time bottleneck ranking;
//! * [`Trace::drift_report`] — measured reaction counts and edge traffic
//!   compared against a static [`PerformancePrediction`] edge by edge;
//! * [`Trace::to_chrome_json`] — the full timeline in Chrome trace-event
//!   JSON, loadable in Perfetto (`pid` = deployment, `tid` = component or
//!   pool worker).
//!
//! Buffers are bounded: when a worker outgrows its record budget the
//! timeline truncates (and says so via [`Trace::dropped`]), but the
//! aggregate counters behind the summary and the drift report are
//! maintained on every event and stay exact.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use signal_lang::Name;

use crate::deploy::ChannelSpec;
use crate::predict::PerformancePrediction;
use crate::stats::StopReason;

/// Configuration of the tracing subsystem, set per deployment via
/// [`crate::Deployment::set_trace_config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of timeline records each worker-local buffer keeps.
    /// Beyond it the timeline truncates (counted in [`Trace::dropped`]);
    /// summary and drift aggregates stay exact regardless.
    pub buffer_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            // 64Ki records ≈ a few MiB per worker: enough for every test
            // and example workload without letting a runaway run eat the
            // heap.
            buffer_capacity: 64 * 1024,
        }
    }
}

/// Which side of a channel a component is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDirection {
    /// Waiting for a token from the producer (empty channel).
    Upstream,
    /// Waiting for capacity at the consumer (full channel).
    Downstream,
}

impl fmt::Display for BlockDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockDirection::Upstream => write!(f, "upstream"),
            BlockDirection::Downstream => write!(f, "downstream"),
        }
    }
}

/// One thing that happened during a deployment run.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A synchronous reaction started.
    ReactionBegin,
    /// The reaction that began last completed.
    ReactionEnd,
    /// The component stalled on a channel edge.
    BlockedOn {
        /// The signal of the edge the component is stalled on.
        signal: Name,
        /// Whether the stall waits for a token or for capacity.
        direction: BlockDirection,
    },
    /// The stall recorded by the matching [`TraceEvent::BlockedOn`] ended.
    Unblocked {
        /// The signal the component was stalled on.
        signal: Name,
    },
    /// A token was published into a channel.
    TokenSent {
        /// The signal carried by the channel.
        signal: Name,
        /// Which consumer's channel received it (the index among the
        /// topology edges of this signal, in consumer order — a broadcast
        /// signal has one channel per consumer).
        sink: usize,
        /// Channel occupancy right after the send, when the transport can
        /// report it (the SPSC ring can; the mpsc shim cannot).
        occupancy: Option<usize>,
    },
    /// A token was consumed from a channel.
    TokenReceived {
        /// The signal carried by the channel.
        signal: Name,
        /// Channel occupancy right after the receive, when the transport
        /// can report it.
        occupancy: Option<usize>,
    },
    /// A pool worker dispatched a component for one quantum.
    Dispatch {
        /// Index of the dispatched component.
        component: usize,
        /// Whether the task was stolen from a sibling worker's deque.
        stolen: bool,
    },
    /// A pool worker found no runnable component and parked.
    Park,
    /// The component stopped.
    Stop {
        /// The rendered [`StopReason`].
        reason: String,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Nanoseconds since the deployment's trace epoch (taken right before
    /// the workers spawn).  Monotonic per component/worker.
    pub ts_ns: u64,
    /// What happened.
    pub event: TraceEvent,
}

/// Exact per-signal counters a buffer maintains alongside the (bounded)
/// timeline, so summaries survive record truncation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SideCounter {
    tokens: u64,
    high_water: Option<usize>,
}

impl SideCounter {
    fn record(&mut self, occupancy: Option<usize>) {
        self.tokens += 1;
        if let Some(occ) = occupancy {
            self.high_water = Some(self.high_water.map_or(occ, |hw| hw.max(occ)));
        }
    }
}

/// A worker-private bounded event recorder.  Owned by exactly one thread
/// at a time (it travels with its component across pool workers), so the
/// hot path takes no locks.
#[derive(Debug, Clone)]
pub(crate) struct TraceBuffer {
    epoch: Instant,
    limit: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
    reactions: u64,
    busy_ns: u64,
    blocked_ns: u64,
    open_block: Option<(Name, BlockDirection, u64)>,
    /// Per-signal blocked episodes: (count, total nanoseconds).
    blocked_by_signal: BTreeMap<Name, (u64, u64)>,
    /// Tokens sent per (signal, sink index).
    sent: BTreeMap<(Name, usize), SideCounter>,
    /// Tokens received per signal (one upstream channel per signal).
    received: BTreeMap<Name, SideCounter>,
    first_ts: Option<u64>,
    last_ts: u64,
}

impl TraceBuffer {
    pub(crate) fn new(epoch: Instant, limit: usize) -> Self {
        TraceBuffer {
            epoch,
            limit,
            records: Vec::new(),
            dropped: 0,
            reactions: 0,
            busy_ns: 0,
            blocked_ns: 0,
            open_block: None,
            blocked_by_signal: BTreeMap::new(),
            sent: BTreeMap::new(),
            received: BTreeMap::new(),
            first_ts: None,
            last_ts: 0,
        }
    }

    /// Nanoseconds since the trace epoch.  `u64` holds ~584 years.
    pub(crate) fn now(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&mut self, ts_ns: u64, event: TraceEvent) {
        if self.first_ts.is_none() {
            self.first_ts = Some(ts_ns);
        }
        self.last_ts = self.last_ts.max(ts_ns);
        if self.records.len() < self.limit {
            self.records.push(TraceRecord { ts_ns, event });
        } else {
            self.dropped += 1;
        }
    }

    /// Records one completed reaction spanning `[begin, now]`.
    pub(crate) fn reaction(&mut self, begin_ns: u64) {
        let end = self.now().max(begin_ns);
        self.reactions += 1;
        self.busy_ns += end - begin_ns;
        self.push(begin_ns, TraceEvent::ReactionBegin);
        self.push(end, TraceEvent::ReactionEnd);
    }

    /// Opens a blocked episode on `signal` (idempotent while the same
    /// episode is already open; an open episode on a *different* signal is
    /// closed first — the stall moved).
    pub(crate) fn blocked(&mut self, signal: &Name, direction: BlockDirection) {
        if let Some((open, _, _)) = &self.open_block {
            if open == signal {
                return;
            }
            self.close_block(true);
        }
        let now = self.now();
        self.open_block = Some((signal.clone(), direction, now));
        self.push(
            now,
            TraceEvent::BlockedOn {
                signal: signal.clone(),
                direction,
            },
        );
    }

    /// Closes the open blocked episode if it is on `signal`.
    pub(crate) fn unblocked(&mut self, signal: &Name) {
        if let Some((open, _, _)) = &self.open_block {
            if open == signal {
                self.close_block(true);
            }
        }
    }

    /// Closes the open blocked episode if it waits downstream — called
    /// when a flush completes, whatever signal it last stalled on.
    pub(crate) fn unblocked_downstream(&mut self) {
        if let Some((_, BlockDirection::Downstream, _)) = &self.open_block {
            self.close_block(true);
        }
    }

    fn close_block(&mut self, record: bool) {
        let Some((signal, _, since)) = self.open_block.take() else {
            return;
        };
        let now = self.now().max(since);
        let entry = self.blocked_by_signal.entry(signal.clone()).or_default();
        entry.0 += 1;
        entry.1 += now - since;
        self.blocked_ns += now - since;
        if record {
            self.push(now, TraceEvent::Unblocked { signal });
        }
    }

    /// Records a token published into the `sink`-th channel of `signal`.
    pub(crate) fn sent(&mut self, signal: &Name, sink: usize, occupancy: Option<usize>) {
        self.sent
            .entry((signal.clone(), sink))
            .or_default()
            .record(occupancy);
        let now = self.now();
        self.push(
            now,
            TraceEvent::TokenSent {
                signal: signal.clone(),
                sink,
                occupancy,
            },
        );
    }

    /// Records a token consumed from the channel of `signal`.
    pub(crate) fn received(&mut self, signal: &Name, occupancy: Option<usize>) {
        self.received
            .entry(signal.clone())
            .or_default()
            .record(occupancy);
        let now = self.now();
        self.push(
            now,
            TraceEvent::TokenReceived {
                signal: signal.clone(),
                occupancy,
            },
        );
    }

    /// Records a pool dispatch (worker-side buffers only).
    pub(crate) fn dispatch(&mut self, component: usize, stolen: bool) {
        let now = self.now();
        self.push(now, TraceEvent::Dispatch { component, stolen });
    }

    /// Records a pool park (worker-side buffers only).
    pub(crate) fn park(&mut self) {
        let now = self.now();
        self.push(now, TraceEvent::Park);
    }

    /// Records the component's stop.  An open blocked episode ends here —
    /// terminally, without an `Unblocked` record (the stall was resolved
    /// by stopping, not by progress).
    pub(crate) fn stopped(&mut self, reason: &StopReason) {
        self.close_block(false);
        let now = self.now();
        self.push(
            now,
            TraceEvent::Stop {
                reason: reason.to_string(),
            },
        );
    }
}

/// The merged timeline of one component or pool worker.
#[derive(Debug, Clone)]
pub struct ComponentTrace {
    name: String,
    records: Vec<TraceRecord>,
    dropped: u64,
    reactions: u64,
    busy_ns: u64,
    blocked_ns: u64,
    blocked_by_signal: BTreeMap<Name, (u64, u64)>,
    sent: BTreeMap<(Name, usize), SideCounter>,
    received: BTreeMap<Name, SideCounter>,
    first_ts: Option<u64>,
    last_ts: u64,
}

impl ComponentTrace {
    fn from_buffer(name: String, buffer: TraceBuffer) -> Self {
        ComponentTrace {
            name,
            records: buffer.records,
            dropped: buffer.dropped,
            reactions: buffer.reactions,
            busy_ns: buffer.busy_ns,
            blocked_ns: buffer.blocked_ns,
            blocked_by_signal: buffer.blocked_by_signal,
            sent: buffer.sent,
            received: buffer.received,
            first_ts: buffer.first_ts,
            last_ts: buffer.last_ts,
        }
    }

    /// The component (or `worker{i}`) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kept timeline records, in recording order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records discarded because the bounded buffer filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Completed reactions (exact, survives record truncation).
    pub fn reactions(&self) -> u64 {
        self.reactions
    }

    /// Tokens this component consumed of `signal` (exact).
    pub fn tokens_received(&self, signal: &Name) -> u64 {
        self.received.get(signal).map_or(0, |c| c.tokens)
    }
}

/// Busy/blocked accounting of one component over its traced lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentActivity {
    /// The component name.
    pub name: String,
    /// Completed reactions.
    pub reactions: u64,
    /// Time spent inside reactions.
    pub busy: Duration,
    /// Time spent stalled on channel edges.
    pub blocked: Duration,
    /// First-event-to-last-event span of the component's timeline.
    pub span: Duration,
    /// `busy / span`, in `[0, 1]`; 0 when the span was unmeasurably short.
    pub utilization: f64,
}

/// Occupancy and traffic accounting of one channel edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeOccupancy {
    /// The signal carried by the edge.
    pub signal: Name,
    /// Index of the producing component.
    pub producer: usize,
    /// Index of the consuming component.
    pub consumer: usize,
    /// The resolved bounded capacity of the edge.
    pub capacity: usize,
    /// Tokens the producer published into this edge.
    pub tokens_sent: u64,
    /// Tokens the consumer took out of this edge.
    pub tokens_received: u64,
    /// The highest observed occupancy, when the transport reports one
    /// (the SPSC ring does; the mpsc shim yields `None`).
    pub high_water: Option<usize>,
}

impl EdgeOccupancy {
    /// Whether the observed high-water mark stayed within the resolved
    /// capacity (`None` when the transport reported no occupancy).
    pub fn within_capacity(&self) -> Option<bool> {
        self.high_water.map(|hw| hw <= self.capacity)
    }
}

/// Accumulated blocked time attributed to one signal, across every
/// component that stalled on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeBlocking {
    /// The signal components stalled on.
    pub signal: Name,
    /// Number of blocked episodes.
    pub episodes: u64,
    /// Total stalled wall-clock time across those episodes.
    pub total_blocked: Duration,
}

/// The analysis layer over a [`Trace`]: activity, occupancy and the
/// bottleneck ranking.  Carried on
/// [`crate::DeploymentStats::trace`] when tracing was enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Per-component activity, in deployment order.
    pub components: Vec<ComponentActivity>,
    /// Per-edge traffic and occupancy, in topology order.
    pub edges: Vec<EdgeOccupancy>,
    /// Signals ranked by total blocked time, worst first — the empirical
    /// bottleneck order.
    pub bottlenecks: Vec<EdgeBlocking>,
    /// Timeline records kept across all buffers.
    pub events: u64,
    /// Timeline records discarded because a bounded buffer filled up.
    pub dropped: u64,
}

impl TraceSummary {
    /// Total blocked time across every component.
    pub fn total_blocked(&self) -> Duration {
        self.components.iter().map(|c| c.blocked).sum()
    }

    /// Whether every occupancy-reporting edge stayed within its resolved
    /// capacity.
    pub fn occupancy_within_capacity(&self) -> bool {
        self.edges
            .iter()
            .all(|e| e.within_capacity().unwrap_or(true))
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} event(s) kept, {} dropped",
            self.events, self.dropped
        )?;
        for c in &self.components {
            writeln!(
                f,
                "  {}: {} reactions, busy {:?}, blocked {:?}, utilization {:.0}%",
                c.name,
                c.reactions,
                c.busy,
                c.blocked,
                c.utilization * 100.0
            )?;
        }
        for e in &self.edges {
            write!(
                f,
                "  edge {} ({}→{}): {} sent, {} received",
                e.signal, e.producer, e.consumer, e.tokens_sent, e.tokens_received
            )?;
            match e.high_water {
                Some(hw) => writeln!(f, ", high water {hw}/{}", e.capacity)?,
                None => writeln!(f, ", occupancy unobserved (capacity {})", e.capacity)?,
            }
        }
        for b in self.bottlenecks.iter().take(3) {
            if b.total_blocked.is_zero() {
                break;
            }
            writeln!(
                f,
                "  bottleneck {}: {} episode(s), {:?} blocked",
                b.signal, b.episodes, b.total_blocked
            )?;
        }
        Ok(())
    }
}

/// Predicted vs measured pace of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDrift {
    /// The component name.
    pub name: String,
    /// Reactions the static model predicts for the fed input count.
    pub predicted: f64,
    /// Reactions the traced run measured.
    pub measured: u64,
}

impl ComponentDrift {
    /// `measured - predicted`, in reactions.
    pub fn drift(&self) -> f64 {
        self.measured as f64 - self.predicted
    }
}

/// Predicted vs measured traffic of one channel edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDrift {
    /// The signal carried by the edge.
    pub signal: Name,
    /// Index of the producing component.
    pub producer: usize,
    /// Index of the consuming component.
    pub consumer: usize,
    /// Tokens the static model predicts cross the edge.
    pub predicted: f64,
    /// Tokens the producer published (measured).
    pub sent: u64,
    /// Tokens the consumer took out (measured) — the drift basis, since
    /// only consumed tokens are traffic that crossed.
    pub received: u64,
}

impl EdgeDrift {
    /// `received - predicted`, in tokens.
    pub fn drift(&self) -> f64 {
        self.received as f64 - self.predicted
    }
}

/// The edge-by-edge comparison of a traced run against a static
/// [`PerformancePrediction`] — where the model and the machine disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Environment input tokens the predictions were scaled by.
    pub inputs: u64,
    /// Per-component reaction drift, in deployment order.
    pub components: Vec<ComponentDrift>,
    /// Per-edge traffic drift, in topology order.
    pub edges: Vec<EdgeDrift>,
}

impl DriftReport {
    /// The largest absolute component drift, in reactions.
    pub fn max_component_drift(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.drift().abs())
            .fold(0.0, f64::max)
    }

    /// The largest absolute edge drift, in tokens.
    pub fn max_edge_drift(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.drift().abs())
            .fold(0.0, f64::max)
    }

    /// Whether every component and edge drift stays within `slop`
    /// (absolute, in reactions/tokens) — the startup transient and final
    /// partial wave of a steady-state model land here.
    pub fn within(&self, slop: f64) -> bool {
        self.max_component_drift() <= slop && self.max_edge_drift() <= slop
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "drift report over {} input token(s):", self.inputs)?;
        for c in &self.components {
            writeln!(
                f,
                "  {}: predicted {:.1} reactions, measured {} (drift {:+.1})",
                c.name,
                c.predicted,
                c.measured,
                c.drift()
            )?;
        }
        for e in &self.edges {
            writeln!(
                f,
                "  edge {} ({}→{}): predicted {:.1} tokens, sent {}, received {} (drift {:+.1})",
                e.signal,
                e.producer,
                e.consumer,
                e.predicted,
                e.sent,
                e.received,
                e.drift()
            )?;
        }
        Ok(())
    }
}

/// The merged event timeline of one deployment run.
#[derive(Debug, Clone)]
pub struct Trace {
    components: Vec<ComponentTrace>,
    workers: Vec<ComponentTrace>,
    edges: Vec<ChannelSpec>,
}

impl Trace {
    pub(crate) fn assemble(
        components: Vec<(String, TraceBuffer)>,
        workers: Vec<TraceBuffer>,
        edges: Vec<ChannelSpec>,
    ) -> Self {
        Trace {
            components: components
                .into_iter()
                .map(|(name, buffer)| ComponentTrace::from_buffer(name, buffer))
                .collect(),
            workers: workers
                .into_iter()
                .enumerate()
                .map(|(i, buffer)| ComponentTrace::from_buffer(format!("worker{i}"), buffer))
                .collect(),
            edges,
        }
    }

    /// Per-component timelines, in deployment order.
    pub fn components(&self) -> &[ComponentTrace] {
        &self.components
    }

    /// Per-pool-worker timelines (empty in thread-per-component mode).
    pub fn workers(&self) -> &[ComponentTrace] {
        &self.workers
    }

    /// The resolved channel specs of the traced run, in topology order.
    pub fn edges(&self) -> &[ChannelSpec] {
        &self.edges
    }

    /// Timeline records discarded across all buffers (0 means the
    /// timeline is complete).
    pub fn dropped(&self) -> u64 {
        self.components
            .iter()
            .chain(&self.workers)
            .map(|c| c.dropped)
            .sum()
    }

    fn all(&self) -> impl Iterator<Item = &ComponentTrace> {
        self.components.iter().chain(&self.workers)
    }

    /// Derives the analysis summary: activity, occupancy and bottlenecks.
    pub fn summary(&self) -> TraceSummary {
        let components = self
            .components
            .iter()
            .map(|c| {
                let span_ns = c.first_ts.map_or(0, |first| c.last_ts - first);
                ComponentActivity {
                    name: c.name.clone(),
                    reactions: c.reactions,
                    busy: Duration::from_nanos(c.busy_ns),
                    blocked: Duration::from_nanos(c.blocked_ns),
                    span: Duration::from_nanos(span_ns),
                    utilization: if span_ns == 0 {
                        0.0
                    } else {
                        c.busy_ns as f64 / span_ns as f64
                    },
                }
            })
            .collect();

        // The k-th channel of a signal (in topology order) is the k-th
        // sink the producer flushes into: recover the per-edge sent
        // counters by walking the specs in order.
        let mut sink_index: BTreeMap<Name, usize> = BTreeMap::new();
        let edges = self
            .edges
            .iter()
            .map(|spec| {
                let k = sink_index.entry(spec.signal.clone()).or_insert(0);
                let sink = *k;
                *k += 1;
                let sent = self
                    .components
                    .get(spec.producer)
                    .and_then(|c| c.sent.get(&(spec.signal.clone(), sink)))
                    .cloned()
                    .unwrap_or_default();
                let received = self
                    .components
                    .get(spec.consumer)
                    .and_then(|c| c.received.get(&spec.signal))
                    .cloned()
                    .unwrap_or_default();
                EdgeOccupancy {
                    signal: spec.signal.clone(),
                    producer: spec.producer,
                    consumer: spec.consumer,
                    capacity: spec.capacity,
                    tokens_sent: sent.tokens,
                    tokens_received: received.tokens,
                    high_water: match (sent.high_water, received.high_water) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (hw, None) | (None, hw) => hw,
                    },
                }
            })
            .collect();

        let mut by_signal: BTreeMap<Name, (u64, u64)> = BTreeMap::new();
        for c in &self.components {
            for (signal, (episodes, ns)) in &c.blocked_by_signal {
                let entry = by_signal.entry(signal.clone()).or_default();
                entry.0 += episodes;
                entry.1 += ns;
            }
        }
        let mut bottlenecks: Vec<EdgeBlocking> = by_signal
            .into_iter()
            .map(|(signal, (episodes, ns))| EdgeBlocking {
                signal,
                episodes,
                total_blocked: Duration::from_nanos(ns),
            })
            .collect();
        bottlenecks.sort_by_key(|edge| std::cmp::Reverse(edge.total_blocked));

        TraceSummary {
            components,
            edges,
            bottlenecks,
            events: self.all().map(|c| c.records.len() as u64).sum(),
            dropped: self.dropped(),
        }
    }

    /// Compares the traced run against a static prediction, edge by edge
    /// and component by component, scaled to `inputs` environment tokens.
    pub fn drift_report(&self, prediction: &PerformancePrediction, inputs: u64) -> DriftReport {
        let summary_edges = self.summary().edges;
        let components = self
            .components
            .iter()
            .map(|c| {
                let predicted = prediction
                    .components
                    .iter()
                    .find(|p| p.name == c.name)
                    .map_or(0.0, |p| p.reactions_per_input * inputs as f64);
                ComponentDrift {
                    name: c.name.clone(),
                    predicted,
                    measured: c.reactions,
                }
            })
            .collect();
        let edges = summary_edges
            .into_iter()
            .map(|edge| {
                let predicted = prediction
                    .edges
                    .iter()
                    .find(|p| {
                        p.signal == edge.signal
                            && p.producer == edge.producer
                            && p.consumer == edge.consumer
                    })
                    .map_or(0.0, |p| p.tokens_per_input * inputs as f64);
                EdgeDrift {
                    signal: edge.signal,
                    producer: edge.producer,
                    consumer: edge.consumer,
                    predicted,
                    sent: edge.tokens_sent,
                    received: edge.tokens_received,
                }
            })
            .collect();
        DriftReport {
            inputs,
            components,
            edges,
        }
    }

    /// Renders the timeline as Chrome trace-event JSON — load the string
    /// (saved as a `.json` file) in Perfetto or `chrome://tracing`.
    /// `pid` 1 is the deployment; each component is a `tid` in deployment
    /// order, with pool workers on the `tid`s after them.  Reactions and
    /// blocked episodes become duration events, token movements become
    /// occupancy counter tracks, and dispatches/parks/stops become
    /// instants.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |event: String| {
            // A closure so every event site shares the separator logic.
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str(&event);
        };

        for (tid, c) in self.components.iter().chain(&self.workers).enumerate() {
            emit(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(&c.name)
            ));
            let mut open_block: Option<&Name> = None;
            for record in &c.records {
                let ts = record.ts_ns as f64 / 1000.0;
                match &record.event {
                    TraceEvent::ReactionBegin => emit(format!(
                        "{{\"name\":\"reaction\",\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":1,\
                         \"tid\":{tid}}}"
                    )),
                    TraceEvent::ReactionEnd => emit(format!(
                        "{{\"name\":\"reaction\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":1,\
                         \"tid\":{tid}}}"
                    )),
                    TraceEvent::BlockedOn { signal, direction } => {
                        open_block = Some(signal);
                        emit(format!(
                            "{{\"name\":\"blocked:{}\",\"cat\":\"{direction}\",\"ph\":\"B\",\
                             \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid}}}",
                            escape_json(signal.as_str())
                        ));
                    }
                    TraceEvent::Unblocked { signal } => {
                        open_block = None;
                        emit(format!(
                            "{{\"name\":\"blocked:{}\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":1,\
                             \"tid\":{tid}}}",
                            escape_json(signal.as_str())
                        ));
                    }
                    TraceEvent::TokenSent {
                        signal, occupancy, ..
                    }
                    | TraceEvent::TokenReceived { signal, occupancy } => {
                        if let Some(occ) = occupancy {
                            emit(format!(
                                "{{\"name\":\"occupancy:{}\",\"ph\":\"C\",\"ts\":{ts:.3},\
                                 \"pid\":1,\"args\":{{\"tokens\":{occ}}}}}",
                                escape_json(signal.as_str())
                            ));
                        }
                    }
                    TraceEvent::Dispatch { component, stolen } => {
                        let name = if *stolen { "steal" } else { "dispatch" };
                        let target = self
                            .components
                            .get(*component)
                            .map_or("?", |c| c.name.as_str());
                        emit(format!(
                            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\
                             \"pid\":1,\"tid\":{tid},\"args\":{{\"component\":\"{}\"}}}}",
                            escape_json(target)
                        ));
                    }
                    TraceEvent::Park => emit(format!(
                        "{{\"name\":\"park\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\
                         \"tid\":{tid}}}"
                    )),
                    TraceEvent::Stop { reason } => {
                        // A blocked episode that ended terminally has no
                        // Unblocked record: close its duration event here
                        // so the B/E pairs nest.
                        if let Some(signal) = open_block.take() {
                            emit(format!(
                                "{{\"name\":\"blocked:{}\",\"ph\":\"E\",\"ts\":{ts:.3},\
                                 \"pid\":1,\"tid\":{tid}}}",
                                escape_json(signal.as_str())
                            ));
                        }
                        emit(format!(
                            "{{\"name\":\"stop\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\
                             \"pid\":1,\"tid\":{tid},\"args\":{{\"reason\":\"{}\"}}}}",
                            escape_json(reason)
                        ));
                    }
                }
            }
        }
        let _ = write!(out, "],\"displayTimeUnit\":\"ms\"}}");
        out
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CapacitySource;

    fn name(s: &str) -> Name {
        Name::from(s)
    }

    fn spec(signal: &str, producer: usize, consumer: usize, capacity: usize) -> ChannelSpec {
        ChannelSpec {
            signal: name(signal),
            producer,
            consumer,
            capacity,
            source: CapacitySource::Default,
            derivation: None,
            backend: "spsc-ring",
        }
    }

    #[test]
    fn the_buffer_drops_beyond_its_limit_but_keeps_exact_aggregates() {
        let mut buffer = TraceBuffer::new(Instant::now(), 4);
        for _ in 0..8 {
            let begin = buffer.now();
            buffer.reaction(begin);
        }
        assert_eq!(buffer.records.len(), 4, "timeline truncates");
        assert_eq!(buffer.dropped, 12, "8 reactions push 16 records");
        assert_eq!(buffer.reactions, 8, "the aggregate stays exact");
    }

    #[test]
    fn blocked_episodes_are_deduplicated_and_balanced() {
        let mut buffer = TraceBuffer::new(Instant::now(), 1024);
        let x = name("x");
        buffer.blocked(&x, BlockDirection::Upstream);
        buffer.blocked(&x, BlockDirection::Upstream); // re-entry: no-op
        buffer.received(&x, Some(0));
        buffer.unblocked(&x);
        buffer.unblocked(&x); // double close: no-op
        let blocks = buffer
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::BlockedOn { .. }))
            .count();
        let unblocks = buffer
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Unblocked { .. }))
            .count();
        assert_eq!((blocks, unblocks), (1, 1));
        assert_eq!(buffer.blocked_by_signal.get(&x).map(|e| e.0), Some(1));
    }

    #[test]
    fn a_terminal_stop_closes_the_open_episode_without_an_unblocked_record() {
        let mut buffer = TraceBuffer::new(Instant::now(), 1024);
        let x = name("x");
        buffer.blocked(&x, BlockDirection::Upstream);
        buffer.stopped(&StopReason::UpstreamClosed(x.clone()));
        assert!(buffer.open_block.is_none());
        assert!(!buffer
            .records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Unblocked { .. })));
        assert_eq!(
            buffer.blocked_by_signal.get(&x).map(|e| e.0),
            Some(1),
            "the episode still accounts its blocked time"
        );
    }

    #[test]
    fn the_summary_merges_edges_and_ranks_bottlenecks() {
        let epoch = Instant::now();
        let x = name("x");
        let mut producer = TraceBuffer::new(epoch, 1024);
        producer.sent(&x, 0, Some(1));
        producer.sent(&x, 0, Some(2));
        producer.stopped(&StopReason::EnvironmentExhausted(name("a")));
        let mut consumer = TraceBuffer::new(epoch, 1024);
        consumer.blocked(&x, BlockDirection::Upstream);
        consumer.received(&x, Some(1));
        consumer.unblocked(&x);
        consumer.received(&x, Some(0));
        consumer.stopped(&StopReason::UpstreamClosed(x.clone()));
        let trace = Trace::assemble(
            vec![("p".into(), producer), ("c".into(), consumer)],
            Vec::new(),
            vec![spec("x", 0, 1, 2)],
        );
        let summary = trace.summary();
        assert_eq!(summary.edges.len(), 1);
        let edge = &summary.edges[0];
        assert_eq!(edge.tokens_sent, 2);
        assert_eq!(edge.tokens_received, 2);
        assert_eq!(edge.high_water, Some(2));
        assert_eq!(edge.within_capacity(), Some(true));
        assert!(summary.occupancy_within_capacity());
        assert_eq!(summary.bottlenecks.len(), 1);
        assert_eq!(summary.bottlenecks[0].signal, x);
        assert_eq!(summary.bottlenecks[0].episodes, 1);
        let text = summary.to_string();
        assert!(text.contains("edge x (0→1): 2 sent, 2 received, high water 2/2"));
    }

    #[test]
    fn broadcast_sinks_map_onto_their_topology_edges_in_order() {
        // One producer, two consumers of the same signal: sink 0 is the
        // first spec of the signal, sink 1 the second.
        let epoch = Instant::now();
        let x = name("x");
        let mut producer = TraceBuffer::new(epoch, 1024);
        producer.sent(&x, 0, Some(1));
        producer.sent(&x, 1, Some(1));
        producer.sent(&x, 1, Some(2));
        let mut c1 = TraceBuffer::new(epoch, 1024);
        c1.received(&x, Some(0));
        let c2 = TraceBuffer::new(epoch, 1024);
        let trace = Trace::assemble(
            vec![("p".into(), producer), ("c1".into(), c1), ("c2".into(), c2)],
            Vec::new(),
            vec![spec("x", 0, 1, 4), spec("x", 0, 2, 4)],
        );
        let summary = trace.summary();
        assert_eq!(summary.edges[0].tokens_sent, 1);
        assert_eq!(summary.edges[0].tokens_received, 1);
        assert_eq!(summary.edges[1].tokens_sent, 2);
        assert_eq!(summary.edges[1].tokens_received, 0);
        assert_eq!(summary.edges[1].high_water, Some(2));
    }

    #[test]
    fn the_chrome_export_escapes_and_closes_terminal_blocks() {
        let epoch = Instant::now();
        let x = name("x");
        let mut consumer = TraceBuffer::new(epoch, 1024);
        let begin = consumer.now();
        consumer.reaction(begin);
        consumer.blocked(&x, BlockDirection::Upstream);
        consumer.stopped(&StopReason::Fault("a \"quoted\" fault".into()));
        let trace = Trace::assemble(vec![("c".into(), consumer)], Vec::new(), Vec::new());
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"quoted\\\""), "escaped: {json}");
        // The terminal stop closes the open blocked episode before the
        // stop instant, so B/E pairs balance.
        let begins = json.matches("\"name\":\"blocked:x\",\"cat\"").count();
        let ends = json.matches("\"name\":\"blocked:x\",\"ph\":\"E\"").count();
        assert_eq!((begins, ends), (1, 1), "{json}");
    }

    #[test]
    fn json_escaping_covers_the_control_plane() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
