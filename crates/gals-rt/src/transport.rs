//! The pluggable transport layer of the deployment engine.
//!
//! The paper's GALS story deliberately leaves the FIFO medium abstract:
//! isochrony holds for *any* reliable order-preserving channel.  This
//! module makes the medium a first-class extension point — a [`Transport`]
//! mints typed endpoint pairs ([`TokenTx`]/[`TokenRx`]) for each edge of
//! the derived topology, so the worker loop and the deployment builder
//! never name a concrete channel type.
//!
//! Two backends ship with the crate:
//!
//! * [`MpscTransport`] — the bounded mpsc channel (the crossbeam shim over
//!   `std::sync::mpsc`), the conservative default of earlier releases;
//! * [`crate::ring::RingTransport`] — a lock-free fixed-capacity SPSC ring
//!   buffer, selected automatically ([`Backend::Auto`]) because every edge
//!   the topology derivation produces is single-producer/single-consumer.
//!
//! Channel sizing and backend selection are grouped in a [`ChannelPolicy`]:
//! a default capacity, per-signal overrides, and the backend choice — the
//! per-edge resolution is reported by `Deployment::topology()`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{
    self, Receiver, Sender, TryRecvError as ShimTryRecvError, TrySendError as ShimTrySendError,
};
use signal_lang::{Name, Value};

use crate::capacity::{CapacityAnalysis, DerivedCapacity, UnprimedCycle};

/// A transport could not mint (or connect) an endpoint pair: the socket
/// path is unreachable, the shared file cannot be created, the peer
/// refused the handshake.  In-process backends never fail; a distributed
/// medium reports its I/O trouble here instead of panicking, and the
/// deployment surfaces it as `DeployError::Transport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// What went wrong, in the transport's own words.
    pub message: String,
}

impl TransportError {
    /// Wraps a failure description.
    pub fn new(message: impl Into<String>) -> Self {
        TransportError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transport failure: {}", self.message)
    }
}

impl std::error::Error for TransportError {}

/// The peer endpoint of a channel is gone: a send can never be delivered,
/// or a receive can never be satisfied (the buffer is drained and the
/// producer dropped its endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the peer endpoint of the channel is closed")
    }
}

impl std::error::Error for ChannelClosed {}

/// Why a non-blocking receive returned no token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty; the producer may still deliver.
    Empty,
    /// The buffer is drained and the producer endpoint is gone.
    Closed,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "the channel is empty"),
            TryRecvError::Closed => write!(f, "the channel is closed and drained"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Why a non-blocking send did not deliver its token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError {
    /// The buffer is currently full; the consumer may still drain it.
    Full,
    /// The receiving endpoint is gone; the token can never be delivered.
    Closed,
}

impl fmt::Display for TrySendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full => write!(f, "the channel is full"),
            TrySendError::Closed => write!(f, "the channel is closed"),
        }
    }
}

impl std::error::Error for TrySendError {}

/// The sending endpoint of one bounded token channel.
///
/// Dropping the endpoint closes the channel: a blocked or later receive on
/// the peer observes [`ChannelClosed`] once the buffer is drained.
pub trait TokenTx: Send {
    /// Delivers one token, blocking while the buffer is full.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] when the receiving endpoint is gone (the
    /// token is dropped, exactly like a send to a terminated worker).
    fn send(&self, token: Value) -> Result<(), ChannelClosed>;

    /// Delivers one token without blocking — the hook the cooperative pool
    /// scheduler uses to turn a full buffer into a yield instead of a
    /// parked OS thread.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when the buffer has no free slot and
    /// [`TrySendError::Closed`] when the receiving endpoint is gone.
    fn try_send(&self, token: Value) -> Result<(), TrySendError>;

    /// How many tokens the channel currently buffers, when the medium can
    /// tell (`None` otherwise — e.g. the mpsc shim hides its queue).  An
    /// implementation returning `Some` must report an *instantaneous*
    /// snapshot that never exceeds the channel capacity; the tracing layer
    /// records it as the per-edge occupancy witness.
    fn occupancy(&self) -> Option<usize> {
        None
    }
}

/// The receiving endpoint of one bounded token channel.
///
/// Dropping the endpoint closes the channel: a blocked or later send on
/// the peer observes [`ChannelClosed`].
pub trait TokenRx: Send {
    /// Takes the next token, blocking while the buffer is empty.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelClosed`] when the buffer is drained and the
    /// sending endpoint is gone.
    fn recv(&self) -> Result<Value, ChannelClosed>;

    /// Takes the next token without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when no token is buffered yet and
    /// [`TryRecvError::Closed`] once the channel is drained and closed.
    fn try_recv(&self) -> Result<Value, TryRecvError>;

    /// How many tokens the channel currently buffers, when the medium can
    /// tell (`None` otherwise).  Same contract as [`TokenTx::occupancy`].
    fn occupancy(&self) -> Option<usize> {
        None
    }
}

/// A connected endpoint pair for one edge of the topology.
pub type Endpoints = (Box<dyn TokenTx>, Box<dyn TokenRx>);

/// A channel factory: mints one connected endpoint pair per topology edge.
///
/// Implementations must preserve token order and deliver every token
/// accepted by [`TokenTx::send`] exactly once — the reliability assumption
/// under which Theorem 1 (isochrony) transfers to the deployment.  An
/// implementation spanning processes or hosts makes the deployment a true
/// distributed GALS system without touching the engine.
pub trait Transport: Send + Sync {
    /// A short stable name for reports and topology dumps.
    fn name(&self) -> &'static str;

    /// Mints a connected endpoint pair with an internal buffer of
    /// `capacity` tokens (`capacity >= 1`; the deployment rejects 0).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the medium cannot be established —
    /// the in-process backends never fail, but a distributed transport
    /// (sockets, shared files) can, and the deployment reports the failure
    /// as a typed `DeployError::Transport` instead of aborting.
    fn open(&self, capacity: usize) -> Result<Endpoints, TransportError>;
}

/// Which built-in channel backend a deployment wires its edges with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick the best built-in backend per edge.  Every edge the topology
    /// derivation produces has exactly one producer and one consumer, so
    /// this resolves to the lock-free SPSC ring.
    #[default]
    Auto,
    /// The bounded mpsc channel (crossbeam shim over `std::sync::mpsc`).
    Mpsc,
    /// The lock-free fixed-capacity SPSC ring buffer ([`crate::ring`]).
    SpscRing,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Auto => write!(f, "auto"),
            Backend::Mpsc => write!(f, "{}", MpscTransport::NAME),
            Backend::SpscRing => write!(f, "{}", crate::ring::RingTransport::NAME),
        }
    }
}

/// A channel capacity of zero was requested.
///
/// Capacity 0 would be a rendezvous channel: the worker loop publishes a
/// produced token *before* attempting its next read, so two adjacent
/// workers would each block in `send` waiting for the other to arrive at
/// `recv` — a deadlock.  The deployment rejects it up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroCapacity {
    /// The per-signal override that was zero, or `None` for the default
    /// capacity.
    pub signal: Option<Name>,
}

impl fmt::Display for ZeroCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.signal {
            Some(n) => write!(
                f,
                "channel capacity 0 for signal {n} would deadlock the worker loop \
                 (a rendezvous send can never be met); use a capacity of at least 1"
            ),
            None => write!(
                f,
                "channel capacity 0 would deadlock the worker loop (a rendezvous \
                 send can never be met); use a capacity of at least 1"
            ),
        }
    }
}

impl std::error::Error for ZeroCapacity {}

/// Where the capacities of a deployment's channels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelSizing {
    /// Hand-tuned: the policy default, with per-signal overrides (the
    /// historic behavior, and still the default).
    #[default]
    Fixed,
    /// Derived from the clock calculus: every edge takes the bound of an
    /// installed [`CapacityAnalysis`] (explicit overrides still win); an
    /// edge with neither is a typed error instead of a silent default.
    Derived,
}

impl fmt::Display for ChannelSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelSizing::Fixed => write!(f, "fixed"),
            ChannelSizing::Derived => write!(f, "derived"),
        }
    }
}

/// How one edge's capacity was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacitySource {
    /// The policy default capacity.
    Default,
    /// A per-signal override set by the caller.
    Override,
    /// A bound derived from the clock calculus.
    Derived,
}

impl fmt::Display for CapacitySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacitySource::Default => write!(f, "default"),
            CapacitySource::Override => write!(f, "override"),
            CapacitySource::Derived => write!(f, "derived"),
        }
    }
}

/// The capacity one edge resolves to under the policy, with its origin
/// and (for derived edges) the derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedCapacity {
    /// The number of buffer slots the edge's channel gets.
    pub capacity: usize,
    /// Where the number came from.
    pub source: CapacitySource,
    /// The derivation provenance, for [`CapacitySource::Derived`] edges.
    pub derivation: Option<String>,
}

/// How the channels of a deployment are sized and which backend carries
/// them: a sizing mode ([`ChannelSizing`]), a default capacity, per-signal
/// overrides, the derived bounds of an installed [`CapacityAnalysis`],
/// and a [`Backend`] selection.
///
/// The per-edge resolution (override, derived bound, or default) is
/// reported by `Deployment::topology()` in each `ChannelSpec`.
#[derive(Debug, Clone)]
pub struct ChannelPolicy {
    sizing: ChannelSizing,
    default_capacity: usize,
    overrides: BTreeMap<Name, usize>,
    derived: BTreeMap<Name, DerivedCapacity>,
    unprimed: Vec<UnprimedCycle>,
    backend: Backend,
}

impl ChannelPolicy {
    /// The policy of the paper's concurrent scheme: every channel is a
    /// one-place buffer, carried by the automatically selected backend.
    pub fn new() -> Self {
        ChannelPolicy {
            sizing: ChannelSizing::Fixed,
            default_capacity: 1,
            overrides: BTreeMap::new(),
            derived: BTreeMap::new(),
            unprimed: Vec::new(),
            backend: Backend::Auto,
        }
    }

    /// Sets the default capacity of every channel without an override.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroCapacity`] for `capacity == 0`.
    pub fn set_default_capacity(&mut self, capacity: usize) -> Result<&mut Self, ZeroCapacity> {
        if capacity == 0 {
            return Err(ZeroCapacity { signal: None });
        }
        self.default_capacity = capacity;
        Ok(self)
    }

    /// Overrides the capacity of the channels carrying one signal — the
    /// hook for per-channel bounds derived from the clock calculus (a
    /// producer twice as fast as its consumer needs a deeper buffer than a
    /// lock-step pair).
    ///
    /// An override for a signal that turns out not to be a channel (an
    /// environment input or an unknown name) is simply never consulted.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroCapacity`] for `capacity == 0`.
    pub fn set_channel_capacity(
        &mut self,
        signal: impl Into<Name>,
        capacity: usize,
    ) -> Result<&mut Self, ZeroCapacity> {
        let signal = signal.into();
        if capacity == 0 {
            return Err(ZeroCapacity {
                signal: Some(signal),
            });
        }
        self.overrides.insert(signal, capacity);
        Ok(self)
    }

    /// Selects the built-in backend wiring the channels.
    pub fn set_backend(&mut self, backend: Backend) -> &mut Self {
        self.backend = backend;
        self
    }

    /// The default capacity of channels without an override.
    pub fn default_capacity(&self) -> usize {
        self.default_capacity
    }

    /// The selected backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The per-signal capacity overrides.
    pub fn overrides(&self) -> &BTreeMap<Name, usize> {
        &self.overrides
    }

    /// The resolved capacity for the channels carrying `signal` under
    /// [`ChannelSizing::Fixed`] semantics (override, or default) — derived
    /// bounds are only consulted by [`resolve`](ChannelPolicy::resolve).
    pub fn capacity_for(&self, signal: &Name) -> usize {
        self.overrides
            .get(signal)
            .copied()
            .unwrap_or(self.default_capacity)
    }

    /// Selects how edges are sized: hand-tuned ([`ChannelSizing::Fixed`],
    /// the default) or from installed derived bounds
    /// ([`ChannelSizing::Derived`]).
    pub fn set_sizing(&mut self, sizing: ChannelSizing) -> &mut Self {
        self.sizing = sizing;
        self
    }

    /// The sizing mode in effect.
    pub fn sizing(&self) -> ChannelSizing {
        self.sizing
    }

    /// Installs the bounds of a [`CapacityAnalysis`] — and its
    /// priming-liveness verdicts — and switches the policy to
    /// [`ChannelSizing::Derived`].
    pub fn install_derived(&mut self, analysis: &CapacityAnalysis) -> &mut Self {
        self.derived = analysis.bounds().clone();
        self.unprimed = analysis.unprimed_cycles().to_vec();
        self.sizing = ChannelSizing::Derived;
        self
    }

    /// The derived bound installed for a signal, if any.
    pub fn derived_for(&self, signal: &Name) -> Option<&DerivedCapacity> {
        self.derived.get(signal)
    }

    /// The unprimed feedback loops of the installed analysis, if any.
    pub fn unprimed_cycles(&self) -> &[UnprimedCycle] {
        &self.unprimed
    }

    /// Resolves the capacity of the channels carrying `signal` under the
    /// sizing mode: an explicit override always wins; under
    /// [`ChannelSizing::Derived`] the installed bound is used next, and an
    /// edge with neither is an error (the unboundable signal is returned
    /// so the deployment can raise `DeployError::UnboundedEdge`).
    pub fn resolve(&self, signal: &Name) -> Result<ResolvedCapacity, Name> {
        if let Some(&capacity) = self.overrides.get(signal) {
            return Ok(ResolvedCapacity {
                capacity,
                source: CapacitySource::Override,
                derivation: None,
            });
        }
        match self.sizing {
            ChannelSizing::Fixed => Ok(ResolvedCapacity {
                capacity: self.default_capacity,
                source: CapacitySource::Default,
                derivation: None,
            }),
            ChannelSizing::Derived => match self.derived.get(signal) {
                Some(derived) => Ok(ResolvedCapacity {
                    capacity: derived.bound,
                    source: CapacitySource::Derived,
                    derivation: Some(derived.provenance.clone()),
                }),
                None => Err(signal.clone()),
            },
        }
    }
}

impl Default for ChannelPolicy {
    fn default() -> Self {
        ChannelPolicy::new()
    }
}

/// The bounded mpsc backend: the crossbeam shim over `std::sync::mpsc`.
///
/// Kept as the conservative baseline (and the `e13` comparison point); the
/// SPSC ring is the default for the point-to-point edges the topology
/// derivation produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpscTransport;

impl MpscTransport {
    /// The backend name reported in topologies and statistics.
    pub const NAME: &'static str = "mpsc";
}

impl Transport for MpscTransport {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn open(&self, capacity: usize) -> Result<Endpoints, TransportError> {
        assert!(capacity > 0, "a bounded channel needs at least one slot");
        let (tx, rx) = channel::bounded::<Value>(capacity);
        let counters = Arc::new(MpscCounters {
            capacity,
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        });
        Ok((
            Box::new(MpscTx(tx, Arc::clone(&counters))),
            Box::new(MpscRx(rx, counters)),
        ))
    }
}

/// The occupancy witness shared by both mpsc endpoints: the shim hides its
/// internal queue, so the endpoints count the tokens themselves.  Two
/// monotonic counters (bumped *after* a successful send/receive) instead
/// of one signed gauge: a racy snapshot can only undercount in-flight
/// tokens, never underflow, and the difference is clamped to the capacity
/// so the documented `occupancy() <= capacity` contract holds under any
/// interleaving.
struct MpscCounters {
    capacity: usize,
    sent: AtomicU64,
    received: AtomicU64,
}

impl MpscCounters {
    fn occupancy(&self) -> usize {
        let sent = self.sent.load(Ordering::Acquire);
        let received = self.received.load(Ordering::Acquire);
        usize::try_from(sent.saturating_sub(received))
            .unwrap_or(usize::MAX)
            .min(self.capacity)
    }
}

struct MpscTx(Sender<Value>, Arc<MpscCounters>);

impl TokenTx for MpscTx {
    fn send(&self, token: Value) -> Result<(), ChannelClosed> {
        self.0.send(token).map_err(|_| ChannelClosed)?;
        self.1.sent.fetch_add(1, Ordering::Release);
        Ok(())
    }

    fn try_send(&self, token: Value) -> Result<(), TrySendError> {
        self.0.try_send(token).map_err(|e| match e {
            ShimTrySendError::Full(_) => TrySendError::Full,
            ShimTrySendError::Disconnected(_) => TrySendError::Closed,
        })?;
        self.1.sent.fetch_add(1, Ordering::Release);
        Ok(())
    }

    fn occupancy(&self) -> Option<usize> {
        Some(self.1.occupancy())
    }
}

struct MpscRx(Receiver<Value>, Arc<MpscCounters>);

impl TokenRx for MpscRx {
    fn recv(&self) -> Result<Value, ChannelClosed> {
        let value = self.0.recv().map_err(|_| ChannelClosed)?;
        self.1.received.fetch_add(1, Ordering::Release);
        Ok(value)
    }

    fn try_recv(&self) -> Result<Value, TryRecvError> {
        let value = self.0.try_recv().map_err(|e| match e {
            ShimTryRecvError::Empty => TryRecvError::Empty,
            ShimTryRecvError::Disconnected => TryRecvError::Closed,
        })?;
        self.1.received.fetch_add(1, Ordering::Release);
        Ok(value)
    }

    fn occupancy(&self) -> Option<usize> {
        Some(self.1.occupancy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_resolves_overrides_and_defaults() {
        let mut policy = ChannelPolicy::new();
        assert_eq!(policy.default_capacity(), 1);
        assert_eq!(policy.backend(), Backend::Auto);
        policy.set_default_capacity(4).expect("nonzero");
        policy.set_channel_capacity("x", 16).expect("nonzero");
        assert_eq!(policy.capacity_for(&Name::from("x")), 16);
        assert_eq!(policy.capacity_for(&Name::from("y")), 4);
        assert_eq!(policy.overrides().len(), 1);
    }

    #[test]
    fn zero_capacities_are_rejected_with_the_culprit() {
        let mut policy = ChannelPolicy::new();
        let err = policy.set_default_capacity(0).unwrap_err();
        assert_eq!(err.signal, None);
        assert!(err.to_string().contains("deadlock"));
        let err = policy.set_channel_capacity("x", 0).unwrap_err();
        assert_eq!(err.signal, Some(Name::from("x")));
        assert!(err.to_string().contains('x'));
        // The failed sets left the policy untouched.
        assert_eq!(policy.default_capacity(), 1);
        assert!(policy.overrides().is_empty());
    }

    #[test]
    fn the_mpsc_backend_round_trips_and_closes() {
        let (tx, rx) = MpscTransport.open(2).expect("in-process");
        tx.send(Value::Int(1)).unwrap();
        tx.send(Value::Bool(true)).unwrap();
        assert_eq!(rx.try_recv(), Ok(Value::Int(1)));
        assert_eq!(rx.recv(), Ok(Value::Bool(true)));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(rx.recv(), Err(ChannelClosed));
        let (tx, rx) = MpscTransport.open(1).expect("in-process");
        drop(rx);
        assert_eq!(tx.send(Value::Int(7)), Err(ChannelClosed));
    }

    #[test]
    fn the_mpsc_backend_is_an_occupancy_witness() {
        let (tx, rx) = MpscTransport.open(2).expect("in-process");
        assert_eq!(tx.occupancy(), Some(0));
        assert_eq!(rx.occupancy(), Some(0));
        tx.send(Value::Int(1)).unwrap();
        assert_eq!(tx.occupancy(), Some(1));
        tx.try_send(Value::Int(2)).unwrap();
        assert_eq!(rx.occupancy(), Some(2));
        // A full buffer never reports past its capacity.
        assert_eq!(tx.try_send(Value::Int(3)), Err(TrySendError::Full));
        assert_eq!(tx.occupancy(), Some(2));
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(rx.occupancy(), Some(1));
        assert_eq!(rx.try_recv(), Ok(Value::Int(2)));
        assert_eq!(tx.occupancy(), Some(0));
        // Failed operations leave the witness untouched.
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(rx.occupancy(), Some(0));
    }

    #[test]
    fn transport_errors_render_their_message() {
        let err = TransportError::new("dial refused");
        assert!(err.to_string().contains("dial refused"));
    }

    #[test]
    fn the_mpsc_backend_reports_full_and_closed_on_try_send() {
        let (tx, rx) = MpscTransport.open(1).expect("in-process");
        assert_eq!(tx.try_send(Value::Int(1)), Ok(()));
        assert_eq!(tx.try_send(Value::Int(2)), Err(TrySendError::Full));
        assert_eq!(rx.recv(), Ok(Value::Int(1)));
        assert_eq!(tx.try_send(Value::Int(3)), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(Value::Int(4)), Err(TrySendError::Closed));
    }

    #[test]
    fn derived_sizing_resolves_bounds_and_flags_unbounded_edges() {
        use clocks::rate::RateRelation;
        let mut analysis = CapacityAnalysis::new();
        analysis.insert(
            "x",
            DerivedCapacity {
                bound: 2,
                relation: RateRelation::Alternating {
                    state: Name::from("t"),
                },
                provenance: "alternating on t".into(),
            },
        );
        let mut policy = ChannelPolicy::new();
        assert_eq!(policy.sizing(), ChannelSizing::Fixed);
        policy.install_derived(&analysis);
        assert_eq!(policy.sizing(), ChannelSizing::Derived);
        let x = policy.resolve(&Name::from("x")).expect("bounded");
        assert_eq!(x.capacity, 2);
        assert_eq!(x.source, CapacitySource::Derived);
        assert!(x.derivation.as_deref().unwrap().contains("alternating"));
        // An edge without a bound is an error under derived sizing...
        assert_eq!(policy.resolve(&Name::from("y")), Err(Name::from("y")));
        // ...unless an explicit override steps in, which also wins over a
        // derived bound.
        policy.set_channel_capacity("y", 7).expect("nonzero");
        policy.set_channel_capacity("x", 5).expect("nonzero");
        for (signal, capacity) in [("y", 7), ("x", 5)] {
            let resolved = policy.resolve(&Name::from(signal)).expect("bounded");
            assert_eq!(resolved.capacity, capacity);
            assert_eq!(resolved.source, CapacitySource::Override);
        }
        // Fixed sizing ignores the derived map entirely.
        policy.set_sizing(ChannelSizing::Fixed);
        let z = policy.resolve(&Name::from("z")).expect("default");
        assert_eq!(z.capacity, policy.default_capacity());
        assert_eq!(z.source, CapacitySource::Default);
    }

    #[test]
    fn backends_render_their_names() {
        assert_eq!(Backend::Auto.to_string(), "auto");
        assert_eq!(Backend::Mpsc.to_string(), "mpsc");
        assert_eq!(Backend::SpscRing.to_string(), "spsc-ring");
    }
}
