//! The per-component step driver.
//!
//! A [`Driver`] owns one [`StepMachine`] and its channel endpoints and
//! advances it **cooperatively**: [`Driver::drive`] steps the machine up to
//! a quantum of reactions and, instead of parking the OS thread, returns
//! [`DriveOutcome::Pending`] when progress needs a peer — a token on an
//! empty upstream edge, or room in a full downstream buffer.  The
//! work-stealing pool scheduler ([`crate::sched`]) dispatches drivers from
//! its ready set and re-queues them when the blocking edge drains.
//!
//! The classic one-OS-thread-per-component execution is the degenerate
//! client of the same driver: [`run_dedicated`] drives with an unbounded
//! quantum and serves each `Pending` with the endpoint's *blocking*
//! `recv`/`send` — exactly the backpressure loop of earlier releases.
//!
//! The driver is written purely against the [`transport`](crate::transport)
//! endpoint API: which medium carries the tokens (mpsc channel, lock-free
//! SPSC ring, something remote) is the deployment policy's business, not
//! the driver's.

use std::collections::{BTreeMap, BTreeSet};

use signal_lang::Name;
use sim::Flows;

use crate::machine::{StepFault, StepMachine};
use crate::stats::{ComponentStats, StopReason};
use crate::trace::{BlockDirection, TraceBuffer};
use crate::transport::{TokenRx, TokenTx, TryRecvError, TrySendError};

/// The edge a cooperative driver is blocked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Pending {
    /// The machine needs a token on this channel-fed input and the buffer
    /// is empty: runnable again once the upstream producer delivers.
    Upstream(Name),
    /// A produced token on this output could not be published because a
    /// consumer's buffer is full: runnable again once that consumer drains.
    Downstream(Name),
}

/// What one [`Driver::drive`] dispatch concluded.
#[derive(Debug)]
pub(crate) enum DriveOutcome {
    /// The quantum was exhausted with the machine still runnable.
    Yielded,
    /// The machine is blocked on a channel edge; re-drive once it moves.
    Pending(Pending),
    /// The machine will never react again.
    Done(StopReason),
}

/// A resumable step driver: one machine, its endpoints, its counters.
pub(crate) struct Driver {
    machine: Box<dyn StepMachine>,
    /// Upstream receiving endpoints, one per channel-fed input signal.
    sources: BTreeMap<Name, Box<dyn TokenRx>>,
    /// Downstream sending endpoints: one per consumer of each output
    /// (`None` once that consumer terminated and its channel closed).
    sinks: BTreeMap<Name, Vec<Option<Box<dyn TokenTx>>>>,
    /// Per-output publication cursors into `machine.produced(..)`.
    cursors: BTreeMap<Name, usize>,
    /// Mid-value publication state: the sink index to resume a partially
    /// broadcast token at (the value is `produced[cursor]` of the signal).
    resume_sink: BTreeMap<Name, usize>,
    /// The upstream edge of the wait episode currently charged to
    /// `blocked_reads`, so a pool re-dispatch that finds the same edge
    /// still empty (a spurious wake) does not count the one wait twice.
    waiting_on: Option<Name>,
    /// Channel-fed inputs that are really *environment* ingress edges (a
    /// staged deployment streams its env inputs over channels instead of
    /// preloading them): their close is the normal end of the input
    /// stream, reported as [`StopReason::EnvironmentExhausted`] rather
    /// than the mid-pipeline [`StopReason::UpstreamClosed`].
    env_sources: BTreeSet<Name>,
    max_steps: u64,
    reactions: u64,
    blocked_reads: u64,
    tokens_sent: u64,
    tokens_received: u64,
    /// The component's private event recorder, when tracing is on.  It
    /// travels with the driver across pool workers, so recording never
    /// takes a lock; when `None` every record site is one branch.
    trace: Option<Box<TraceBuffer>>,
}

/// What a finished driver reports back.
pub(crate) struct WorkerReport {
    pub(crate) stats: ComponentStats,
    pub(crate) flows: Flows,
    pub(crate) trace: Option<TraceBuffer>,
}

impl Driver {
    pub(crate) fn new(
        machine: Box<dyn StepMachine>,
        sources: BTreeMap<Name, Box<dyn TokenRx>>,
        sinks: BTreeMap<Name, Vec<Box<dyn TokenTx>>>,
        max_steps: u64,
    ) -> Self {
        let cursors = machine
            .output_signals()
            .iter()
            .map(|o| (o.clone(), 0))
            .collect();
        let sinks = sinks
            .into_iter()
            .map(|(signal, txs)| (signal, txs.into_iter().map(Some).collect()))
            .collect();
        Driver {
            machine,
            sources,
            sinks,
            cursors,
            resume_sink: BTreeMap::new(),
            waiting_on: None,
            env_sources: BTreeSet::new(),
            max_steps,
            reactions: 0,
            blocked_reads: 0,
            tokens_sent: 0,
            tokens_received: 0,
            trace: None,
        }
    }

    /// Installs the event recorder (tracing on).
    pub(crate) fn set_trace(&mut self, buffer: TraceBuffer) {
        self.trace = Some(Box::new(buffer));
    }

    /// Marks a channel-fed input as an environment ingress edge.
    pub(crate) fn mark_environment(&mut self, signal: Name) {
        self.env_sources.insert(signal);
    }

    /// The stop reason for observing `signal`'s upstream channel closed:
    /// the normal end of the environment stream for a marked ingress edge,
    /// a mid-pipeline producer termination otherwise.
    fn closed_stop(&self, signal: Name) -> StopReason {
        if self.env_sources.contains(&signal) {
            StopReason::EnvironmentExhausted(signal)
        } else {
            StopReason::UpstreamClosed(signal)
        }
    }

    /// How many tokens this driver has moved over its channels so far —
    /// the scheduler compares snapshots around a dispatch to decide whether
    /// blocked neighbors may have become runnable.
    pub(crate) fn tokens_moved(&self) -> u64 {
        self.tokens_sent + self.tokens_received
    }

    /// Publishes every not-yet-published produced token.  Non-blocking by
    /// default: returns the output signal whose broadcast stalled on a
    /// full buffer (`None` when fully flushed), remembering the stalled
    /// position so the next call resumes exactly where this one stopped
    /// and no consumer ever sees a token twice.  With `blocking` (the
    /// dedicated-thread mode, where waiting on a full buffer *is* the
    /// backpressure mechanism), a full buffer is waited out instead and
    /// the flush always completes.
    fn flush(&mut self, blocking: bool) -> Option<Name> {
        for (signal, senders) in self.sinks.iter_mut() {
            let produced = self.machine.produced(signal.as_str());
            let cursor = self.cursors.get_mut(signal).expect("output cursor");
            let mut next_sink = self.resume_sink.remove(signal).unwrap_or(0);
            while *cursor < produced.len() {
                let value = produced[*cursor];
                for (idx, slot) in senders.iter_mut().enumerate().skip(next_sink) {
                    let Some(tx) = slot else { continue };
                    let sent = if !blocking {
                        tx.try_send(value)
                    } else if self.trace.is_none() {
                        tx.send(value).map_err(|_closed| TrySendError::Closed)
                    } else {
                        // Traced blocking send: probe first so the wait on
                        // a full buffer surfaces as a blocked episode.
                        match tx.try_send(value) {
                            Err(TrySendError::Full) => {
                                if let Some(trace) = self.trace.as_deref_mut() {
                                    trace.blocked(signal, BlockDirection::Downstream);
                                }
                                let result = tx.send(value).map_err(|_closed| TrySendError::Closed);
                                if let Some(trace) = self.trace.as_deref_mut() {
                                    trace.unblocked(signal);
                                }
                                result
                            }
                            other => other,
                        }
                    };
                    match sent {
                        Ok(()) => {
                            self.tokens_sent += 1;
                            if let Some(trace) = self.trace.as_deref_mut() {
                                trace.sent(signal, idx, tx.occupancy());
                            }
                        }
                        Err(TrySendError::Closed) => *slot = None,
                        Err(TrySendError::Full) => {
                            self.resume_sink.insert(signal.clone(), idx);
                            return Some(signal.clone());
                        }
                    }
                }
                next_sink = 0;
                *cursor += 1;
            }
        }
        None
    }

    /// [`Driver::flush`], non-blocking, with the blocked-episode
    /// bookkeeping of the cooperative path: a stall opens (or moves) a
    /// downstream episode, a completed flush closes any open one.
    fn flush_cooperative(&mut self) -> Option<Name> {
        let stalled = self.flush(false);
        if let Some(trace) = self.trace.as_deref_mut() {
            match &stalled {
                Some(signal) => trace.blocked(signal, BlockDirection::Downstream),
                None => trace.unblocked_downstream(),
            }
        }
        stalled
    }

    /// Advances the machine by up to `quantum` reactions without ever
    /// blocking the OS thread: a full or empty channel edge surfaces as
    /// [`DriveOutcome::Pending`] instead of a parked wait.  Outstanding
    /// unpublished tokens are flushed before new reactions are attempted,
    /// so a resumed driver first completes the broadcast it stalled in.
    pub(crate) fn drive(&mut self, quantum: u64) -> DriveOutcome {
        if let Some(signal) = self.flush_cooperative() {
            return DriveOutcome::Pending(Pending::Downstream(signal));
        }
        let mut steps = 0u64;
        loop {
            if self.reactions >= self.max_steps {
                return DriveOutcome::Done(StopReason::StepLimit);
            }
            if steps >= quantum {
                return DriveOutcome::Yielded;
            }
            let begin = self.trace.as_ref().map(|trace| trace.now());
            match self.machine.try_step() {
                Ok(()) => {
                    self.reactions += 1;
                    steps += 1;
                    if let (Some(trace), Some(begin)) = (self.trace.as_deref_mut(), begin) {
                        trace.reaction(begin);
                    }
                    if let Some(signal) = self.flush_cooperative() {
                        return DriveOutcome::Pending(Pending::Downstream(signal));
                    }
                }
                Err(StepFault::NeedInput(signal)) => {
                    let Some(rx) = self.sources.get(&signal) else {
                        return DriveOutcome::Done(StopReason::EnvironmentExhausted(signal));
                    };
                    // The machine state is unchanged on `NeedInput`, so the
                    // retried step re-solves the same instant with the
                    // token available.  Only a read that finds the buffer
                    // empty counts as blocked.
                    match rx.try_recv() {
                        Ok(value) => {
                            self.machine.feed_value(signal.as_str(), value);
                            self.tokens_received += 1;
                            self.waiting_on = None;
                            if let Some(trace) = self.trace.as_deref_mut() {
                                trace.received(&signal, rx.occupancy());
                                trace.unblocked(&signal);
                            }
                        }
                        Err(TryRecvError::Closed) => {
                            return DriveOutcome::Done(self.closed_stop(signal));
                        }
                        Err(TryRecvError::Empty) => {
                            // One wait episode counts once, however many
                            // spurious re-dispatches find the edge still
                            // empty before a token actually arrives.
                            if self.waiting_on.as_ref() != Some(&signal) {
                                self.blocked_reads += 1;
                                self.waiting_on = Some(signal.clone());
                            }
                            if let Some(trace) = self.trace.as_deref_mut() {
                                trace.blocked(&signal, BlockDirection::Upstream);
                            }
                            return DriveOutcome::Pending(Pending::Upstream(signal));
                        }
                    }
                }
                Err(StepFault::Fault(message)) => {
                    return DriveOutcome::Done(StopReason::Fault(message));
                }
            }
        }
    }

    /// Serves an [`Pending::Upstream`] blockage with the endpoint's
    /// *blocking* receive (dedicated-thread mode).  Returns the stop reason
    /// when the wait observed the channel close instead of a token.
    fn recv_blocking(&mut self, signal: &Name) -> Option<StopReason> {
        let rx = self.sources.get(signal).expect("pending upstream edge");
        match rx.recv() {
            Ok(value) => {
                self.machine.feed_value(signal.as_str(), value);
                self.tokens_received += 1;
                self.waiting_on = None;
                if let Some(trace) = self.trace.as_deref_mut() {
                    trace.received(signal, rx.occupancy());
                    trace.unblocked(signal);
                }
                None
            }
            Err(_closed) => Some(self.closed_stop(signal.clone())),
        }
    }

    /// Finalizes the driver: snapshots the produced flows and counters and
    /// drops the endpoints, which closes every adjacent channel (blocked
    /// peers observe the close instead of hanging).
    pub(crate) fn finish(mut self, stop: StopReason) -> WorkerReport {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.stopped(&stop);
        }
        let name = self.machine.machine_name().to_string();
        let flows: Flows = self
            .machine
            .output_signals()
            .iter()
            .map(|o| (o.clone(), self.machine.produced(o.as_str()).to_vec()))
            .collect();
        WorkerReport {
            stats: ComponentStats {
                name,
                reactions: self.reactions,
                blocked_reads: self.blocked_reads,
                tokens_sent: self.tokens_sent,
                tokens_received: self.tokens_received,
                stop,
            },
            flows,
            trace: self.trace.map(|buffer| *buffer),
        }
    }
}

/// Runs one driver to completion on the current (dedicated) OS thread:
/// the thread-per-component execution mode, where channel waits park the
/// thread itself — blocking-read/blocking-write backpressure.
pub(crate) fn run_dedicated(mut driver: Driver) -> WorkerReport {
    let stop = loop {
        match driver.drive(u64::MAX) {
            DriveOutcome::Yielded => unreachable!("an unbounded quantum never yields"),
            DriveOutcome::Done(stop) => break stop,
            DriveOutcome::Pending(Pending::Upstream(signal)) => {
                if let Some(stop) = driver.recv_blocking(&signal) {
                    break stop;
                }
            }
            DriveOutcome::Pending(Pending::Downstream(_)) => {
                let stalled = driver.flush(true);
                debug_assert!(stalled.is_none(), "a blocking flush always completes");
            }
        }
    };
    driver.finish(stop)
}
