//! The per-component worker loop.
//!
//! One worker owns one [`StepMachine`] and runs it to completion on its own
//! OS thread: it repeatedly attempts a step, services blocking reads by
//! receiving from the bounded upstream channels, and publishes every newly
//! produced output token into the bounded downstream channels (blocking
//! when a buffer is full — the backpressure that makes the unbounded-FIFO
//! model of the paper executable in finite memory).
//!
//! The loop is written purely against the [`transport`](crate::transport)
//! endpoint API: which medium carries the tokens (mpsc channel, lock-free
//! SPSC ring, something remote) is the deployment policy's business, not
//! the worker's.

use std::collections::BTreeMap;

use signal_lang::{Name, Value};
use sim::Flows;

use crate::machine::{StepFault, StepMachine};
use crate::stats::{ComponentStats, StopReason};
use crate::transport::{TokenRx, TokenTx, TryRecvError};

/// A worker ready to run on its own thread.
pub(crate) struct Worker {
    pub(crate) machine: Box<dyn StepMachine>,
    /// Upstream receiving endpoints, one per channel-fed input signal.
    pub(crate) sources: BTreeMap<Name, Box<dyn TokenRx>>,
    /// Downstream sending endpoints: one per consumer of each output.
    pub(crate) sinks: BTreeMap<Name, Vec<Box<dyn TokenTx>>>,
    /// Per-component step budget.
    pub(crate) max_steps: u64,
}

/// What a finished worker reports back.
pub(crate) struct WorkerReport {
    pub(crate) stats: ComponentStats,
    pub(crate) flows: Flows,
}

impl Worker {
    /// Runs the machine until an environment stream is exhausted, an
    /// upstream channel closes during a blocking read, the step budget is
    /// spent, or the machine faults.
    pub(crate) fn run(mut self) -> WorkerReport {
        let name = self.machine.machine_name().to_string();
        let outputs = self.machine.output_signals();
        let mut cursors: BTreeMap<Name, usize> = outputs.iter().map(|o| (o.clone(), 0)).collect();
        let mut reactions = 0u64;
        let mut blocked_reads = 0u64;
        let mut tokens_sent = 0u64;
        let mut tokens_received = 0u64;

        let stop = loop {
            if reactions >= self.max_steps {
                break StopReason::StepLimit;
            }
            match self.machine.try_step() {
                Ok(()) => {
                    reactions += 1;
                    // Publish the tokens produced by this step.  A send
                    // blocks while the consumer's buffer is full; a send to
                    // a consumer that already terminated fails and removes
                    // that consumer, the remaining flow still being
                    // produced (the unbounded reference keeps producing
                    // too, so the flows stay comparable).
                    for (signal, senders) in self.sinks.iter_mut() {
                        let produced = self.machine.produced(signal.as_str());
                        let cursor = cursors.get_mut(signal).expect("output cursor");
                        for &value in &produced[*cursor..] {
                            senders.retain(|tx| tx.send(value).is_ok());
                            tokens_sent += senders.len() as u64;
                        }
                        *cursor = produced.len();
                    }
                }
                Err(StepFault::NeedInput(signal)) => {
                    if let Some(rx) = self.sources.get(&signal) {
                        // Read from the upstream channel; the machine state
                        // is unchanged, so the retried step re-solves the
                        // same instant with the token available.  Only a
                        // read that finds the buffer empty and has to wait
                        // counts as blocked.
                        let received: Result<Value, ()> = match rx.try_recv() {
                            Ok(value) => Ok(value),
                            Err(TryRecvError::Closed) => break StopReason::UpstreamClosed(signal),
                            Err(TryRecvError::Empty) => {
                                blocked_reads += 1;
                                rx.recv().map_err(|_| ())
                            }
                        };
                        match received {
                            Ok(value) => {
                                self.machine.feed_value(signal.as_str(), value);
                                tokens_received += 1;
                            }
                            Err(()) => break StopReason::UpstreamClosed(signal),
                        }
                    } else {
                        break StopReason::EnvironmentExhausted(signal);
                    }
                }
                Err(StepFault::Fault(message)) => break StopReason::Fault(message),
            }
        };

        let flows: Flows = outputs
            .iter()
            .map(|o| (o.clone(), self.machine.produced(o.as_str()).to_vec()))
            .collect();
        WorkerReport {
            stats: ComponentStats {
                name,
                reactions,
                blocked_reads,
                tokens_sent,
                tokens_received,
                stop,
            },
            flows,
        }
    }
}
