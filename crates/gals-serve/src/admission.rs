//! Admission control: pricing a candidate deployment from its
//! verification artifacts and refusing what the budget cannot host.
//!
//! The unit of accounting is the [`Footprint`] — components (pool work),
//! channel slots (memory the derived FIFO bounds prove sufficient) and
//! predicted reactions per environment token (steady-state CPU).  All
//! three come from the same static analyses that make the deployment
//! safe in the first place, so admission needs no profiling run: a
//! design is priced before a single reaction executes.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use signal_lang::Name;

/// The static resource footprint of one admitted deployment, derived
/// from the design's verification artifacts at admission time.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// Components the deployment schedules on the pool.
    pub components: usize,
    /// Total FIFO slots of the internal channels, summed over the
    /// derived capacity bounds (`isochron::Design::capacity_analysis`).
    pub channel_slots: usize,
    /// Predicted steady-state reactions per environment input token,
    /// summed over every component
    /// (`gals_rt::PerformancePrediction::reactions_per_input`).
    pub reactions_per_input: f64,
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} components, {} channel slots, {:.2} reactions/input",
            self.components, self.channel_slots, self.reactions_per_input
        )
    }
}

/// The admission budget of a [`Server`](crate::Server): per-resource
/// ceilings on the *sum* of the footprints of all tenants in flight.
/// `None` leaves a resource unmetered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budget {
    /// Ceiling on total components across tenants.
    pub components: Option<usize>,
    /// Ceiling on total derived channel slots across tenants.
    pub channel_slots: Option<usize>,
    /// Ceiling on total predicted reactions per input across tenants.
    pub reactions_per_input: Option<f64>,
}

impl Budget {
    /// A budget with no ceiling on any resource — every verified,
    /// fully-bounded design is admitted.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the component ceiling.
    #[must_use]
    pub fn with_components(mut self, limit: usize) -> Self {
        self.components = Some(limit);
        self
    }

    /// Sets the channel-slot ceiling.
    #[must_use]
    pub fn with_channel_slots(mut self, limit: usize) -> Self {
        self.channel_slots = Some(limit);
        self
    }

    /// Sets the reactions-per-input ceiling.
    #[must_use]
    pub fn with_reactions_per_input(mut self, limit: f64) -> Self {
        self.reactions_per_input = Some(limit);
        self
    }

    /// Checks whether `candidate` fits on top of the `in_use` total.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::OverBudget`] naming the first exhausted
    /// resource (components, then channel slots, then reactions).
    pub fn check(
        &self,
        id: &str,
        candidate: &Footprint,
        in_use: &Footprint,
    ) -> Result<(), AdmitError> {
        let over = |resource, requested: f64, used: f64, limit: f64| AdmitError::OverBudget {
            id: id.to_string(),
            resource,
            requested,
            in_use: used,
            limit,
        };
        if let Some(limit) = self.components {
            if in_use.components + candidate.components > limit {
                return Err(over(
                    Resource::Components,
                    candidate.components as f64,
                    in_use.components as f64,
                    limit as f64,
                ));
            }
        }
        if let Some(limit) = self.channel_slots {
            if in_use.channel_slots + candidate.channel_slots > limit {
                return Err(over(
                    Resource::ChannelSlots,
                    candidate.channel_slots as f64,
                    in_use.channel_slots as f64,
                    limit as f64,
                ));
            }
        }
        if let Some(limit) = self.reactions_per_input {
            if in_use.reactions_per_input + candidate.reactions_per_input > limit {
                return Err(over(
                    Resource::ReactionsPerInput,
                    candidate.reactions_per_input,
                    in_use.reactions_per_input,
                    limit,
                ));
            }
        }
        Ok(())
    }
}

/// One dimension of the admission [`Budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Components scheduled on the pool.
    Components,
    /// Derived FIFO slots of the internal channels.
    ChannelSlots,
    /// Predicted steady-state reactions per environment input token.
    ReactionsPerInput,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Components => write!(f, "components"),
            Resource::ChannelSlots => write!(f, "channel slots"),
            Resource::ReactionsPerInput => write!(f, "reactions per input"),
        }
    }
}

/// Why [`Server::admit`](crate::Server::admit) refused a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The design fails the static weak-hierarchy criterion.  Nothing
    /// guarantees the flows of an unverified deployment and none of its
    /// capacity bounds can be trusted, so it cannot be priced — and an
    /// unpriceable tenant is never admitted.
    NotVerified(String),
    /// The clock calculus could not bound every channel of the design:
    /// the named signals have no finite derived capacity, so the
    /// deployment's memory footprint is unknowable in advance.
    Unbounded {
        /// The signals without a finite derived bound.
        signals: Vec<Name>,
    },
    /// A tenant with this id is already being served.  Ids key the
    /// server's accounting ledger, so they must be unique among the
    /// deployments in flight.
    DuplicateId(String),
    /// Admitting the deployment would push the named resource past the
    /// server's [`Budget`].
    OverBudget {
        /// The refused tenant.
        id: String,
        /// The exhausted budget dimension.
        resource: Resource,
        /// What the candidate footprint requests.
        requested: f64,
        /// What the tenants in flight already hold.
        in_use: f64,
        /// The budget ceiling.
        limit: f64,
    },
    /// The design verified and priced but could not be staged (e.g. an
    /// ill-formed interface-derived topology); carries the rendered
    /// deployment error.
    Stage(String),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::NotVerified(name) => write!(
                f,
                "design {name} fails the static weak-hierarchy criterion; \
                 an unverified deployment cannot be priced or admitted"
            ),
            AdmitError::Unbounded { signals } => {
                let names: Vec<String> = signals.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "the clock calculus bounds no finite capacity for [{}]; \
                     the deployment's memory footprint is unknowable",
                    names.join(", ")
                )
            }
            AdmitError::DuplicateId(id) => {
                write!(f, "a deployment with id {id:?} is already being served")
            }
            AdmitError::OverBudget {
                id,
                resource,
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "admitting {id:?} would exceed the {resource} budget: \
                 {requested} requested with {in_use} of {limit} in use"
            ),
            AdmitError::Stage(reason) => {
                write!(f, "the deployment could not be staged: {reason}")
            }
        }
    }
}

impl Error for AdmitError {}

/// A snapshot of what the server's tenants currently hold against the
/// budget, plus the tenant count ([`Server::load`](crate::Server::load)).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerLoad {
    /// Deployments currently in flight.
    pub deployments: usize,
    /// Sum of the in-flight footprints.
    pub in_use: Footprint,
}

impl fmt::Display for ServerLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} deployments in flight ({})",
            self.deployments, self.in_use
        )
    }
}

/// The accounting ledger: one footprint per tenant in flight, keyed by
/// the admission id.  Entries are inserted under the ledger lock at
/// admission and removed when the tenant's handle is finished or
/// dropped, so the budget check always sees the true running total.
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    pub(crate) tenants: BTreeMap<String, Footprint>,
}

impl Ledger {
    /// The summed footprint of every tenant in flight.
    pub(crate) fn in_use(&self) -> Footprint {
        let mut total = Footprint {
            components: 0,
            channel_slots: 0,
            reactions_per_input: 0.0,
        };
        for footprint in self.tenants.values() {
            total.components += footprint.components;
            total.channel_slots += footprint.channel_slots;
            total.reactions_per_input += footprint.reactions_per_input;
        }
        total
    }
}
