//! Worker↔core affinity pinning.
//!
//! A long-running pool benefits from workers that stay put: each worker
//! thread's run-queue, the channel buffers of the components it homes,
//! and the components' machine state build up a cache footprint that
//! migration throws away.  [`pin_current_thread`] maps worker `w` to
//! core `w % available_parallelism` and pins the calling thread there.
//!
//! The implementation is a direct `sched_setaffinity(2)` FFI call on
//! Linux — the workspace is offline, so no `libc` dependency — and a
//! graceful no-op returning `false` everywhere else.  The return value
//! is reported per worker in
//! [`gals_rt::PoolWorkerStats::pinned`], so an operator can see whether
//! the pins actually took rather than trusting the configuration.

/// Pins the calling thread to core `worker % available_parallelism`.
///
/// Intended as the [`gals_rt::PoolOptions::worker_setup`] hook (the
/// signature matches); returns whether the pin took.
pub fn pin_current_thread(worker: usize) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    pin_to_core(worker % cores.max(1))
}

/// Pins the calling thread to exactly `core`; returns whether the pin
/// took (`false` on non-Linux platforms, out-of-range cores, or when
/// the kernel refuses).
pub fn pin_to_core(core: usize) -> bool {
    imp::pin(core)
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    /// 1024-bit CPU mask — the size of glibc's default `cpu_set_t`.
    const MASK_WORDS: usize = 16;

    extern "C" {
        /// `sched_setaffinity(2)`: pid 0 means the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub(super) fn pin(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        // SAFETY: the mask outlives the call and `cpusetsize` matches
        // its allocation exactly; the kernel only reads it.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn pin(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_the_test_thread_succeeds_on_linux() {
        let took = pin_current_thread(0);
        assert_eq!(took, cfg!(target_os = "linux"));
    }

    #[test]
    fn out_of_range_cores_are_refused_not_clamped() {
        assert!(!pin_to_core(1 << 20));
    }
}
