//! A long-running serving layer hosting many verified GALS deployments
//! on one shared scheduler pool.
//!
//! Everything below this crate runs *one* deployment to completion: the
//! batch entry points (`isochron::Design::deploy_derived` and friends)
//! assemble a design's components, wire its channels, run the workers,
//! and return one [`gals_rt::DeploymentOutcome`].  A serving process
//! inverts that shape — it is the deployments that come and go while the
//! process and its worker threads stay up.  This crate provides that
//! inversion in three pieces:
//!
//! * **One pool, many tenants.**  A [`Server`] owns a single
//!   [`gals_rt::SharedPool`] — a fixed set of worker OS threads with
//!   per-worker priority run-queues and work stealing (see
//!   `gals_rt::sched`'s module docs for the scheduling invariants).
//!   Every admitted deployment's components are dispatched by those same
//!   workers; per-tenant state (flows, stats, traces, completion) stays
//!   fully namespaced, so one tenant's outcome is byte-for-byte the
//!   outcome a dedicated batch run would have produced.
//!
//! * **Admission priced by the verification artifacts.**  The paper's
//!   thesis is that the clock calculus makes deployment safe *by
//!   construction*; serving extends the same artifacts into capacity
//!   planning.  [`Server::admit`] derives a [`Footprint`] for the
//!   candidate design from `Design::capacity_analysis` (how many channel
//!   slots its FIFOs provably need) and `Design::performance_prediction`
//!   (how many reactions it performs per environment token), and refuses
//!   the submission with a typed [`AdmitError`] when the running total
//!   would exceed the server's [`Budget`] — or when the design is not
//!   verified at all, because an unpriceable tenant is an unhostable one.
//!
//! * **Priorities and placement.**  Admission seeds each tenant's
//!   scheduling priority from the predictor's bottleneck edge — the two
//!   components adjacent to the busiest channel get a boost, so the pool
//!   drains the contended edge first — and the server can pin its workers
//!   to CPU cores ([`affinity`]) so the steady-state cache footprint of a
//!   long-running pool stays put.
//!
//! The streaming surface of a tenant ([`DeploymentHandle::feed`],
//! [`DeploymentHandle::poll_outputs`], [`DeploymentHandle::finish`])
//! wraps `gals_rt::SubmittedDeployment`: environment inputs arrive over
//! bounded ingress channels with client-side backpressure, external
//! outputs are polled from egress channels, and draining returns the
//! exact `DeploymentOutcome` shape the batch runner produces — including
//! dynamic isochrony conformance checking against the synchronous
//! references.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod affinity;
mod server;

pub use admission::{AdmitError, Budget, Footprint, Resource, ServerLoad};
pub use server::{AdmitOptions, DeploymentHandle, FinishError, Server, ServerOptions};
