//! The server: one shared pool, an accounting ledger, and the
//! per-tenant handle tying a submitted deployment to its reservation.

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gals_rt::{
    DeployError, DeploymentOutcome, DrainError, MachineKind, PoolOptions, PoolWorkerStats,
    SharedPool, SubmitOptions, SubmittedDeployment,
};
use isochron::{Design, DesignError};
use signal_lang::{Name, Value};
use sim::Flows;

use crate::admission::{AdmitError, Budget, Footprint, Ledger, ServerLoad};
use crate::affinity;

/// Configuration of a [`Server`]: pool shape, admission budget, and
/// worker placement.
#[derive(Clone)]
pub struct ServerOptions {
    /// Pool size in worker OS threads (must be nonzero).
    pub workers: usize,
    /// Reactions one dispatch may run before the component is re-queued
    /// behind its equal-priority peers (must be nonzero).
    pub quantum: u64,
    /// Admission budget; [`Budget::unlimited`] by default.
    pub budget: Budget,
    /// Pin worker `w` to CPU core `w % available_parallelism` at startup
    /// ([`affinity::pin_current_thread`]); the per-worker stats report
    /// whether each pin took.
    pub pin_workers: bool,
    /// Start the pool paused: admitted components queue without
    /// dispatching until [`Server::resume`].
    pub paused: bool,
}

impl ServerOptions {
    /// Options for a pool of `workers` threads at `quantum` reactions
    /// per dispatch, unlimited budget, no pinning.
    pub fn new(workers: usize, quantum: u64) -> Self {
        ServerOptions {
            workers,
            quantum,
            budget: Budget::unlimited(),
            pin_workers: false,
            paused: false,
        }
    }

    /// Options sized like [`gals_rt::PoolOptions::per_core`]: one worker
    /// per available core at the default quantum.
    pub fn per_core() -> Self {
        let pool = PoolOptions::per_core();
        ServerOptions::new(pool.workers, pool.quantum)
    }
}

impl fmt::Debug for ServerOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerOptions")
            .field("workers", &self.workers)
            .field("quantum", &self.quantum)
            .field("budget", &self.budget)
            .field("pin_workers", &self.pin_workers)
            .field("paused", &self.paused)
            .finish()
    }
}

/// Per-submission knobs for [`Server::admit_with`].
#[derive(Debug, Clone, Default)]
pub struct AdmitOptions {
    /// Base scheduling priority of every component of this tenant: a
    /// ready component always dispatches before any lower-priority ready
    /// component.  The bottleneck boost is added on top.
    pub base_priority: u32,
    /// Execution strategy for the component machines.
    pub machine: MachineKind,
}

/// A long-running host for many verified deployments on one shared
/// work-stealing pool (see the [crate docs](crate) for the full story).
///
/// Dropping the server shuts the pool down: workers are signalled and
/// joined.  Tenants still in flight keep their channels, so finish or
/// drop their handles first.
pub struct Server {
    pool: SharedPool,
    ledger: Arc<Mutex<Ledger>>,
    budget: Budget,
}

impl Server {
    /// Starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::ZeroPoolWorkers`] or
    /// [`DeployError::ZeroQuantum`] when the pool shape is degenerate.
    pub fn start(options: ServerOptions) -> Result<Server, DeployError> {
        let mut pool = PoolOptions::new(options.workers, options.quantum);
        pool.paused = options.paused;
        if options.pin_workers {
            pool.worker_setup = Some(Arc::new(affinity::pin_current_thread));
        }
        Ok(Server {
            pool: SharedPool::start(pool)?,
            ledger: Arc::new(Mutex::new(Ledger::default())),
            budget: options.budget,
        })
    }

    /// Admits `design` under `id` with default [`AdmitOptions`].
    ///
    /// # Errors
    ///
    /// See [`AdmitError`] for every refusal path.
    pub fn admit(
        &self,
        id: impl Into<String>,
        design: &Design,
    ) -> Result<DeploymentHandle, AdmitError> {
        self.admit_with(id, design, &AdmitOptions::default())
    }

    /// Prices `design` from its verification artifacts, reserves its
    /// [`Footprint`] against the budget, stages it with derived channel
    /// capacities, and submits it to the pool — with component
    /// priorities seeded from the predictor: the two components adjacent
    /// to the predicted bottleneck edge get a `+1` boost over the
    /// tenant's base priority, so the pool drains the most contended
    /// channel first.
    ///
    /// # Errors
    ///
    /// [`AdmitError::NotVerified`] when the design fails the static
    /// weak-hierarchy criterion; [`AdmitError::Unbounded`] when some
    /// channel has no finite derived capacity;
    /// [`AdmitError::DuplicateId`] when `id` is already in flight;
    /// [`AdmitError::OverBudget`] when the footprint does not fit;
    /// [`AdmitError::Stage`] when wiring the priced deployment fails.
    pub fn admit_with(
        &self,
        id: impl Into<String>,
        design: &Design,
        options: &AdmitOptions,
    ) -> Result<DeploymentHandle, AdmitError> {
        let id = id.into();
        // Price first, entirely outside the ledger lock: the analyses
        // are pure functions of the design.
        let analysis = design.capacity_analysis().map_err(|e| match e {
            DeployError::NotVerified(name) => AdmitError::NotVerified(name),
            other => AdmitError::Stage(other.to_string()),
        })?;
        if !analysis.is_fully_bounded() {
            return Err(AdmitError::Unbounded {
                signals: analysis.unbounded().keys().cloned().collect(),
            });
        }
        let prediction = design
            .performance_prediction()
            .map_err(|e| AdmitError::Stage(e.to_string()))?;
        let staged = design
            .stage_derived_with(options.machine)
            .map_err(|e| match e {
                DesignError::NotVerified(name) => AdmitError::NotVerified(name),
                other => AdmitError::Stage(other.to_string()),
            })?;
        let footprint = Footprint {
            components: staged.component_count(),
            channel_slots: analysis.bounds().values().map(|c| c.bound).sum(),
            reactions_per_input: prediction.reactions_per_input(),
        };
        // Reserve under the ledger lock so concurrent admissions cannot
        // both squeeze into the last of the budget.
        {
            let mut ledger = self.lock_ledger();
            if ledger.tenants.contains_key(&id) {
                return Err(AdmitError::DuplicateId(id));
            }
            self.budget.check(&id, &footprint, &ledger.in_use())?;
            ledger.tenants.insert(id.clone(), footprint.clone());
        }
        // Seed priorities from the predicted bottleneck edge: its
        // producer and consumer outrank the tenant's other components.
        let mut submit = SubmitOptions {
            base_priority: options.base_priority,
            ..SubmitOptions::default()
        };
        if let Some(edge) = prediction.bottleneck() {
            let names = staged.component_names();
            for index in [edge.producer, edge.consumer] {
                if let Some(name) = names.get(index) {
                    *submit.boosts.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }
        let inner = self.pool.submit(staged, &submit);
        Ok(DeploymentHandle {
            id,
            footprint,
            boosts: submit.boosts.into_keys().collect(),
            inner: Some(inner),
            ledger: Arc::clone(&self.ledger),
        })
    }

    /// Pool size in worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Reactions per dispatch.
    pub fn quantum(&self) -> u64 {
        self.pool.quantum()
    }

    /// Stops dispatching; queued components wait for [`resume`](Self::resume).
    pub fn pause(&self) {
        self.pool.pause();
    }

    /// Resumes a paused pool.
    pub fn resume(&self) {
        self.pool.resume();
    }

    /// Per-worker scheduling counters of the shared pool (dispatches,
    /// steals, parks, pin status) — pool-wide, not per-tenant: tenant
    /// stats live in each handle's drained outcome.
    pub fn worker_stats(&self) -> Vec<PoolWorkerStats> {
        self.pool.worker_stats()
    }

    /// What the tenants in flight hold against the budget.
    pub fn load(&self) -> ServerLoad {
        let ledger = self.lock_ledger();
        ServerLoad {
            deployments: ledger.tenants.len(),
            in_use: ledger.in_use(),
        }
    }

    /// The ids of the tenants in flight, in admission-key order.
    pub fn tenants(&self) -> Vec<String> {
        self.lock_ledger().tenants.keys().cloned().collect()
    }

    /// The server's admission budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    fn lock_ledger(&self) -> std::sync::MutexGuard<'_, Ledger> {
        self.ledger.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let load = self.load();
        f.debug_struct("Server")
            .field("workers", &self.workers())
            .field("quantum", &self.quantum())
            .field("budget", &self.budget)
            .field("load", &load)
            .finish()
    }
}

/// One admitted tenant: the streaming surface of its deployment plus
/// the budget reservation backing it.
///
/// The reservation is released when the handle is consumed by
/// [`finish`](Self::finish) or dropped.  Dropping without finishing
/// abandons the tenant: its inputs are closed so the components run out
/// and free their pool slots, but the outcome is never collected.
pub struct DeploymentHandle {
    id: String,
    footprint: Footprint,
    boosts: Vec<String>,
    inner: Option<SubmittedDeployment>,
    ledger: Arc<Mutex<Ledger>>,
}

impl DeploymentHandle {
    /// The admission id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The footprint reserved against the server budget.
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// The components whose priority admission boosted (the predicted
    /// bottleneck edge's producer and consumer), in name order.
    pub fn boosted(&self) -> &[String] {
        &self.boosts
    }

    /// Component (machine) names, in machine order.
    pub fn component_names(&self) -> &[String] {
        self.inner().component_names()
    }

    /// Streams `values` into the environment input `signal`; tokens land
    /// in the tenant's bounded ingress channel and the call blocks when
    /// it is full (client-side backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::UnknownFeed`] when `signal` is not an
    /// environment input of this deployment.
    pub fn feed<I, V>(&mut self, signal: impl Into<Name>, values: I) -> Result<(), DeployError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.inner_mut().feed(signal, values)
    }

    /// Drains the tenant's egress channels without blocking; returns the
    /// newly arrived tokens per external output.
    pub fn poll_outputs(&mut self) -> Flows {
        self.inner_mut().poll_outputs()
    }

    /// Closes every environment input: consumers drain what was fed and
    /// stop with `EnvironmentExhausted`, exactly like a batch run's end
    /// of input.  Idempotent.
    pub fn close_inputs(&mut self) {
        self.inner_mut().close_inputs();
    }

    /// `true` once every component of the tenant has stopped.
    pub fn is_finished(&self) -> bool {
        self.inner().is_finished()
    }

    /// Blocks until the tenant finishes or `timeout` elapses; returns
    /// whether it finished.
    pub fn wait(&self, timeout: Duration) -> bool {
        self.inner().wait(timeout)
    }

    /// The tenant's rank in the pool-wide completion order (0 = first
    /// deployment to finish since the pool started), once finished.
    pub fn completion_index(&self) -> Option<u64> {
        self.inner().completion_index()
    }

    /// Names of the components that have not stopped yet.
    pub fn pending(&self) -> Vec<String> {
        self.inner().pending()
    }

    /// Closes the inputs, waits for every component to stop, collects
    /// the outcome, and releases the budget reservation.  The outcome is
    /// shaped exactly like a batch run's: flows, per-component stats,
    /// stop reasons, traces, and conformance checking all work
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`FinishError::Timeout`] when components are still
    /// running at the deadline — with the handle given back intact (and
    /// the reservation still held), so a later retry loses nothing.
    pub fn finish(mut self, timeout: Duration) -> Result<DeploymentOutcome, FinishError> {
        let inner = self
            .inner
            .take()
            .expect("a live handle always holds its deployment");
        match inner.drain(timeout) {
            // `self` drops here with `inner` already taken: the drop
            // hook releases the ledger reservation.
            Ok(outcome) => Ok(outcome),
            Err(DrainError::Timeout { pending, handle }) => {
                self.inner = Some(*handle);
                Err(FinishError::Timeout {
                    pending,
                    handle: Box::new(self),
                })
            }
        }
    }

    fn inner(&self) -> &SubmittedDeployment {
        self.inner
            .as_ref()
            .expect("a live handle always holds its deployment")
    }

    fn inner_mut(&mut self) -> &mut SubmittedDeployment {
        self.inner
            .as_mut()
            .expect("a live handle always holds its deployment")
    }
}

impl Drop for DeploymentHandle {
    fn drop(&mut self) {
        // Abandoned without `finish`: close the inputs so the components
        // run out of tokens, stop, and free their pool slots.
        if let Some(inner) = self.inner.as_mut() {
            inner.close_inputs();
        }
        let mut ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        ledger.tenants.remove(&self.id);
    }
}

impl fmt::Debug for DeploymentHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeploymentHandle")
            .field("id", &self.id)
            .field("footprint", &self.footprint)
            .field("boosted", &self.boosts)
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Why [`DeploymentHandle::finish`] did not return an outcome.
pub enum FinishError {
    /// Components were still running at the deadline.  The handle comes
    /// back intact — reservation included — so the caller can feed,
    /// wait, or retry without losing the tenant.
    Timeout {
        /// Names of the components still running.
        pending: Vec<String>,
        /// The reconstituted handle.
        handle: Box<DeploymentHandle>,
    },
}

impl fmt::Debug for FinishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinishError::Timeout { pending, handle } => f
                .debug_struct("Timeout")
                .field("pending", pending)
                .field("id", &handle.id())
                .finish(),
        }
    }
}

impl fmt::Display for FinishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinishError::Timeout { pending, handle } => write!(
                f,
                "deployment {:?} still running at the deadline: [{}] pending",
                handle.id(),
                pending.join(", ")
            ),
        }
    }
}

impl Error for FinishError {}
