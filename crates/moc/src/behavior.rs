//! Behaviors: functions from names to signals.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::equivalence;
use crate::reaction::Reaction;
use crate::{Name, Stream, Tag, Value};

/// A behavior `b`: a finite function from signal names to signals.
///
/// The *domain* `V(b)` of a behavior is the set of names it maps; a name may
/// be mapped to the empty signal (the paper writes `Ø|X` for the empty
/// reaction on the names `X`), which is different from not belonging to the
/// domain at all.
///
/// # Example
///
/// ```
/// use moc::{Behavior, Tag, Value};
/// let mut b = Behavior::new();
/// b.declare("x");
/// b.insert_event("y", Tag::new(0), Value::from(1));
/// assert_eq!(b.domain().count(), 2);
/// assert!(b.stream("x").unwrap().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Behavior {
    signals: BTreeMap<Name, Stream>,
}

impl Behavior {
    /// Creates the empty behavior with an empty domain.
    pub fn new() -> Self {
        Behavior {
            signals: BTreeMap::new(),
        }
    }

    /// Creates the empty behavior `Ø|X` over the domain `names`.
    pub fn empty_on<I, N>(names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        let mut b = Behavior::new();
        for n in names {
            b.declare(n);
        }
        b
    }

    /// Adds `name` to the domain of the behavior, mapped to the empty signal
    /// if it was not present yet.
    pub fn declare(&mut self, name: impl Into<Name>) {
        self.signals.entry(name.into()).or_default();
    }

    /// Inserts the event `(tag, value)` on the signal `name`, adding the name
    /// to the domain if necessary.
    pub fn insert_event(&mut self, name: impl Into<Name>, tag: Tag, value: Value) {
        self.signals
            .entry(name.into())
            .or_default()
            .insert(tag, value);
    }

    /// Replaces the whole signal assigned to `name`.
    pub fn insert_stream(&mut self, name: impl Into<Name>, stream: Stream) {
        self.signals.insert(name.into(), stream);
    }

    /// The domain `V(b)` of the behavior.
    pub fn domain(&self) -> impl Iterator<Item = &Name> + '_ {
        self.signals.keys()
    }

    /// The domain as an owned set.
    pub fn domain_set(&self) -> BTreeSet<Name> {
        self.signals.keys().cloned().collect()
    }

    /// Returns `true` when `name` belongs to the domain.
    pub fn contains(&self, name: &str) -> bool {
        self.signals.contains_key(name)
    }

    /// Returns the signal assigned to `name`, if in the domain.
    pub fn stream(&self, name: &str) -> Option<&Stream> {
        self.signals.get(name)
    }

    /// Returns a mutable reference to the signal assigned to `name`,
    /// declaring it if necessary.
    pub fn stream_mut(&mut self, name: impl Into<Name>) -> &mut Stream {
        self.signals.entry(name.into()).or_default()
    }

    /// Iterates over `(name, signal)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Stream)> + '_ {
        self.signals.iter()
    }

    /// Returns the number of names in the domain.
    pub fn width(&self) -> usize {
        self.signals.len()
    }

    /// Returns the total number of events of the behavior.
    pub fn event_count(&self) -> usize {
        self.signals.values().map(Stream::len).sum()
    }

    /// Returns `true` when every signal of the behavior is empty.
    pub fn is_silent(&self) -> bool {
        self.signals.values().all(Stream::is_empty)
    }

    /// The set `T(b)` of tags used by the behavior, in increasing order.
    pub fn tags(&self) -> BTreeSet<Tag> {
        self.signals
            .values()
            .flat_map(|s| s.tags().collect::<Vec<_>>())
            .collect()
    }

    /// The maximal tag used by the behavior, if any.
    pub fn max_tag(&self) -> Option<Tag> {
        self.signals.values().filter_map(Stream::max_tag).max()
    }

    /// The restriction `b|X` of the behavior to the names in `names`.
    ///
    /// Names of `names` that are not in the domain of `b` are ignored, so
    /// that `V(b|X) = V(b) ∩ X`.
    pub fn restrict<'a, I>(&self, names: I) -> Behavior
    where
        I: IntoIterator<Item = &'a str>,
    {
        let wanted: BTreeSet<&str> = names.into_iter().collect();
        Behavior {
            signals: self
                .signals
                .iter()
                .filter(|(n, _)| wanted.contains(n.as_str()))
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect(),
        }
    }

    /// The complement `b/X`: the behavior restricted to names *not* in
    /// `names`, so that `b = b|X ⊎ b/X`.
    pub fn hide<'a, I>(&self, names: I) -> Behavior
    where
        I: IntoIterator<Item = &'a str>,
    {
        let hidden: BTreeSet<&str> = names.into_iter().collect();
        Behavior {
            signals: self
                .signals
                .iter()
                .filter(|(n, _)| !hidden.contains(n.as_str()))
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect(),
        }
    }

    /// The disjoint union of two behaviors with disjoint domains.
    ///
    /// # Panics
    ///
    /// Panics if the domains overlap; use [`Behavior::merge`] when the
    /// behaviors are known to agree on their shared names.
    pub fn union(&self, other: &Behavior) -> Behavior {
        let mut signals = self.signals.clone();
        for (n, s) in &other.signals {
            let prev = signals.insert(n.clone(), s.clone());
            assert!(
                prev.is_none(),
                "union of behaviors with overlapping domains (signal {n})"
            );
        }
        Behavior { signals }
    }

    /// Merges two behaviors that agree on their shared names.
    ///
    /// Returns `None` when the behaviors disagree on a shared name (they map
    /// it to different signals), which is exactly the side condition of the
    /// synchronous composition `p | q`.
    pub fn merge(&self, other: &Behavior) -> Option<Behavior> {
        let mut signals = self.signals.clone();
        for (n, s) in &other.signals {
            match signals.get(n) {
                Some(existing) if existing != s => return None,
                _ => {
                    signals.insert(n.clone(), s.clone());
                }
            }
        }
        Some(Behavior { signals })
    }

    /// Concatenates the reaction `r` to the behavior (`b · r`).
    ///
    /// The reaction must be concatenable: same domain and its tag strictly
    /// greater than the maximal tag of every signal it extends.  Returns
    /// `None` otherwise.
    pub fn concat(&self, r: &Reaction) -> Option<Behavior> {
        if self.domain_set() != r.domain_set() {
            return None;
        }
        if let Some(tag) = r.tag() {
            // Concatenability: max(b(x)) < T(r(x)) for every extended signal;
            // we enforce the stronger, simpler condition that the reaction tag
            // follows every tag already present in the behavior, which is what
            // the inductive construction of the paper produces.
            if let Some(max) = self.max_tag() {
                if tag <= max {
                    return None;
                }
            }
        }
        let mut out = self.clone();
        if let Some(tag) = r.tag() {
            for (name, value) in r.events() {
                out.insert_event(name.clone(), tag, value);
            }
        }
        Some(out)
    }

    /// The flow of the behavior: for every signal, its sequence of values.
    pub fn flows(&self) -> BTreeMap<Name, Vec<Value>> {
        self.signals
            .iter()
            .map(|(n, s)| (n.clone(), s.flow()))
            .collect()
    }

    /// Tests whether `self` and `other` are *clock-equivalent* (`b ~ c`):
    /// equal up to an order-isomorphism on tags.
    pub fn clock_equivalent(&self, other: &Behavior) -> bool {
        equivalence::clock_equivalent(self, other)
    }

    /// Tests whether `self` and `other` are *flow-equivalent* (`b ≈ c`):
    /// same domain and every signal carries the same values in the same
    /// order.
    pub fn flow_equivalent(&self, other: &Behavior) -> bool {
        equivalence::flow_equivalent(self, other)
    }

    /// Tests whether `other` is a *stretching* of `self` (`self ≤ other`).
    pub fn stretching_of(&self, other: &Behavior) -> bool {
        equivalence::is_stretching(self, other)
    }

    /// Tests whether `other` is a *relaxation* of `self` (`self ⊑ other`).
    pub fn relaxation_of(&self, other: &Behavior) -> bool {
        equivalence::is_relaxation(self, other)
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, s) in &self.signals {
            writeln!(f, "{n} -> {s}")?;
        }
        Ok(())
    }
}

impl FromIterator<(Name, Stream)> for Behavior {
    fn from_iter<I: IntoIterator<Item = (Name, Stream)>>(iter: I) -> Self {
        Behavior {
            signals: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_behavior() -> Behavior {
        // The filter example of Section 1 of the paper.
        let mut b = Behavior::new();
        b.insert_stream(
            "y",
            Stream::from_values(Tag::new(1), [true, false, false, true]),
        );
        b.insert_event("x", Tag::new(2), Value::from(true));
        b.insert_event("x", Tag::new(4), Value::from(true));
        b
    }

    #[test]
    fn domain_and_declaration() {
        let mut b = Behavior::new();
        b.declare("x");
        assert!(b.contains("x"));
        assert!(b.stream("x").unwrap().is_empty());
        assert!(!b.contains("y"));
    }

    #[test]
    fn empty_on_builds_silent_behavior() {
        let b = Behavior::empty_on(["x", "y"]);
        assert_eq!(b.width(), 2);
        assert!(b.is_silent());
    }

    #[test]
    fn restriction_and_complement_partition_the_domain() {
        let b = filter_behavior();
        let on_x = b.restrict(["x"]);
        let off_x = b.hide(["x"]);
        assert_eq!(on_x.domain_set().len(), 1);
        assert_eq!(off_x.domain_set().len(), 1);
        assert!(on_x.contains("x"));
        assert!(off_x.contains("y"));
        assert_eq!(on_x.union(&off_x), b);
    }

    #[test]
    fn tags_is_the_union_of_signal_chains() {
        let b = filter_behavior();
        let tags: Vec<Tag> = b.tags().into_iter().collect();
        assert_eq!(
            tags,
            vec![Tag::new(1), Tag::new(2), Tag::new(3), Tag::new(4)]
        );
        assert_eq!(b.max_tag(), Some(Tag::new(4)));
    }

    #[test]
    fn merge_requires_agreement_on_shared_names() {
        let b = filter_behavior();
        let mut c = Behavior::new();
        c.insert_stream("y", b.stream("y").unwrap().clone());
        c.insert_event("z", Tag::new(1), Value::from(false));
        assert!(b.merge(&c).is_some());

        let mut d = Behavior::new();
        d.insert_stream("y", Stream::from_values(Tag::new(1), [false]));
        assert!(b.merge(&d).is_none());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn union_panics_on_overlap() {
        let b = filter_behavior();
        let _ = b.union(&b);
    }

    #[test]
    fn concat_appends_a_reaction() {
        let mut b = Behavior::empty_on(["x", "y"]);
        b.insert_event("y", Tag::new(1), Value::from(true));

        let mut r = Reaction::empty_on(["x", "y"]);
        r.set_tag(Tag::new(2));
        r.insert("y", Value::from(false));
        r.insert("x", Value::from(true));

        let extended = b.concat(&r).expect("concatenable");
        assert_eq!(extended.stream("y").unwrap().len(), 2);
        assert_eq!(extended.stream("x").unwrap().len(), 1);

        // A reaction whose tag is in the past is not concatenable.
        let mut stale = Reaction::empty_on(["x", "y"]);
        stale.set_tag(Tag::new(1));
        stale.insert("y", Value::from(true));
        assert!(extended.concat(&stale).is_none());
    }

    #[test]
    fn concat_requires_equal_domains() {
        let b = Behavior::empty_on(["x"]);
        let mut r = Reaction::empty_on(["x", "y"]);
        r.set_tag(Tag::new(0));
        r.insert("y", Value::from(true));
        assert!(b.concat(&r).is_none());
    }

    #[test]
    fn event_count_and_silence() {
        let b = filter_behavior();
        assert_eq!(b.event_count(), 6);
        assert!(!b.is_silent());
        assert!(Behavior::empty_on(["x"]).is_silent());
    }

    #[test]
    fn flows_project_values() {
        let b = filter_behavior();
        let flows = b.flows();
        assert_eq!(
            flows[&Name::from("x")],
            vec![Value::from(true), Value::from(true)]
        );
        assert_eq!(flows[&Name::from("y")].len(), 4);
    }
}
