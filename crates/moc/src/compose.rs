//! Synchronous and asynchronous composition of trace sets.
//!
//! Section 2.1 of the paper defines:
//!
//! * the **synchronous composition** `p | q` as the set of unions `b ∪ c` of
//!   behaviors `b ∈ p`, `c ∈ q` that are *identical* on the interface
//!   `I = V(p) ∩ V(q)`;
//! * the **asynchronous composition** `p ‖ q` as the set of behaviors that
//!   are *flow-equivalent* to some `b ∈ p` and `c ∈ q` on the interface —
//!   the network may retime interface signals arbitrarily, only the flows of
//!   values are preserved.
//!
//! Because this crate manipulates finite sets of finite behaviors, the
//! asynchronous composition is represented by one *canonical representative
//! per flow-equivalence class*: for every pair `(b, c)` whose interface flows
//! agree, the representative keeps the signals of `b` on `V(p)` and the
//! non-interface signals of `c`.  All tests of isochrony compare flows
//! ([`TraceSet::same_flows_as`]), for which a canonical representative is
//! sufficient.

use std::collections::BTreeSet;

use crate::{Name, TraceSet};

/// Returns the interface `I = V(p) ∩ V(q)` of two trace sets.
pub fn interface(p: &TraceSet, q: &TraceSet) -> BTreeSet<Name> {
    p.domain_set()
        .intersection(&q.domain_set())
        .cloned()
        .collect()
}

/// The synchronous composition `p | q` of two trace sets.
///
/// Behaviors are combined when they are *identical* (not merely equivalent)
/// on the interface, exactly as in the paper's definition.
pub fn sync_compose(p: &TraceSet, q: &TraceSet) -> TraceSet {
    let shared = interface(p, q);
    let shared_strs: Vec<&str> = shared.iter().map(Name::as_str).collect();
    let domain: BTreeSet<Name> = p.domain_set().union(&q.domain_set()).cloned().collect();
    let mut out = TraceSet::new(domain.iter().cloned());
    for b in p.iter() {
        for c in q.iter() {
            let b_i = b.restrict(shared_strs.iter().copied());
            let c_i = c.restrict(shared_strs.iter().copied());
            if b_i == c_i {
                if let Some(merged) = b.merge(c) {
                    if !out.iter().any(|existing| *existing == merged) {
                        out.push(merged);
                    }
                }
            }
        }
    }
    out
}

/// The asynchronous composition `p ‖ q` of two trace sets, represented by a
/// canonical behavior per flow-equivalence class.
///
/// Two behaviors are combined whenever their interface signals carry the same
/// *flows* of values (timing is discarded by the network).  The canonical
/// representative keeps the interface and `V(p)`-signals of `b` and the
/// remaining signals of `c`.
pub fn async_compose(p: &TraceSet, q: &TraceSet) -> TraceSet {
    let shared = interface(p, q);
    let shared_strs: Vec<&str> = shared.iter().map(Name::as_str).collect();
    let domain: BTreeSet<Name> = p.domain_set().union(&q.domain_set()).cloned().collect();
    let only_q: Vec<Name> = q
        .domain_set()
        .difference(&p.domain_set())
        .cloned()
        .collect();
    let mut out = TraceSet::new(domain.iter().cloned());
    for b in p.iter() {
        for c in q.iter() {
            let b_i = b.restrict(shared_strs.iter().copied());
            let c_i = c.restrict(shared_strs.iter().copied());
            if b_i.flow_equivalent(&c_i) {
                let mut d = b.clone();
                for name in &only_q {
                    let stream = c
                        .stream(name.as_str())
                        .expect("name in the domain of q")
                        .clone();
                    d.insert_stream(name.clone(), stream);
                }
                let duplicate = out.iter().any(|existing| existing.flow_equivalent(&d));
                if !duplicate {
                    out.push(d);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Behavior, Stream, Tag, Value};

    /// A one-behavior trace set for the `filter` process of the paper:
    /// input `y`, output `x` present when the value of `y` changes.
    fn filter_traces() -> TraceSet {
        let mut b = Behavior::new();
        b.insert_stream(
            "y",
            Stream::from_events([
                (Tag::new(1), Value::from(true)),
                (Tag::new(2), Value::from(false)),
                (Tag::new(3), Value::from(false)),
                (Tag::new(4), Value::from(true)),
            ]),
        );
        b.insert_stream(
            "x",
            Stream::from_events([
                (Tag::new(2), Value::from(true)),
                (Tag::new(4), Value::from(true)),
            ]),
        );
        TraceSet::from_behaviors(["x", "y"], vec![b])
    }

    /// Same flows as `filter_traces` but on a different tag carrier: the
    /// interface signal `x` keeps its flow but loses synchronization.
    fn merge_traces() -> TraceSet {
        // d = merge(c, x, z): here the interface with the filter is x.
        let mut b = Behavior::new();
        b.insert_stream(
            "c",
            Stream::from_events([
                (Tag::new(10), Value::from(false)),
                (Tag::new(12), Value::from(true)),
                (Tag::new(14), Value::from(true)),
                (Tag::new(17), Value::from(false)),
            ]),
        );
        b.insert_stream(
            "x",
            Stream::from_events([
                (Tag::new(12), Value::from(true)),
                (Tag::new(14), Value::from(true)),
            ]),
        );
        b.insert_stream(
            "z",
            Stream::from_events([
                (Tag::new(10), Value::from(true)),
                (Tag::new(17), Value::from(false)),
            ]),
        );
        b.insert_stream(
            "d",
            Stream::from_events([
                (Tag::new(10), Value::from(true)),
                (Tag::new(12), Value::from(true)),
                (Tag::new(14), Value::from(true)),
                (Tag::new(17), Value::from(false)),
            ]),
        );
        TraceSet::from_behaviors(["c", "x", "z", "d"], vec![b])
    }

    #[test]
    fn interface_is_the_shared_domain() {
        let p = filter_traces();
        let q = merge_traces();
        let i = interface(&p, &q);
        assert_eq!(i.len(), 1);
        assert!(i.contains("x"));
    }

    #[test]
    fn sync_compose_requires_identical_interface_signals() {
        let p = filter_traces();
        let q = merge_traces();
        // The filter and the merge use different tags for x, so the strict
        // synchronous composition of these particular trace enumerations is
        // empty...
        assert!(sync_compose(&p, &q).is_empty());
        // ...whereas composing the filter with itself keeps its behavior.
        let pp = sync_compose(&p, &p);
        assert_eq!(pp.len(), 1);
        assert_eq!(pp.domain_set(), p.domain_set());
    }

    #[test]
    fn async_compose_accepts_flow_equivalent_interfaces() {
        let p = filter_traces();
        let q = merge_traces();
        let a = async_compose(&p, &q);
        assert_eq!(a.len(), 1);
        let d = a.iter().next().unwrap();
        // The canonical representative carries the flows of both components.
        assert_eq!(
            d.stream("d").unwrap().flow(),
            vec![
                Value::from(true),
                Value::from(true),
                Value::from(true),
                Value::from(false)
            ]
        );
        assert_eq!(d.stream("y").unwrap().len(), 4);
    }

    #[test]
    fn async_compose_rejects_different_interface_flows() {
        let p = filter_traces();
        let mut q = merge_traces();
        // Tamper with the interface flow of q: x now carries (true, false).
        let mut tampered = q.iter().next().unwrap().clone();
        tampered.insert_event("x", Tag::new(14), Value::from(false));
        q = TraceSet::from_behaviors(["c", "x", "z", "d"], vec![tampered]);
        assert!(async_compose(&p, &q).is_empty());
    }

    #[test]
    fn composition_domains_are_unions() {
        let p = filter_traces();
        let q = merge_traces();
        let s = sync_compose(&p, &q);
        let a = async_compose(&p, &q);
        let expected: BTreeSet<Name> = ["c", "d", "x", "y", "z"]
            .into_iter()
            .map(Name::from)
            .collect();
        assert_eq!(s.domain_set(), expected);
        assert_eq!(a.domain_set(), expected);
    }

    #[test]
    fn sync_composition_is_a_subset_of_async_composition_up_to_flows() {
        // Isochrony-style sanity check on a case where both succeed: compose
        // the filter with a retagged but synchronization-preserving copy.
        let p = filter_traces();
        let s = sync_compose(&p, &p);
        let a = async_compose(&p, &p);
        assert!(s.iter().all(|b| a.contains_up_to_flow_equivalence(b)));
    }
}
